"""Streaming adaptive-shot estimation: rounds, running statistics, early stopping.

The static QPD estimator fixes the full shot budget up front (proportional
to coefficient magnitudes) and pays worst case even when most terms converge
early.  This module is the round-structured alternative: execution proceeds
in rounds, after each round the per-term running statistics (mean / Welford
``M2`` / shots, mergeable across rounds) feed a
:class:`~repro.qpd.allocation.ShotPlanner` that allocates the next round's
shots, and the engine stops as soon as the pooled standard error of the
recombined estimate reaches ``target_error`` — or the shot budget or round
limit is exhausted.

The engine is execution-agnostic: callers supply an ``execute_round``
callable that turns one round's per-term shot counts into per-term means
(the cut executor submits measured term circuits through a
:class:`~repro.circuits.backends.SimulatorBackend`; the fast sweep path
draws binomials from exact term distributions).  Round seeds are spawned
up front from the master seed, so a crash-resumed run that replays the
completed rounds from stored :class:`RoundRecord` payloads continues with
bit-for-bit identical allocations, draws and estimates.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

import repro.telemetry as telemetry
from repro.exceptions import DecompositionError
from repro.qpd.allocation import ShotPlanner, resolve_planner
from repro.telemetry.metrics import REGISTRY
from repro.qpd.estimator import QPDEstimate, TermEstimate, combine_term_estimates
from repro.utils.rng import SeedLike, spawn_seed_sequences
from repro.utils.validation import validate_positive_count, validate_positive_float

__all__ = [
    "AdaptiveConfig",
    "DEFAULT_MAX_ROUNDS",
    "EXECUTION_MODES",
    "TermStatistics",
    "RoundRecord",
    "AdaptiveResult",
    "run_adaptive_rounds",
]

#: Default round limit shared by every adaptive entry point (engine,
#: executors, pipeline, job spec and CLI).
DEFAULT_MAX_ROUNDS = 12

#: Round-execution modes: in the calling process, or fanned out over the
#: multi-process work-stealing pool of :mod:`repro.distributed`.
EXECUTION_MODES = ("inprocess", "distributed")

#: Type of the per-round execution hook: ``(round_index, shots_per_term,
#: seed_sequence) -> per-term means`` (entries with zero shots are ignored).
RoundExecutor = Callable[[int, Sequence[int], np.random.SeedSequence], Sequence[float]]

#: Shots spent per *live* adaptive round (replayed rounds are not re-observed).
_ROUND_SHOTS_HISTOGRAM = REGISTRY.histogram(
    "repro_adaptive_round_shots",
    "Shots spent per live adaptive round.",
    buckets=(10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0),
)


@dataclass
class TermStatistics:
    """Mergeable running statistics of one QPD term across rounds.

    The triple ``(shots, mean, m2)`` is Welford/Chan state: two batches are
    merged exactly (`Chan et al.`'s parallel update), so statistics built
    round-by-round equal the statistics of the pooled sample — which is
    what makes crash-resume from stored per-round summaries bitwise
    identical to an uninterrupted run.

    Attributes
    ----------
    shots:
        Shots observed so far.
    mean:
        Running mean of the ±1-valued observable.
    m2:
        Running sum of squared deviations from the mean.
    """

    shots: int = 0
    mean: float = 0.0
    m2: float = 0.0

    @property
    def sample_variance(self) -> float:
        """Unbiased per-shot sample variance (0 until two shots were seen)."""
        if self.shots < 2:
            return 0.0
        return max(self.m2 / (self.shots - 1), 0.0)

    def merge_round(self, mean: float, shots: int) -> None:
        """Merge one round's batch summary into the running state.

        The observable is ±1-valued, so a batch of ``shots`` outcomes with
        empirical mean ``m`` has within-batch sum of squared deviations
        ``shots · (1 − m²)`` exactly — the batch mean alone is a lossless
        summary, which is why round artifacts only need (mean, shots).
        """
        shots = int(shots)
        if shots <= 0:
            return
        mean = float(mean)
        batch_m2 = shots * max(1.0 - mean * mean, 0.0)
        if self.shots == 0:
            self.shots = shots
            self.mean = mean
            self.m2 = batch_m2
            return
        total = self.shots + shots
        delta = mean - self.mean
        self.mean = self.mean + delta * (shots / total)
        self.m2 = self.m2 + batch_m2 + delta * delta * self.shots * shots / total
        self.shots = total

    def merge(self, other: "TermStatistics") -> None:
        """Merge another ledger into this one with Chan's parallel update.

        This is the algebra the distributed coordinator leans on: partials
        produced by independent workers merge into exactly the Welford
        state of the pooled sample.  The operation is exact in real
        arithmetic — commutative, associative, with the empty ledger as
        identity — and accurate to rounding in floats, which is why the
        distributed merge always folds partials in sorted unit-key order
        (one canonical order ⇒ one bitwise result) rather than relying on
        float commutativity.
        """
        shots = int(other.shots)
        if shots <= 0:
            return
        if self.shots == 0:
            self.shots = shots
            self.mean = float(other.mean)
            self.m2 = float(other.m2)
            return
        total = self.shots + shots
        delta = float(other.mean) - self.mean
        self.mean = self.mean + delta * (shots / total)
        self.m2 = self.m2 + float(other.m2) + delta * delta * self.shots * shots / total
        self.shots = total

    def to_term_estimate(self, coefficient: float, label: str = "") -> TermEstimate:
        """Freeze the running state into a :class:`~repro.qpd.estimator.TermEstimate`."""
        return TermEstimate(
            coefficient=float(coefficient),
            mean=float(self.mean),
            shots=int(self.shots),
            label=label,
            m2=float(self.m2),
        )


@dataclass(frozen=True)
class RoundRecord:
    """Frozen summary of one executed round.

    Attributes
    ----------
    index:
        Zero-based round number.
    shots_per_term:
        The planner's allocation for the round (sums to the round budget).
    means:
        Per-term empirical means of the round's outcomes (0.0 where the
        term received no shots).
    """

    index: int
    shots_per_term: tuple[int, ...]
    means: tuple[float, ...]

    @property
    def total_shots(self) -> int:
        """The round's total budget."""
        return int(sum(self.shots_per_term))

    def to_payload(self) -> dict:
        """Return the JSON-serializable form (floats round-trip exactly)."""
        return {
            "index": int(self.index),
            "shots_per_term": [int(count) for count in self.shots_per_term],
            "means": [float(mean) for mean in self.means],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RoundRecord":
        """Rebuild a round record from its stored payload."""
        return cls(
            index=int(payload["index"]),
            shots_per_term=tuple(int(count) for count in payload["shots_per_term"]),
            means=tuple(float(mean) for mean in payload["means"]),
        )


@dataclass(frozen=True)
class AdaptiveConfig:
    """Configuration of the streaming adaptive engine.

    Attributes
    ----------
    target_error:
        Stop as soon as the pooled standard error of the recombined
        estimate drops to this value (strictly positive).
    max_shots:
        Hard total-shot budget across all rounds (never exceeded).
    max_rounds:
        Upper bound on the number of execution rounds.
    initial_shots:
        First-round budget; defaults to a small coefficient-proportional
        probe (``min(max_shots, max(64, 8·num_terms))``).
    growth:
        Cap on round-budget growth: round ``r+1`` spends at most
        ``growth − 1`` times everything spent so far, so one noisy early
        variance estimate cannot trigger a runaway round.
    planner:
        Per-round :class:`~repro.qpd.allocation.ShotPlanner` (name or
        instance); ``None``/``"neyman"`` selects variance-aware Neyman
        allocation, ``"proportional"`` the static rule per round.
    """

    target_error: float
    max_shots: int
    max_rounds: int = DEFAULT_MAX_ROUNDS
    initial_shots: int | None = None
    growth: float = 2.0
    planner: ShotPlanner | str | None = None

    def validate(self) -> None:
        """Raise on invalid settings (:class:`~repro.exceptions.CuttingError` family)."""
        validate_positive_float(self.target_error, name="target_error")
        validate_positive_count(self.max_shots, name="max_shots")
        validate_positive_count(self.max_rounds, name="max_rounds")
        if self.initial_shots is not None:
            validate_positive_count(self.initial_shots, name="initial_shots")
        if not self.growth > 1.0:
            raise DecompositionError(f"growth must exceed 1.0, got {self.growth}")

    def first_round_budget(self, num_terms: int) -> int:
        """Return the first round's shot budget for ``num_terms`` terms."""
        if self.initial_shots is not None:
            return min(int(self.initial_shots), int(self.max_shots))
        return min(int(self.max_shots), max(64, 8 * int(num_terms)))


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of one adaptive estimation.

    Attributes
    ----------
    estimate:
        The recombined :class:`~repro.qpd.estimator.QPDEstimate` built from
        the final running statistics.
    rounds:
        Every executed round, in order (including replayed ones on resume).
    converged:
        True when the pooled standard error reached ``target_error``.
    target_error:
        The configured stopping threshold, echoed for reporting.
    """

    estimate: QPDEstimate
    rounds: tuple[RoundRecord, ...]
    converged: bool
    target_error: float

    @property
    def total_shots(self) -> int:
        """Total shots spent across all rounds."""
        return self.estimate.total_shots

    @property
    def num_rounds(self) -> int:
        """Number of executed rounds."""
        return len(self.rounds)


def _pooled_standard_error(
    coefficients: np.ndarray, statistics: Sequence[TermStatistics]
) -> float:
    """Return the propagated standard error of the current recombination.

    Terms with non-zero coefficient and no shots yet make the error
    unbounded (the estimate is still biased), signalled as ``inf``.  A
    single ±1 outcome carries no variance information (``1 − mean²`` is
    identically zero), so one-shot terms conservatively use the unit
    variance bound instead — otherwise a budget of one shot per term would
    report a zero standard error and stop immediately.
    """
    variance = 0.0
    for coefficient, stats in zip(coefficients, statistics):
        if coefficient == 0.0:
            continue
        if stats.shots == 0:
            return float("inf")
        if stats.shots == 1:
            per_shot = 1.0
        else:
            per_shot = stats.sample_variance
        variance += coefficient**2 * per_shot / stats.shots
    return float(np.sqrt(variance))


def _required_total_shots(
    magnitudes: np.ndarray,
    sigmas: np.ndarray,
    target_error: float,
) -> int:
    """Return the Neyman-optimal total budget predicted to reach the target.

    Under Neyman allocation the achievable standard error with ``N`` total
    shots is ``(Σ |c_i| σ_i) / √N``, so the predicted requirement is
    ``N = (Σ |c_i| σ_i / ε)²``.
    """
    weighted = float(np.sum(magnitudes * sigmas))
    if weighted <= 0.0:
        return 1
    return max(1, int(math.ceil((weighted / target_error) ** 2)))


def run_adaptive_rounds(
    coefficients: Sequence[float] | np.ndarray,
    execute_round: RoundExecutor,
    config: AdaptiveConfig,
    seed: SeedLike = None,
    labels: Sequence[str] | None = None,
    completed_rounds: Sequence[RoundRecord] = (),
    on_round: Callable[[RoundRecord, dict], None] | None = None,
    execution: str = "inprocess",
    workers: int | None = None,
) -> AdaptiveResult:
    """Drive the round loop: plan, execute, merge, check, repeat.

    Parameters
    ----------
    coefficients:
        QPD coefficients ``c_i`` of the terms (order fixed for the run).
    execute_round:
        Callable ``(round_index, shots_per_term, seed_sequence) → means``
        producing the round's per-term empirical means.  Entries whose
        allocation is zero are ignored (conventionally 0.0).
    config:
        The engine configuration (validated here).
    seed:
        Master seed; round ``r`` always executes from the ``r``-th spawned
        child sequence, making replay and resume deterministic.
    labels:
        Optional per-term labels carried into the final estimates.
    completed_rounds:
        Rounds already executed by an interrupted run; they are merged into
        the running statistics without re-execution, and live execution
        continues at round ``len(completed_rounds)`` — bitwise identical to
        an uninterrupted run.
    on_round:
        Optional progress hook called after every *live* round with the
        :class:`RoundRecord` and a progress summary dict
        (``rounds_completed`` / ``shots_spent`` / ``current_stderr`` /
        ``target_error`` / ``converged``).
    execution:
        ``"inprocess"`` (the default: rounds run through ``execute_round``
        in the calling process) or ``"distributed"`` (rounds fan out over
        the multi-process work-stealing pool of :mod:`repro.distributed`;
        requires an ``execute_round`` exposing a ``distribute(workers)``
        hook, such as the cut executor's backend round hook).  Both modes
        produce bitwise-identical results for the same seed.
    workers:
        Distributed mode's worker-process count (default 2); rejected in
        in-process mode.

    Returns
    -------
    AdaptiveResult
        The recombined estimate, the full round history and convergence.
    """
    config.validate()
    if execution not in EXECUTION_MODES:
        raise DecompositionError(
            f"unknown execution {execution!r}; expected one of {EXECUTION_MODES}"
        )
    owned_executor = None
    if execution == "distributed":
        distribute = getattr(execute_round, "distribute", None)
        if distribute is None:
            raise DecompositionError(
                "distributed execution needs a round executor with a "
                "distribute() hook (e.g. the cut executor's backend round "
                f"hook); got {type(execute_round).__name__}"
            )
        distributed = distribute(workers)
        if distributed is not execute_round:
            owned_executor = distributed
        execute_round = distributed
    elif workers is not None:
        raise DecompositionError("workers is only meaningful with execution='distributed'")
    try:
        return _run_adaptive_rounds(
            coefficients,
            execute_round,
            config,
            seed,
            labels,
            completed_rounds,
            on_round,
        )
    finally:
        if owned_executor is not None:
            owned_executor.close()


def _run_adaptive_rounds(
    coefficients: Sequence[float] | np.ndarray,
    execute_round: RoundExecutor,
    config: AdaptiveConfig,
    seed: SeedLike,
    labels: Sequence[str] | None,
    completed_rounds: Sequence[RoundRecord],
    on_round: Callable[[RoundRecord, dict], None] | None,
) -> AdaptiveResult:
    """Run the (already execution-resolved) round loop."""
    coefficients = np.asarray(coefficients, dtype=float)
    if coefficients.ndim != 1 or coefficients.size == 0:
        raise DecompositionError("coefficients must be a non-empty 1-D array")
    if labels is None:
        labels = [f"term_{index}" for index in range(coefficients.size)]
    if len(labels) != coefficients.size:
        raise DecompositionError(
            f"got {coefficients.size} coefficients but {len(labels)} labels"
        )
    planner = resolve_planner(config.planner)
    magnitudes = np.abs(coefficients)
    round_seeds = spawn_seed_sequences(seed, int(config.max_rounds))

    statistics = [TermStatistics() for _ in range(coefficients.size)]
    rounds: list[RoundRecord] = []
    spent = 0

    def merge(record: RoundRecord) -> None:
        """Fold one round's summaries into the running statistics."""
        nonlocal spent
        for stats, mean, count in zip(statistics, record.means, record.shots_per_term):
            stats.merge_round(mean, count)
        spent += record.total_shots

    for record in completed_rounds:
        if record.index != len(rounds):
            raise DecompositionError(
                f"completed rounds are out of order: expected index {len(rounds)}, "
                f"got {record.index}"
            )
        if len(record.shots_per_term) != coefficients.size or len(record.means) != coefficients.size:
            raise DecompositionError(
                f"round {record.index} has {len(record.shots_per_term)} allocations and "
                f"{len(record.means)} means, expected {coefficients.size} of each"
            )
        merge(record)
        rounds.append(record)
    if len(rounds) > config.max_rounds:
        raise DecompositionError(
            f"{len(rounds)} completed rounds exceed max_rounds={config.max_rounds}"
        )
    if spent > config.max_shots:
        raise DecompositionError(
            f"completed rounds already spent {spent} shots, exceeding "
            f"max_shots={config.max_shots}"
        )

    stderr = _pooled_standard_error(coefficients, statistics)
    converged = bool(rounds) and stderr <= config.target_error

    while not converged and len(rounds) < config.max_rounds:
        remaining = int(config.max_shots) - spent
        if remaining <= 0:
            break
        budget = _next_round_budget(
            config, planner, magnitudes, statistics, spent, remaining
        )
        counts = np.array([stats.shots for stats in statistics], dtype=float)
        variances = np.array([stats.sample_variance for stats in statistics], dtype=float)
        allocation = planner.plan(magnitudes, counts, variances, budget)
        allocation = np.asarray(allocation, dtype=int)
        if allocation.sum() != budget:
            raise DecompositionError(
                f"planner {planner.name!r} allocated {int(allocation.sum())} shots "
                f"for a round budget of {budget}"
            )
        index = len(rounds)
        with telemetry.span("round", index=int(index), budget=int(budget)) as round_span:
            means = execute_round(
                index, [int(count) for count in allocation], round_seeds[index]
            )
        record = RoundRecord(
            index=index,
            shots_per_term=tuple(int(count) for count in allocation),
            means=tuple(
                float(mean) if count > 0 else 0.0
                for mean, count in zip(means, allocation)
            ),
        )
        merge(record)
        rounds.append(record)
        _ROUND_SHOTS_HISTOGRAM.observe(float(record.total_shots))
        stderr = _pooled_standard_error(coefficients, statistics)
        converged = stderr <= config.target_error
        round_span.set(
            total_shots=int(record.total_shots),
            stderr=None if math.isinf(stderr) else float(stderr),
        )
        if on_round is not None:
            on_round(
                record,
                {
                    "rounds_completed": len(rounds),
                    "shots_spent": spent,
                    "current_stderr": None if math.isinf(stderr) else float(stderr),
                    "target_error": float(config.target_error),
                    "converged": bool(converged),
                },
            )

    term_estimates = [
        stats.to_term_estimate(coefficient, label)
        for stats, coefficient, label in zip(statistics, coefficients, labels)
    ]
    estimate = combine_term_estimates(term_estimates)
    return AdaptiveResult(
        estimate=estimate,
        rounds=tuple(rounds),
        converged=bool(converged),
        target_error=float(config.target_error),
    )


def _next_round_budget(
    config: AdaptiveConfig,
    planner: ShotPlanner,
    magnitudes: np.ndarray,
    statistics: Sequence[TermStatistics],
    spent: int,
    remaining: int,
) -> int:
    """Return the next round's budget: probe, then chase the predicted deficit.

    The first round spends a small coefficient-proportional probe.  Later
    rounds aim for the Neyman-predicted total required to reach the target
    (based on the current blended σ̂), clipped below by a fraction of the
    probe (so progress never stalls) and above by the ``growth`` cap and
    the remaining budget.
    """
    initial = config.first_round_budget(magnitudes.size)
    if spent == 0:
        return min(initial, remaining)
    counts = np.array([stats.shots for stats in statistics], dtype=float)
    variances = np.array([stats.sample_variance for stats in statistics], dtype=float)
    if hasattr(planner, "posterior_sigmas"):
        sigmas = planner.posterior_sigmas(counts, variances)
    else:
        sigmas = np.where(counts > 1, np.sqrt(np.maximum(variances, 0.0)), 1.0)
    needed = _required_total_shots(magnitudes, sigmas, config.target_error)
    deficit = max(needed - spent, 0)
    floor = max(1, initial // 4)
    cap = max(initial, int(math.ceil(spent * (config.growth - 1.0))))
    return min(remaining, max(min(deficit, cap), floor))
