"""Quasiprobability decompositions of linear maps (Eq. 11).

A :class:`QuasiProbDecomposition` collects :class:`~repro.qpd.terms.QPDTerm`
objects and exposes the quantities that drive the Monte-Carlo estimator of
Eq. 12: the 1-norm ``κ = Σ_i |c_i|`` (the sampling overhead), the sampling
probabilities ``p_i = |c_i| / κ`` and the signs.  Exact verification against
a target map and exact application to states are provided so tests can check
Theorem 2 analytically, independent of any sampling.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.exceptions import DecompositionError
from repro.qpd.terms import QPDTerm

__all__ = ["QuasiProbDecomposition"]


class QuasiProbDecomposition:
    """A finite signed decomposition ``E = Σ_i c_i F_i``."""

    def __init__(self, terms: Sequence[QPDTerm], name: str = "qpd"):
        if not terms:
            raise DecompositionError("a decomposition needs at least one term")
        self._terms = tuple(terms)
        self.name = name

    # -- container ---------------------------------------------------------------

    @property
    def terms(self) -> tuple[QPDTerm, ...]:
        """The decomposition's terms."""
        return self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[QPDTerm]:
        return iter(self._terms)

    def __getitem__(self, index: int) -> QPDTerm:
        return self._terms[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuasiProbDecomposition(name={self.name!r}, terms={len(self)}, "
            f"kappa={self.kappa:.4f})"
        )

    # -- scalar summaries -----------------------------------------------------------

    @property
    def coefficients(self) -> np.ndarray:
        """The coefficient vector ``(c_1, ..., c_m)``."""
        return np.array([term.coefficient for term in self._terms], dtype=float)

    @property
    def kappa(self) -> float:
        """The 1-norm ``κ = Σ_i |c_i|`` — the sampling-overhead factor."""
        return float(np.sum(np.abs(self.coefficients)))

    @property
    def sampling_overhead(self) -> float:
        """The multiplicative shot overhead ``κ²`` for a fixed target accuracy."""
        return float(self.kappa**2)

    @property
    def probabilities(self) -> np.ndarray:
        """The Monte-Carlo sampling distribution ``p_i = |c_i| / κ``."""
        magnitudes = np.abs(self.coefficients)
        return magnitudes / magnitudes.sum()

    @property
    def signs(self) -> np.ndarray:
        """The coefficient signs (±1)."""
        return np.array([term.sign for term in self._terms], dtype=int)

    def coefficient_sum(self) -> float:
        """Return ``Σ_i c_i`` (equals 1 for a decomposition of a TP channel)."""
        return float(np.sum(self.coefficients))

    # -- exact evaluation ----------------------------------------------------------

    def superoperator(self) -> np.ndarray:
        """Return the summed superoperator ``Σ_i c_i S_i``."""
        total = None
        for term in self._terms:
            contribution = term.coefficient * term.superoperator()
            total = contribution if total is None else total + contribution
        return total

    def apply_exact(self, rho: np.ndarray) -> np.ndarray:
        """Return ``Σ_i c_i F_i(ρ)`` exactly."""
        rho = np.asarray(rho, dtype=complex)
        total = None
        for term in self._terms:
            contribution = term.weighted_apply(rho)
            total = contribution if total is None else total + contribution
        return total

    def expectation_exact(self, rho: np.ndarray, observable: np.ndarray) -> float:
        """Return ``Tr[O Σ_i c_i F_i(ρ)]`` exactly."""
        return float(np.real(np.trace(np.asarray(observable, dtype=complex) @ self.apply_exact(rho))))

    # -- verification ----------------------------------------------------------------

    def matches_superoperator(self, target: np.ndarray, atol: float = 1e-9) -> bool:
        """Return True when the decomposition reproduces ``target`` as a superoperator."""
        return bool(np.allclose(self.superoperator(), np.asarray(target, dtype=complex), atol=atol))

    def matches_identity(self, atol: float = 1e-9) -> bool:
        """Return True when the decomposition reproduces the identity channel."""
        superop = self.superoperator()
        return bool(np.allclose(superop, np.eye(superop.shape[0]), atol=atol))

    def validate(self, require_unit_sum: bool = True, atol: float = 1e-9) -> None:
        """Raise :class:`DecompositionError` if structural invariants are violated.

        Checks that all coefficients are finite and, when ``require_unit_sum``
        is set (the trace-preserving case of Eq. 11), that ``Σ_i c_i = 1``.
        """
        if not np.all(np.isfinite(self.coefficients)):
            raise DecompositionError("decomposition has non-finite coefficients")
        if require_unit_sum and abs(self.coefficient_sum() - 1.0) > atol:
            raise DecompositionError(
                f"coefficients sum to {self.coefficient_sum():.6g}, expected 1"
            )

    # -- combination -----------------------------------------------------------------

    def tensor(self, other: "QuasiProbDecomposition") -> "QuasiProbDecomposition":
        """Return the decomposition of the tensor-product map.

        The coefficients multiply and the overheads therefore compose as
        ``κ_total = κ_a · κ_b`` — the exponential-in-cuts growth the paper
        describes.  Channel terms combine in Kraus form; if either term only
        has a superoperator the combined term falls back to the Kronecker
        product of superoperators.
        """
        combined = []
        for left in self._terms:
            for right in other._terms:
                coefficient = left.coefficient * right.coefficient
                label = f"{left.label}⊗{right.label}"
                if left.channel is not None and right.channel is not None:
                    combined.append(
                        QPDTerm(
                            coefficient=coefficient,
                            channel=left.channel.tensor(right.channel),
                            label=label,
                        )
                    )
                else:
                    from repro.qpd.superop import tensor_superoperators

                    combined.append(
                        QPDTerm(
                            coefficient=coefficient,
                            superoperator_matrix=tensor_superoperators(
                                left.superoperator(), right.superoperator()
                            ),
                            label=label,
                        )
                    )
        return QuasiProbDecomposition(combined, name=f"{self.name}⊗{other.name}")
