"""Transfer-matrix contraction kernels for fragment-chain reconstruction.

For a full-slice multi-cut plan the circuit factorises at every slice: the
only coupling between consecutive fragments is the classical message bits a
cut gadget's sender half writes and its receiver half conditions on.  The
joint outcome distribution of one QPD product term therefore forms a Markov
chain over the fragments, and the quantities the reconstructor needs reduce
to small tensor contractions:

* each fragment contributes a **conditional tensor** of shape
  ``(num_in_configs, num_out_configs, 2)`` — the probability of emitting a
  given outgoing message configuration with a given local outcome parity,
  conditioned on each incoming message configuration;
* the signed-outcome probability ``p₊`` of the whole term is recovered by
  propagating a ``(configs, parity)`` state vector through the chain
  (:func:`chain_probability_plus`) instead of simulating the monolithic
  term circuit;
* exact (infinite-shot) values only need the parity-signed reduction of
  each tensor (:func:`signed_transfer`), which
  :meth:`repro.cutting.instances.InstanceTable.contract_exact_value` folds
  together with the QPD coefficients into a single chain contraction.

The kernels are deliberately tiny and deterministic: the same tensors
always produce bitwise-identical results, which is what lets the memoized
instance table be validated against a per-term reference evaluation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import DecompositionError

__all__ = [
    "parity_transfer",
    "chain_probability_plus",
    "signed_transfer",
    "expectation_from_probability",
]


def parity_transfer(state: np.ndarray, tensor: np.ndarray) -> np.ndarray:
    """Advance a ``(configs, parity)`` chain state through one fragment tensor.

    Parameters
    ----------
    state:
        Array of shape ``(num_in_configs, 2)``; ``state[i, π]`` is the joint
        probability that the chain so far produced incoming message
        configuration ``i`` with accumulated outcome parity ``π``.
    tensor:
        Fragment conditional tensor of shape
        ``(num_in_configs, num_out_configs, 2)``; ``tensor[i, o, π]`` is the
        probability of emitting outgoing configuration ``o`` with local
        parity ``π`` given incoming configuration ``i``.

    Returns
    -------
    numpy.ndarray
        The advanced state of shape ``(num_out_configs, 2)``, with the local
        parity XOR-folded into the accumulated parity.
    """
    state = np.asarray(state, dtype=float)
    tensor = np.asarray(tensor, dtype=float)
    if state.ndim != 2 or state.shape[1] != 2:
        raise DecompositionError(f"chain state must have shape (configs, 2), got {state.shape}")
    if tensor.ndim != 3 or tensor.shape[2] != 2:
        raise DecompositionError(
            f"fragment tensor must have shape (in, out, 2), got {tensor.shape}"
        )
    if tensor.shape[0] != state.shape[0]:
        raise DecompositionError(
            f"state has {state.shape[0]} configurations, tensor expects {tensor.shape[0]}"
        )
    even = state[:, 0] @ tensor[:, :, 0] + state[:, 1] @ tensor[:, :, 1]
    odd = state[:, 0] @ tensor[:, :, 1] + state[:, 1] @ tensor[:, :, 0]
    return np.stack([even, odd], axis=-1)


def chain_probability_plus(tensors: Sequence[np.ndarray]) -> float:
    """Return the exact ``p₊`` of one product term from its fragment chain.

    The chain starts in the trivial state (one empty message configuration,
    even parity) and is advanced through every fragment tensor in order;
    the result is the total probability that the signed outcome — observable
    parity times the gadget sign bits — over *all* fragments is ``+1``.

    Parameters
    ----------
    tensors:
        One conditional tensor per fragment, in fragment order; tensor ``k``'s
        ``num_in_configs`` must equal tensor ``k−1``'s ``num_out_configs``.

    Returns
    -------
    float
        The probability of an even total parity, clipped to ``[0, 1]``.
    """
    if not tensors:
        raise DecompositionError("at least one fragment tensor is required")
    state = np.array([[1.0, 0.0]])
    for tensor in tensors:
        state = parity_transfer(state, tensor)
    probability_plus = float(np.sum(state[:, 0]))
    return min(max(probability_plus, 0.0), 1.0)


def signed_transfer(tensor: np.ndarray) -> np.ndarray:
    """Reduce a fragment tensor to its parity-signed transfer matrix.

    ``signed[i, o] = tensor[i, o, 0] − tensor[i, o, 1]`` is the expected
    ``(−1)^parity`` contribution of the fragment per (incoming, outgoing)
    configuration pair; chaining these matrices yields the exact expectation
    of the signed outcome, which is how
    :meth:`~repro.cutting.instances.InstanceTable.contract_exact_value`
    folds the κⁿ summation into a single pass.

    Parameters
    ----------
    tensor:
        Fragment conditional tensor of shape ``(in, out, 2)``.

    Returns
    -------
    numpy.ndarray
        The ``(in, out)`` signed transfer matrix.
    """
    tensor = np.asarray(tensor, dtype=float)
    if tensor.ndim != 3 or tensor.shape[2] != 2:
        raise DecompositionError(
            f"fragment tensor must have shape (in, out, 2), got {tensor.shape}"
        )
    return tensor[:, :, 0] - tensor[:, :, 1]


def expectation_from_probability(probability_plus: float) -> float:
    """Map a ±1 outcome's ``p₊`` to its expectation ``2 p₊ − 1``."""
    return 2.0 * float(probability_plus) - 1.0
