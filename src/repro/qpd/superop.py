"""Superoperator utilities for the QPD machinery.

The library vectorises density matrices in row-major (C) order:
``vec(ρ)[i*d + j] = ρ[i, j]``.  Under this convention the superoperator of a
Kraus channel is ``Σ_i K_i ⊗ conj(K_i)``.  The superoperator of a *tensor
product* of maps is not simply the Kronecker product of the factor
superoperators (the row/column indices interleave), so
:func:`tensor_superoperators` builds it explicitly by applying the factor
maps to a product operator basis.  The dimensions involved in wire cutting
are tiny (single-qubit maps), so the explicit construction is exact and cheap.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError

__all__ = ["apply_superoperator", "superoperator_of_matrix_pair", "tensor_superoperators"]


def apply_superoperator(superop: np.ndarray, rho: np.ndarray) -> np.ndarray:
    """Apply a superoperator to a density-like matrix and return the matrix result."""
    superop = np.asarray(superop, dtype=complex)
    rho = np.asarray(rho, dtype=complex)
    dim_in = rho.shape[0]
    if superop.shape[1] != dim_in * dim_in:
        raise DimensionError(
            f"superoperator input dimension {superop.shape[1]} does not match state {rho.shape}"
        )
    dim_out = int(round(np.sqrt(superop.shape[0])))
    return (superop @ rho.reshape(-1)).reshape(dim_out, dim_out)


def superoperator_of_matrix_pair(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Return the superoperator of the map ``ρ ↦ L ρ R``."""
    left = np.asarray(left, dtype=complex)
    right = np.asarray(right, dtype=complex)
    return np.kron(left, right.T)


def tensor_superoperators(
    superop_a: np.ndarray,
    superop_b: np.ndarray,
) -> np.ndarray:
    """Return the superoperator of ``F_A ⊗ F_B`` from the factor superoperators.

    Works for square factor maps (equal input and output dimension per
    factor), which is all the cutting machinery needs.
    """
    superop_a = np.asarray(superop_a, dtype=complex)
    superop_b = np.asarray(superop_b, dtype=complex)
    dim_a = int(round(np.sqrt(superop_a.shape[1])))
    dim_b = int(round(np.sqrt(superop_b.shape[1])))
    if superop_a.shape != (dim_a * dim_a, dim_a * dim_a) or superop_b.shape != (
        dim_b * dim_b,
        dim_b * dim_b,
    ):
        raise DimensionError("tensor_superoperators requires square factor maps")
    dim = dim_a * dim_b
    result = np.zeros((dim * dim, dim * dim), dtype=complex)
    # Apply the product map to every composite matrix unit E_{ia ja} ⊗ E_{ib jb}.
    for ia in range(dim_a):
        for ja in range(dim_a):
            unit_a = np.zeros((dim_a, dim_a), dtype=complex)
            unit_a[ia, ja] = 1.0
            out_a = apply_superoperator(superop_a, unit_a)
            for ib in range(dim_b):
                for jb in range(dim_b):
                    unit_b = np.zeros((dim_b, dim_b), dtype=complex)
                    unit_b[ib, jb] = 1.0
                    out_b = apply_superoperator(superop_b, unit_b)
                    column = np.kron(out_a, out_b).reshape(-1)
                    row_index = ia * dim_b + ib
                    col_index = ja * dim_b + jb
                    result[:, row_index * dim + col_index] = column
    return result
