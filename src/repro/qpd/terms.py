"""Quasiprobability-decomposition terms.

A :class:`QPDTerm` is one summand ``c_i · F_i`` of a quasiprobability
decomposition ``E = Σ_i c_i F_i`` (Eq. 11 of the paper).  The linear map
``F_i`` can be given in two interchangeable forms:

* a :class:`~repro.quantum.channels.QuantumChannel` (Kraus form), when the
  term is itself completely positive — this covers every term of the
  Harada and NME wire cuts;
* a raw superoperator matrix, for terms that are linear but not completely
  positive (e.g. the observable-weighted measure-and-prepare terms of the
  Peng wire cut, where a ±1 measurement eigenvalue is folded into the map).

Both forms expose ``superoperator()`` so a decomposition can always be
verified exactly by summing superoperators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DecompositionError
from repro.quantum.channels import QuantumChannel

__all__ = ["QPDTerm"]


@dataclass(frozen=True)
class QPDTerm:
    """One term ``c · F`` of a quasiprobability decomposition.

    Attributes
    ----------
    coefficient:
        The real quasiprobability weight ``c`` (may be negative).
    channel:
        The CP map ``F`` in Kraus form, when available.
    superoperator_matrix:
        Dense superoperator of ``F`` (row-major/C-order vectorisation:
        ``vec(F(ρ)) = S vec(ρ)``).  Required when ``channel`` is ``None``.
    label:
        Human-readable identifier used in logs and results.
    metadata:
        Free-form protocol-specific annotations (e.g. measurement basis,
        prepared state, whether the term consumes an entangled pair).
    """

    coefficient: float
    channel: QuantumChannel | None = None
    superoperator_matrix: np.ndarray | None = field(default=None, compare=False)
    label: str = ""
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.channel is None and self.superoperator_matrix is None:
            raise DecompositionError(
                f"term {self.label!r} needs either a channel or a superoperator matrix"
            )
        if not np.isfinite(self.coefficient):
            raise DecompositionError(f"term {self.label!r} has a non-finite coefficient")

    @property
    def sign(self) -> int:
        """Return ``sign(c)`` (+1 for zero coefficients by convention)."""
        return -1 if self.coefficient < 0 else 1

    @property
    def magnitude(self) -> float:
        """Return ``|c|``."""
        return abs(self.coefficient)

    def superoperator(self) -> np.ndarray:
        """Return the superoperator matrix of ``F`` (without the coefficient)."""
        if self.superoperator_matrix is not None:
            return np.asarray(self.superoperator_matrix, dtype=complex)
        return self.channel.superoperator()

    def apply_exact(self, rho: np.ndarray) -> np.ndarray:
        """Return ``F(ρ)`` (without the coefficient) for a density matrix ``ρ``."""
        rho = np.asarray(rho, dtype=complex)
        if self.channel is not None:
            return self.channel.apply_matrix(rho)
        superop = self.superoperator()
        dim_out = int(np.sqrt(superop.shape[0]))
        return (superop @ rho.reshape(-1)).reshape(dim_out, dim_out)

    def weighted_apply(self, rho: np.ndarray) -> np.ndarray:
        """Return ``c · F(ρ)``."""
        return self.coefficient * self.apply_exact(rho)
