"""Monte-Carlo recombination of per-term measurement results (Eq. 12).

The quasiprobability estimator of an expectation value is

.. math::

    \\mathrm{Tr}[O\\,E(\\rho)]
    = \\kappa \\sum_i p_i\\, \\mathrm{sign}(c_i)\\, \\mathrm{Tr}[O\\,F_i(\\rho)]
    = \\sum_i c_i\\, \\mathrm{Tr}[O\\,F_i(\\rho)] .

Given per-term empirical means of the measured observable this module
recombines them into the final estimate, propagates the standard error, and
records how the shot budget was spent.  The variance bookkeeping makes the
κ² shot-overhead of the paper directly observable in experiment output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DecompositionError

__all__ = [
    "TermEstimate",
    "QPDEstimate",
    "combine_term_estimates",
    "combine_term_means",
    "single_stream_estimate",
]


@dataclass(frozen=True)
class TermEstimate:
    """Empirical summary of the shots spent on one QPD term.

    Attributes
    ----------
    coefficient:
        The term's quasiprobability coefficient ``c_i``.
    mean:
        Empirical mean of the measured (±1-valued) observable for this term.
    shots:
        Number of shots spent on the term.
    variance:
        Empirical per-shot variance of the observable (defaults to the
        Bernoulli-style bound ``1 − mean²`` when not supplied).
    label:
        Term label, carried through for reporting.
    m2:
        Sum of squared deviations from the mean (Welford's ``M2``), carried
        by the adaptive engine's running statistics.  When present (and no
        explicit ``variance`` was given) the per-shot variance used for
        error propagation is the unbiased sample variance ``M2 / (n − 1)``;
        a single ±1 outcome carries no variance information, so one-shot
        terms use the unit variance bound.
    """

    coefficient: float
    mean: float
    shots: int
    variance: float | None = None
    label: str = ""
    m2: float | None = None

    @property
    def effective_variance(self) -> float:
        """Per-shot variance used for error propagation."""
        if self.variance is not None:
            return max(self.variance, 0.0)
        if self.m2 is not None:
            if self.shots > 1:
                return max(self.m2 / (self.shots - 1), 0.0)
            return 1.0
        return max(1.0 - self.mean**2, 0.0)


@dataclass(frozen=True)
class QPDEstimate:
    """Final recombined estimate of ``Tr[O E(ρ)]``.

    Attributes
    ----------
    value:
        The recombined expectation-value estimate.
    standard_error:
        Propagated standard error of ``value`` (0 when no shots were spent).
    total_shots:
        Total number of shots across all terms.
    kappa:
        The decomposition's 1-norm, recorded for convenience.
    term_estimates:
        The per-term summaries that produced the estimate.
    """

    value: float
    standard_error: float
    total_shots: int
    kappa: float
    term_estimates: tuple[TermEstimate, ...] = field(default_factory=tuple)


def combine_term_estimates(term_estimates: list[TermEstimate] | tuple[TermEstimate, ...]) -> QPDEstimate:
    """Recombine per-term means into the QPD expectation-value estimate.

    Terms that received zero shots contribute their coefficient times zero
    (an unbiased choice is impossible without data; the caller should ensure
    every term with non-zero coefficient receives at least one shot when the
    budget allows — the proportional allocator does this for realistic
    budgets).
    """
    if not term_estimates:
        raise DecompositionError("no term estimates to combine")
    value = 0.0
    variance = 0.0
    total_shots = 0
    kappa = 0.0
    for estimate in term_estimates:
        kappa += abs(estimate.coefficient)
        total_shots += estimate.shots
        if estimate.shots <= 0:
            continue
        value += estimate.coefficient * estimate.mean
        variance += (estimate.coefficient**2) * estimate.effective_variance / estimate.shots
    return QPDEstimate(
        value=float(value),
        standard_error=float(np.sqrt(variance)),
        total_shots=int(total_shots),
        kappa=float(kappa),
        term_estimates=tuple(term_estimates),
    )


def combine_term_means(
    coefficients: np.ndarray,
    means: np.ndarray,
    shots: np.ndarray,
    variances: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised recombination of batches of per-term means (Eq. 12).

    The batched counterpart of :func:`combine_term_estimates` for parameter
    sweeps: ``means`` and ``shots`` carry the term axis last and any number of
    leading batch axes (e.g. ``(num_budgets, num_terms)``), and the estimator
    value plus propagated standard error are computed for every batch element
    in one NumPy pass.

    Parameters
    ----------
    coefficients:
        Coefficient vector ``c_i`` of the decomposition, shape ``(num_terms,)``.
    means:
        Empirical per-term means, shape ``(..., num_terms)``.
    shots:
        Shots spent per term, broadcastable to the shape of ``means``.  Terms
        with zero shots contribute nothing (mirroring the serial combiner).
    variances:
        Optional per-shot variances; defaults to the Bernoulli bound
        ``1 − mean²``.

    Returns
    -------
    tuple[numpy.ndarray, numpy.ndarray]
        ``(values, standard_errors)`` with the batch shape of ``means`` minus
        the trailing term axis.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    if coefficients.ndim != 1 or coefficients.size == 0:
        raise DecompositionError("coefficients must be a non-empty 1-D array")
    means = np.asarray(means, dtype=float)
    shots = np.broadcast_to(np.asarray(shots, dtype=float), means.shape)
    if means.shape[-1] != coefficients.size:
        raise DecompositionError(
            f"means have {means.shape[-1]} terms, coefficients have {coefficients.size}"
        )
    if variances is None:
        variances = np.maximum(1.0 - means**2, 0.0)
    else:
        variances = np.maximum(np.broadcast_to(np.asarray(variances, dtype=float), means.shape), 0.0)
    sampled = shots > 0
    values = np.sum(np.where(sampled, coefficients * means, 0.0), axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        per_term = np.where(sampled, coefficients**2 * variances / np.where(sampled, shots, 1.0), 0.0)
    return values, np.sqrt(np.sum(per_term, axis=-1))


def single_stream_estimate(
    coefficients: np.ndarray,
    term_indices: np.ndarray,
    outcomes: np.ndarray,
) -> QPDEstimate:
    """Estimate from a single stream of (term, outcome) samples.

    This is the literal Monte-Carlo estimator of Eq. 12: each shot ``s``
    sampled term ``i_s`` with probability ``|c_{i_s}|/κ`` and produced an
    observable outcome ``o_s ∈ {−1, +1}``; the estimate is the sample mean of
    ``κ · sign(c_{i_s}) · o_s``.

    Parameters
    ----------
    coefficients:
        Coefficient vector of the decomposition.
    term_indices:
        Index of the term sampled for each shot.
    outcomes:
        Measured observable value for each shot.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    term_indices = np.asarray(term_indices, dtype=int)
    outcomes = np.asarray(outcomes, dtype=float)
    if term_indices.shape != outcomes.shape:
        raise DecompositionError("term_indices and outcomes must have the same shape")
    if term_indices.size == 0:
        raise DecompositionError("no samples provided")
    kappa = float(np.sum(np.abs(coefficients)))
    signs = np.sign(coefficients)[term_indices]
    signs[signs == 0] = 1
    weighted = kappa * signs * outcomes
    value = float(np.mean(weighted))
    stderr = float(np.std(weighted, ddof=1) / np.sqrt(weighted.size)) if weighted.size > 1 else 0.0

    term_estimates = []
    for index, coefficient in enumerate(coefficients):
        mask = term_indices == index
        shots = int(np.sum(mask))
        mean = float(np.mean(outcomes[mask])) if shots else 0.0
        term_estimates.append(
            TermEstimate(coefficient=float(coefficient), mean=mean, shots=shots, label=f"term_{index}")
        )
    return QPDEstimate(
        value=value,
        standard_error=stderr,
        total_shots=int(weighted.size),
        kappa=kappa,
        term_estimates=tuple(term_estimates),
    )
