"""Quasiprobability-decomposition framework (Sections II-B/II-C of the paper)."""

from repro.qpd.contraction import (
    chain_probability_plus,
    expectation_from_probability,
    parity_transfer,
    signed_transfer,
)
from repro.qpd.adaptive import (
    DEFAULT_MAX_ROUNDS,
    AdaptiveConfig,
    AdaptiveResult,
    RoundRecord,
    TermStatistics,
    run_adaptive_rounds,
)
from repro.qpd.allocation import (
    ALLOCATION_STRATEGIES,
    PLANNER_NAMES,
    NeymanPlanner,
    ProportionalPlanner,
    ShotPlanner,
    allocate_shots,
    resolve_planner,
)
from repro.qpd.decomposition import QuasiProbDecomposition
from repro.qpd.estimator import (
    QPDEstimate,
    TermEstimate,
    combine_term_estimates,
    combine_term_means,
    single_stream_estimate,
)
from repro.qpd.superop import (
    apply_superoperator,
    superoperator_of_matrix_pair,
    tensor_superoperators,
)
from repro.qpd.terms import QPDTerm

__all__ = [
    "QPDTerm",
    "QuasiProbDecomposition",
    "allocate_shots",
    "ALLOCATION_STRATEGIES",
    "ShotPlanner",
    "ProportionalPlanner",
    "NeymanPlanner",
    "resolve_planner",
    "PLANNER_NAMES",
    "AdaptiveConfig",
    "DEFAULT_MAX_ROUNDS",
    "AdaptiveResult",
    "RoundRecord",
    "TermStatistics",
    "run_adaptive_rounds",
    "TermEstimate",
    "QPDEstimate",
    "combine_term_estimates",
    "combine_term_means",
    "single_stream_estimate",
    "apply_superoperator",
    "superoperator_of_matrix_pair",
    "tensor_superoperators",
    "parity_transfer",
    "chain_probability_plus",
    "signed_transfer",
    "expectation_from_probability",
]
