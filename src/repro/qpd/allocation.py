"""Shot-allocation strategies for QPD sampling.

The paper's experiment allocates a fixed total shot budget to the three
subcircuits of Theorem 2 *proportionally to their coefficients*.  This module
implements that strategy (with largest-remainder rounding so the budget is
met exactly), plus two alternatives used by the ablation benchmarks:

``proportional``
    Deterministic allocation ``n_i ≈ N·|c_i|/κ`` (the paper's choice).
``multinomial``
    Every shot independently draws its term with probability ``|c_i|/κ``
    (the textbook Monte-Carlo estimator of Eq. 12).
``uniform``
    Equal split across terms regardless of coefficients (a deliberately
    sub-optimal baseline that shows why proportional weighting matters).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DecompositionError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["allocate_shots", "ALLOCATION_STRATEGIES"]

ALLOCATION_STRATEGIES = ("proportional", "multinomial", "uniform")


def _largest_remainder(weights: np.ndarray, total: int) -> np.ndarray:
    """Round ``total * weights`` to integers that sum exactly to ``total``."""
    ideal = weights * total
    floor = np.floor(ideal).astype(int)
    remainder = total - int(floor.sum())
    if remainder > 0:
        order = np.argsort(-(ideal - floor))
        floor[order[:remainder]] += 1
    return floor


def allocate_shots(
    probabilities: np.ndarray,
    shots: int,
    strategy: str = "proportional",
    seed: SeedLike = None,
) -> np.ndarray:
    """Return the number of shots assigned to each QPD term.

    Parameters
    ----------
    probabilities:
        The normalised sampling distribution ``p_i = |c_i|/κ``.
    shots:
        Total shot budget.
    strategy:
        One of :data:`ALLOCATION_STRATEGIES`.
    seed:
        Used only by the ``multinomial`` strategy.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.ndim != 1 or probabilities.size == 0:
        raise DecompositionError("probabilities must be a non-empty 1-D array")
    if np.any(probabilities < 0):
        raise DecompositionError("probabilities must be non-negative")
    total = probabilities.sum()
    if total <= 0:
        raise DecompositionError("probabilities must have positive total weight")
    probabilities = probabilities / total
    if shots < 0:
        raise ValueError(f"shots must be non-negative, got {shots}")
    if shots == 0:
        return np.zeros(probabilities.shape[0], dtype=int)

    if strategy == "proportional":
        return _largest_remainder(probabilities, shots)
    if strategy == "multinomial":
        rng = as_generator(seed)
        return rng.multinomial(shots, probabilities)
    if strategy == "uniform":
        uniform = np.full(probabilities.shape[0], 1.0 / probabilities.shape[0])
        return _largest_remainder(uniform, shots)
    raise DecompositionError(
        f"unknown allocation strategy {strategy!r}; expected one of {ALLOCATION_STRATEGIES}"
    )
