"""Shot-allocation strategies for QPD sampling.

The paper's experiment allocates a fixed total shot budget to the three
subcircuits of Theorem 2 *proportionally to their coefficients*.  This module
implements that strategy (with largest-remainder rounding so the budget is
met exactly), plus two alternatives used by the ablation benchmarks:

``proportional``
    Deterministic allocation ``n_i ≈ N·|c_i|/κ`` (the paper's choice).
``multinomial``
    Every shot independently draws its term with probability ``|c_i|/κ``
    (the textbook Monte-Carlo estimator of Eq. 12).
``uniform``
    Equal split across terms regardless of coefficients (a deliberately
    sub-optimal baseline that shows why proportional weighting matters).

For the streaming adaptive engine (:mod:`repro.qpd.adaptive`) this module
additionally defines the :class:`ShotPlanner` protocol — a per-round
allocator that sees the terms' running statistics — with two
implementations: :class:`ProportionalPlanner` (the static rule applied per
round) and :class:`NeymanPlanner` (variance-aware Neyman allocation
``n_i ∝ |c_i|·σ̂_i`` with an |coefficient|-proportional prior that anchors
early rounds before any variance has been observed).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import DecompositionError
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "allocate_shots",
    "ALLOCATION_STRATEGIES",
    "ShotPlanner",
    "ProportionalPlanner",
    "NeymanPlanner",
    "resolve_planner",
    "PLANNER_NAMES",
]

ALLOCATION_STRATEGIES = ("proportional", "multinomial", "uniform")

#: Planner names accepted by :func:`resolve_planner` (and the adaptive engine).
PLANNER_NAMES = ("proportional", "neyman")


def _largest_remainder(weights: np.ndarray, total: int) -> np.ndarray:
    """Round ``total * weights`` to integers that sum exactly to ``total``."""
    ideal = weights * total
    floor = np.floor(ideal).astype(int)
    remainder = total - int(floor.sum())
    if remainder > 0:
        order = np.argsort(-(ideal - floor))
        floor[order[:remainder]] += 1
    return floor


def allocate_shots(
    probabilities: np.ndarray,
    shots: int,
    strategy: str = "proportional",
    seed: SeedLike = None,
) -> np.ndarray:
    """Return the number of shots assigned to each QPD term.

    Parameters
    ----------
    probabilities:
        The normalised sampling distribution ``p_i = |c_i|/κ``.
    shots:
        Total shot budget.
    strategy:
        One of :data:`ALLOCATION_STRATEGIES`.
    seed:
        Used only by the ``multinomial`` strategy.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.ndim != 1 or probabilities.size == 0:
        raise DecompositionError("probabilities must be a non-empty 1-D array")
    if np.any(probabilities < 0):
        raise DecompositionError("probabilities must be non-negative")
    total = probabilities.sum()
    if total <= 0:
        raise DecompositionError("probabilities must have positive total weight")
    probabilities = probabilities / total
    if shots < 0:
        raise ValueError(f"shots must be non-negative, got {shots}")
    if shots == 0:
        return np.zeros(probabilities.shape[0], dtype=int)

    if strategy == "proportional":
        return _largest_remainder(probabilities, shots)
    if strategy == "multinomial":
        rng = as_generator(seed)
        return rng.multinomial(shots, probabilities)
    if strategy == "uniform":
        uniform = np.full(probabilities.shape[0], 1.0 / probabilities.shape[0])
        return _largest_remainder(uniform, shots)
    raise DecompositionError(
        f"unknown allocation strategy {strategy!r}; expected one of {ALLOCATION_STRATEGIES}"
    )


# ---------------------------------------------------------------------------
# Round planners for the streaming adaptive engine
# ---------------------------------------------------------------------------


def _ensure_coverage(allocation: np.ndarray, magnitudes: np.ndarray) -> np.ndarray:
    """Give every non-zero-coefficient term at least one shot when affordable.

    A term that never receives a shot contributes ``c_i · 0`` to the
    recombined estimate, biasing it.  When the round budget is at least the
    number of such terms, shots are moved from the most-allocated terms to
    the starved ones (deterministically, largest donors first), keeping the
    total exact.
    """
    needy = np.flatnonzero((allocation == 0) & (magnitudes > 0.0))
    if needy.size == 0 or int(allocation.sum()) < int(np.count_nonzero(magnitudes > 0.0)):
        return allocation
    allocation = allocation.copy()
    for index in needy:
        donor = int(np.argmax(allocation))
        if allocation[donor] <= 1:
            break
        allocation[donor] -= 1
        allocation[index] += 1
    return allocation


@runtime_checkable
class ShotPlanner(Protocol):
    """Protocol of per-round shot planners used by the adaptive engine.

    A planner sees the decomposition's coefficient magnitudes plus the
    terms' running statistics and splits one round's budget across the
    terms.  Implementations must return non-negative integers summing
    exactly to ``shots``.
    """

    name: str

    def plan(
        self,
        magnitudes: np.ndarray,
        counts: np.ndarray,
        variances: np.ndarray,
        shots: int,
    ) -> np.ndarray:
        """Split ``shots`` across the terms for the next round.

        Parameters
        ----------
        magnitudes:
            Coefficient magnitudes ``|c_i|`` of the terms.
        counts:
            Shots already spent per term (all zero in the first round).
        variances:
            Current per-shot variance estimate per term (sample variance of
            the observed ±1 outcomes; meaningful only where ``counts > 1``).
        shots:
            The round's total budget (non-negative).
        """
        ...


class ProportionalPlanner:
    """Static |coefficient|-proportional allocation applied to every round.

    The paper's rule, restated per round: the running statistics are
    ignored and each round splits its budget with largest-remainder
    rounding over ``|c_i|/κ``.  Useful as the adaptive engine's baseline
    (identical spending profile to the static path, but with early
    stopping).
    """

    name = "proportional"

    def plan(
        self,
        magnitudes: np.ndarray,
        counts: np.ndarray,
        variances: np.ndarray,
        shots: int,
    ) -> np.ndarray:
        """Split the round proportionally to coefficient magnitudes."""
        allocation = allocate_shots(magnitudes, int(shots), strategy="proportional")
        return _ensure_coverage(allocation, np.asarray(magnitudes, dtype=float))


class NeymanPlanner:
    """Variance-aware Neyman allocation with an |coefficient|-proportional prior.

    The estimator variance ``Σ c_i² σ_i² / n_i`` is minimised, for a fixed
    total, by ``n_i ∝ |c_i|·σ_i`` (Neyman allocation).  True σ_i are
    unknown, so each round blends the observed sample variance with a prior
    of 1.0 — the exact variance bound of a ±1-valued observable — weighted
    by ``prior_shots`` pseudo-counts.  With no data the weights reduce to
    ``|c_i|`` (the static rule); as counts grow the measured variances take
    over and low-variance terms stop receiving shots they cannot use.

    Parameters
    ----------
    prior_shots:
        Pseudo-count weight of the unit-variance prior (strictly positive).
    """

    name = "neyman"

    def __init__(self, prior_shots: float = 8.0):
        if not prior_shots > 0:
            raise DecompositionError(f"prior_shots must be positive, got {prior_shots}")
        self.prior_shots = float(prior_shots)

    def posterior_sigmas(self, counts: np.ndarray, variances: np.ndarray) -> np.ndarray:
        """Return the blended per-term standard deviations ``σ̂_i``."""
        counts = np.asarray(counts, dtype=float)
        variances = np.maximum(np.asarray(variances, dtype=float), 0.0)
        # Terms with fewer than two observations carry no usable sample
        # variance; they stay fully on the prior.
        observed = np.where(counts > 1, counts, 0.0)
        blended = (observed * variances + self.prior_shots * 1.0) / (observed + self.prior_shots)
        return np.sqrt(blended)

    def plan(
        self,
        magnitudes: np.ndarray,
        counts: np.ndarray,
        variances: np.ndarray,
        shots: int,
    ) -> np.ndarray:
        """Split the round by ``|c_i|·σ̂_i`` with largest-remainder rounding."""
        magnitudes = np.asarray(magnitudes, dtype=float)
        weights = magnitudes * self.posterior_sigmas(counts, variances)
        if not np.any(weights > 0.0):
            weights = magnitudes
        allocation = allocate_shots(weights, int(shots), strategy="proportional")
        return _ensure_coverage(allocation, magnitudes)


def resolve_planner(planner: "ShotPlanner | str | None") -> "ShotPlanner":
    """Return a planner instance for a name, an instance, or ``None`` (Neyman).

    ``None`` resolves to :class:`NeymanPlanner` (the adaptive engine's
    default); instances pass through unchanged.
    """
    if planner is None:
        return NeymanPlanner()
    if not isinstance(planner, str):
        return planner
    name = planner.lower().replace("_", "-").replace("-", "")
    if name == "proportional":
        return ProportionalPlanner()
    if name == "neyman":
        return NeymanPlanner()
    raise DecompositionError(
        f"unknown shot planner {planner!r}; expected one of {PLANNER_NAMES}"
    )
