"""Pytest bootstrap.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. on offline machines where ``pip install -e .`` is unavailable because
the ``wheel`` package is missing).  When the package *is* installed this is a
no-op apart from putting the in-tree sources first on ``sys.path``.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
