"""Integration tests reproducing the paper's central claims end to end.

These tests exercise the full stack (protocol → cutter → circuits → exact
branching simulation / shot sampling → recombination) and check the
quantitative statements of Theorems 1 and 2 and the qualitative shape of
Figure 6, on reduced workload sizes so the suite stays fast.
"""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.cutting import (
    CutLocation,
    HaradaWireCut,
    NMEWireCut,
    TeleportationWireCut,
    build_sampling_model,
    nme_overhead,
    optimal_overhead,
)
from repro.experiments import Figure6Config, run_figure6
from repro.quantum import k_from_overlap, overlap_from_k, random_statevector


class TestTheorem2EndToEnd:
    """The Theorem-2 QPD, executed as circuits, reconstructs the identity wire."""

    @pytest.mark.parametrize("k", [0.0, 0.1, 0.35, 0.62, 1.0, 1.8])
    def test_exact_identity_for_all_k(self, k):
        protocol = NMEWireCut(k)
        for seed in range(3):
            state = random_statevector(1, seed=seed)
            circuit = QuantumCircuit(1, 0)
            circuit.initialize(state.data, 0)
            for observable in ("X", "Y", "Z"):
                model = build_sampling_model(circuit, CutLocation(0, 1), protocol, observable)
                assert model.exact_cut_value() == pytest.approx(model.exact_value, abs=1e-9)

    @pytest.mark.parametrize("k", [0.0, 0.4, 1.0])
    def test_kappa_attains_corollary1(self, k):
        assert NMEWireCut(k).kappa == pytest.approx(nme_overhead(k))
        assert NMEWireCut(k).kappa == pytest.approx(optimal_overhead(overlap_from_k(k)))

    def test_interpolates_between_harada_and_teleportation(self):
        assert NMEWireCut(0.0).kappa == pytest.approx(HaradaWireCut().kappa)
        assert NMEWireCut(1.0).kappa == pytest.approx(TeleportationWireCut().kappa)

    def test_overhead_monotone_in_entanglement(self):
        kappas = [NMEWireCut.from_overlap(f).kappa for f in (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)]
        assert all(b < a for a, b in zip(kappas, kappas[1:]))


class TestFiniteShotBehaviour:
    """Finite-shot errors follow the κ/√N scaling the paper's Figure 6 shows."""

    def test_error_scales_with_kappa(self):
        # With identical shot budgets, the empirical error standard deviation
        # over repetitions should scale roughly like κ.
        state = random_statevector(1, seed=42)
        circuit = QuantumCircuit(1, 0)
        circuit.initialize(state.data, 0)
        rng = np.random.default_rng(0)
        shots = 400
        repetitions = 200

        def error_std(protocol) -> float:
            model = build_sampling_model(circuit, CutLocation(0, 1), protocol, "Z")
            errors = [model.estimate(shots, seed=rng).value - model.exact_value for _ in range(repetitions)]
            return float(np.std(errors))

        std_harada = error_std(HaradaWireCut())
        std_nme = error_std(NMEWireCut.from_overlap(0.9))
        std_teleport = error_std(TeleportationWireCut())
        assert std_teleport < std_nme < std_harada
        # κ ratio is 3 / 1.22 ≈ 2.45; allow generous statistical slack.
        assert std_harada / std_nme == pytest.approx(3.0 / nme_overhead(k_from_overlap(0.9)), rel=0.5)

    def test_estimator_unbiased(self):
        state = random_statevector(1, seed=17)
        circuit = QuantumCircuit(1, 0)
        circuit.initialize(state.data, 0)
        model = build_sampling_model(circuit, CutLocation(0, 1), NMEWireCut(0.5), "Z")
        rng = np.random.default_rng(1)
        values = [model.estimate(300, seed=rng).value for _ in range(400)]
        standard_error = np.std(values) / np.sqrt(len(values))
        assert np.mean(values) == pytest.approx(model.exact_value, abs=4 * standard_error)


class TestFigure6Shape:
    """A reduced Figure-6 sweep shows the paper's qualitative ordering."""

    def test_more_entanglement_less_error(self):
        result = run_figure6(
            Figure6Config(num_states=25, shot_grid=(600, 2400), overlaps=(0.5, 0.7, 0.9, 1.0), seed=23)
        )
        averaged = result.mean_errors.mean(axis=1)
        assert averaged[0] > averaged[2]
        assert averaged[0] > averaged[3]
        assert result.mean_errors[0, 0] > result.mean_errors[0, 1]

    def test_teleportation_is_floor_and_plain_cut_is_ceiling(self):
        result = run_figure6(
            Figure6Config(num_states=25, shot_grid=(1000,), overlaps=(0.5, 0.8, 1.0), seed=29)
        )
        errors = result.mean_errors[:, 0]
        assert errors[0] == max(errors)
        assert errors[2] == min(errors)
