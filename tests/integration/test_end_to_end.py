"""End-to-end integration tests cutting wires inside realistic circuits."""

import pytest

from repro.circuits import QuantumCircuit, exact_expectation
from repro.cutting import (
    CutLocation,
    CZGateCut,
    HaradaWireCut,
    NMEWireCut,
    PengWireCut,
    TeleportationWireCut,
    estimate_cut_expectation,
    estimate_gate_cut_expectation,
    estimate_multi_cut_expectation,
    exact_cut_expectation,
)
from repro.experiments import ghz_circuit, random_layered_circuit
from repro.quantum import PauliString


class TestGHZDistribution:
    """Cutting the middle wire of a GHZ circuit (the distributed-devices example)."""

    @pytest.fixture(scope="class")
    def circuit(self):
        return ghz_circuit(4)

    @pytest.mark.parametrize(
        "protocol",
        [HaradaWireCut(), PengWireCut(), NMEWireCut(0.5), TeleportationWireCut()],
        ids=lambda p: p.name,
    )
    def test_exact_parity_reconstruction(self, circuit, protocol):
        observable = PauliString("ZZZZ")
        value = exact_cut_expectation(circuit, CutLocation(1, 2), protocol, observable)
        assert value == pytest.approx(1.0, abs=1e-9)

    def test_finite_shot_estimate(self, circuit):
        observable = PauliString("ZZZZ")
        result = estimate_cut_expectation(
            circuit, CutLocation(1, 2), NMEWireCut.from_overlap(0.9), observable, shots=8000, seed=0
        )
        assert result.value == pytest.approx(1.0, abs=0.1)

    def test_xxxx_stabilizer(self, circuit):
        observable = PauliString("XXXX")
        value = exact_cut_expectation(circuit, CutLocation(1, 2), NMEWireCut(0.6), observable)
        assert value == pytest.approx(1.0, abs=1e-9)

    def test_non_stabilizer_observable(self, circuit):
        observable = PauliString("ZIII")
        value = exact_cut_expectation(circuit, CutLocation(1, 2), HaradaWireCut(), observable)
        assert value == pytest.approx(0.0, abs=1e-9)


class TestRandomCircuits:
    """Cuts inside random layered circuits reproduce exact expectation values."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_exact_reconstruction_random_observable_positions(self, seed):
        circuit = random_layered_circuit(3, 2, seed=seed)
        observable = PauliString("ZZZ")
        exact = exact_expectation(circuit, observable)
        # Cut the middle qubit's wire after the first layer (4 single-qubit
        # gates + 1 entangler = 5 instructions per layer for 3 qubits).
        location = CutLocation(qubit=1, position=4)
        for protocol in (HaradaWireCut(), NMEWireCut(0.7)):
            value = exact_cut_expectation(circuit, location, protocol, observable)
            assert value == pytest.approx(exact, abs=1e-9)

    def test_finite_shot_accuracy_tracks_kappa(self):
        circuit = random_layered_circuit(3, 2, seed=7)
        observable = PauliString("ZZZ")
        location = CutLocation(qubit=0, position=4)
        harada = estimate_cut_expectation(
            circuit, location, HaradaWireCut(), observable, shots=20_000, seed=11
        )
        teleport = estimate_cut_expectation(
            circuit, location, TeleportationWireCut(), observable, shots=20_000, seed=11
        )
        assert harada.error < 0.15
        assert teleport.error < 0.1


class TestMixedCutting:
    """Wire cuts, multi-wire cuts and gate cuts agree on the same circuit."""

    def test_gate_cut_and_wire_cut_agree(self):
        circuit = QuantumCircuit(2, 0)
        circuit.ry(0.9, 0).ry(0.4, 1).cz(0, 1).h(1)
        observable = PauliString("ZZ")
        exact = exact_expectation(circuit, observable)
        gate_result = estimate_gate_cut_expectation(
            circuit, 2, CZGateCut(), observable, shots=50_000, seed=3
        )
        wire_result = estimate_cut_expectation(
            circuit, CutLocation(0, 3), HaradaWireCut(), observable, shots=50_000, seed=3
        )
        assert gate_result.value == pytest.approx(exact, abs=0.07)
        assert wire_result.value == pytest.approx(exact, abs=0.07)

    def test_double_cut_ghz(self):
        # ⟨ZZI⟩ is a stabiliser of the GHZ state (value 1); ⟨ZZZ⟩ vanishes.
        circuit = ghz_circuit(3)
        for observable, expected in ((PauliString("ZZI"), 1.0), (PauliString("ZZZ"), 0.0)):
            result = estimate_multi_cut_expectation(
                circuit,
                [CutLocation(0, 2), CutLocation(1, 3)],
                [TeleportationWireCut(), TeleportationWireCut()],
                observable,
                shots=10_000,
                seed=5,
            )
            assert result.exact_value == pytest.approx(expected, abs=1e-9)
            assert result.value == pytest.approx(expected, abs=0.08)
            assert result.kappa == pytest.approx(1.0)

    def test_cut_circuit_with_existing_classical_bits(self):
        # A circuit that already uses classical bits keeps them separate from
        # the gadget's bits.
        circuit = QuantumCircuit(2, 1)
        circuit.ry(0.5, 0).cx(0, 1)
        observable = PauliString("IZ")
        exact = exact_expectation(circuit, observable)
        value = exact_cut_expectation(circuit, CutLocation(0, 1), NMEWireCut(0.8), observable)
        assert value == pytest.approx(exact, abs=1e-9)
