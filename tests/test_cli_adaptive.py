"""CLI tests for the adaptive execution mode (`cut run --mode adaptive`)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_adaptive_flags(self):
        args = build_parser().parse_args(
            [
                "cut",
                "run",
                "--mode",
                "adaptive",
                "--target-error",
                "0.05",
                "--max-shots",
                "9000",
                "--rounds",
                "6",
            ]
        )
        assert args.mode == "adaptive"
        assert args.target_error == pytest.approx(0.05)
        assert args.max_shots == 9000 and args.rounds == 6

    def test_jobs_submit_adaptive_flags(self):
        args = build_parser().parse_args(
            ["jobs", "submit", "--mode", "adaptive", "--target-error", "0.1"]
        )
        assert args.mode == "adaptive" and args.target_error == pytest.approx(0.1)


class TestCutRunAdaptive:
    def test_adaptive_run_prints_rounds_and_converges(self, capsys):
        code = main(
            [
                "cut",
                "run",
                "--qubits",
                "4",
                "--width",
                "3",
                "--mode",
                "adaptive",
                "--target-error",
                "0.05",
                "--max-shots",
                "100000",
                "--seed",
                "7",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        # Round-by-round progress goes to the stderr log; data stays on stdout.
        assert "round 1:" in captured.err
        assert "adaptive rounds (converged)" in captured.out
        assert "reconstruct:" in captured.out

    def test_target_error_requires_adaptive_mode(self, capsys):
        assert main(["cut", "run", "--target-error", "0.1"]) == 1
        assert "--target-error requires --mode adaptive" in capsys.readouterr().out

    def test_max_shots_requires_adaptive_mode(self, capsys):
        assert main(["cut", "run", "--max-shots", "100"]) == 1
        assert "--max-shots requires --mode adaptive" in capsys.readouterr().out

    def test_rounds_requires_adaptive_mode(self, capsys):
        assert main(["cut", "run", "--rounds", "5"]) == 1
        assert "--rounds requires --mode adaptive" in capsys.readouterr().out

    def test_allocation_rejected_in_adaptive_mode(self, capsys):
        assert (
            main(
                [
                    "cut",
                    "run",
                    "--mode",
                    "adaptive",
                    "--target-error",
                    "0.05",
                    "--allocation",
                    "uniform",
                ]
            )
            == 1
        )
        assert "--allocation applies to static mode" in capsys.readouterr().out

    def test_adaptive_execution_records_planner_as_allocation(self):
        from repro.experiments import ghz_circuit
        from repro.pipeline import CutPipeline

        pipeline = CutPipeline(max_fragment_width=3, backend="vectorized")
        execution = pipeline.execute(
            pipeline.decompose(pipeline.plan(ghz_circuit(4))),
            "ZZZZ",
            shots=50_000,
            seed=3,
            mode="adaptive",
            target_error=0.06,
        )
        assert execution.allocation == "neyman"

    def test_adaptive_requires_target_error(self, capsys):
        assert main(["cut", "run", "--mode", "adaptive"]) == 1
        assert "--mode adaptive requires --target-error" in capsys.readouterr().out

    @pytest.mark.parametrize("value", ["0", "-0.5", "nan", "inf"])
    def test_rejects_non_positive_target_error(self, capsys, value):
        assert main(["cut", "run", "--mode", "adaptive", "--target-error", value]) == 1
        assert "positive finite number" in capsys.readouterr().out

    def test_rejects_non_positive_rounds(self, capsys):
        assert (
            main(
                [
                    "cut",
                    "run",
                    "--mode",
                    "adaptive",
                    "--target-error",
                    "0.05",
                    "--rounds",
                    "0",
                ]
            )
            == 1
        )
        assert "--rounds must be a positive integer" in capsys.readouterr().out

    def test_stored_adaptive_run_caches_second_invocation(self, capsys, tmp_path):
        arguments = [
            "cut",
            "run",
            "--qubits",
            "4",
            "--width",
            "3",
            "--mode",
            "adaptive",
            "--target-error",
            "0.05",
            "--max-shots",
            "100000",
            "--seed",
            "7",
            "--store",
            str(tmp_path / "store"),
        ]
        assert main(arguments) == 0
        first = capsys.readouterr().out
        assert "fresh run" in first and "rounds (converged)" in first
        assert main(arguments) == 0
        second = capsys.readouterr().out
        assert "cache hit (no re-execution)" in second
