"""Unit tests for the QPD Monte-Carlo estimator recombination."""

import numpy as np
import pytest

from repro.exceptions import DecompositionError
from repro.qpd.estimator import (
    QPDEstimate,
    TermEstimate,
    combine_term_estimates,
    single_stream_estimate,
)


class TestTermEstimate:
    def test_effective_variance_default(self):
        term = TermEstimate(coefficient=1.0, mean=0.6, shots=100)
        assert term.effective_variance == pytest.approx(1 - 0.36)

    def test_effective_variance_explicit(self):
        term = TermEstimate(coefficient=1.0, mean=0.0, shots=10, variance=0.25)
        assert term.effective_variance == 0.25

    def test_effective_variance_clamped(self):
        term = TermEstimate(coefficient=1.0, mean=1.0, shots=10, variance=-0.1)
        assert term.effective_variance == 0.0


class TestCombine:
    def test_simple_recombination(self):
        estimates = [
            TermEstimate(coefficient=1.0, mean=0.5, shots=100),
            TermEstimate(coefficient=1.0, mean=0.3, shots=100),
            TermEstimate(coefficient=-1.0, mean=0.2, shots=100),
        ]
        result = combine_term_estimates(estimates)
        assert result.value == pytest.approx(0.6)
        assert result.total_shots == 300
        assert result.kappa == pytest.approx(3.0)

    def test_zero_shot_terms_skipped(self):
        estimates = [
            TermEstimate(coefficient=1.0, mean=0.9, shots=50),
            TermEstimate(coefficient=-0.5, mean=0.0, shots=0),
        ]
        result = combine_term_estimates(estimates)
        assert result.value == pytest.approx(0.9)
        assert result.kappa == pytest.approx(1.5)

    def test_standard_error_scaling(self):
        # Doubling shots should reduce the propagated error by sqrt(2).
        def build(shots: int) -> QPDEstimate:
            return combine_term_estimates(
                [TermEstimate(coefficient=2.0, mean=0.0, shots=shots, variance=1.0)]
            )

        assert build(200).standard_error == pytest.approx(build(100).standard_error / np.sqrt(2))

    def test_kappa_scales_error(self):
        small = combine_term_estimates(
            [TermEstimate(coefficient=1.0, mean=0.0, shots=100, variance=1.0)]
        )
        large = combine_term_estimates(
            [TermEstimate(coefficient=3.0, mean=0.0, shots=100, variance=1.0)]
        )
        assert large.standard_error == pytest.approx(3 * small.standard_error)

    def test_empty_raises(self):
        with pytest.raises(DecompositionError):
            combine_term_estimates([])


class TestSingleStream:
    def test_unbiased_on_synthetic_data(self):
        rng = np.random.default_rng(0)
        coefficients = np.array([2.0, -1.0])
        # Term 0 always yields +1, term 1 always yields +1: target = 2 - 1 = 1.
        probabilities = np.abs(coefficients) / np.abs(coefficients).sum()
        indices = rng.choice(2, size=20_000, p=probabilities)
        outcomes = np.ones(20_000)
        result = single_stream_estimate(coefficients, indices, outcomes)
        assert result.value == pytest.approx(1.0, abs=0.1)
        assert result.kappa == pytest.approx(3.0)

    def test_term_bookkeeping(self):
        coefficients = np.array([1.0, -1.0])
        indices = np.array([0, 0, 1])
        outcomes = np.array([1.0, -1.0, 1.0])
        result = single_stream_estimate(coefficients, indices, outcomes)
        assert result.total_shots == 3
        assert result.term_estimates[0].shots == 2
        assert result.term_estimates[1].mean == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(DecompositionError):
            single_stream_estimate(np.array([1.0]), np.array([0, 0]), np.array([1.0]))

    def test_empty_raises(self):
        with pytest.raises(DecompositionError):
            single_stream_estimate(np.array([1.0]), np.array([]), np.array([]))
