"""Unit tests for superoperator utilities."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.qpd.superop import (
    apply_superoperator,
    superoperator_of_matrix_pair,
    tensor_superoperators,
)
from repro.quantum.channels import QuantumChannel, amplitude_damping_channel, dephasing_channel
from repro.quantum.gates import H, X, Z
from repro.quantum.random import random_density_matrix


class TestApplySuperoperator:
    def test_unitary_channel(self):
        superop = np.kron(X, X.conj())
        rho = random_density_matrix(1, seed=0).data
        assert np.allclose(apply_superoperator(superop, rho), X @ rho @ X)

    def test_dimension_check(self):
        with pytest.raises(DimensionError):
            apply_superoperator(np.eye(4), np.eye(4))


class TestMatrixPair:
    def test_left_right_product(self):
        rho = random_density_matrix(1, seed=1).data
        superop = superoperator_of_matrix_pair(H, Z)
        assert np.allclose(apply_superoperator(superop, rho), H @ rho @ Z)


class TestTensorSuperoperators:
    def test_matches_channel_tensor(self):
        a = dephasing_channel(0.3)
        b = amplitude_damping_channel(0.4)
        composite = tensor_superoperators(a.superoperator(), b.superoperator())
        expected = a.tensor(b).superoperator()
        assert np.allclose(composite, expected)

    def test_unitary_factors(self):
        a = QuantumChannel.from_unitary(H)
        b = QuantumChannel.from_unitary(X)
        composite = tensor_superoperators(a.superoperator(), b.superoperator())
        rho = random_density_matrix(2, seed=2).data
        u = np.kron(H, X)
        assert np.allclose(apply_superoperator(composite, rho), u @ rho @ u.conj().T)

    def test_identity_factors(self):
        identity = np.eye(4)
        assert np.allclose(tensor_superoperators(identity, identity), np.eye(16))

    def test_rejects_non_square_maps(self):
        with pytest.raises(DimensionError):
            tensor_superoperators(np.eye(4), np.zeros((4, 2)))
