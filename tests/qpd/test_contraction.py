"""Unit tests for the transfer-matrix contraction kernels."""

import numpy as np
import pytest

from repro.exceptions import DecompositionError
from repro.qpd import (
    chain_probability_plus,
    expectation_from_probability,
    parity_transfer,
    signed_transfer,
)


def _random_tensor(rng, num_in, num_out):
    """A valid conditional tensor: rows are distributions over (out, parity)."""
    raw = rng.random((num_in, num_out, 2))
    return raw / raw.sum(axis=(1, 2), keepdims=True)


def _brute_force_probability_plus(tensors):
    """Enumerate every chain path and sum the even-total-parity mass."""
    states = [(0, 0, 1.0)]  # (config, accumulated parity, probability)
    for tensor in tensors:
        advanced = []
        for config, parity, probability in states:
            for out in range(tensor.shape[1]):
                for local in (0, 1):
                    advanced.append(
                        (out, parity ^ local, probability * tensor[config, out, local])
                    )
        states = advanced
    return sum(p for _, parity, p in states if parity == 0)


class TestParityTransfer:
    def test_manual_two_config_case(self):
        state = np.array([[0.5, 0.1], [0.3, 0.1]])
        tensor = np.zeros((2, 1, 2))
        tensor[0, 0, 0] = 0.75
        tensor[0, 0, 1] = 0.25
        tensor[1, 0, 0] = 0.4
        tensor[1, 0, 1] = 0.6
        advanced = parity_transfer(state, tensor)
        # even: 0.5*0.75 + 0.3*0.4 (even stays even) + 0.1*0.25 + 0.1*0.6 (odd flips back)
        assert advanced[0, 0] == pytest.approx(0.5 * 0.75 + 0.3 * 0.4 + 0.1 * 0.25 + 0.1 * 0.6)
        assert advanced[0, 1] == pytest.approx(0.5 * 0.25 + 0.3 * 0.6 + 0.1 * 0.75 + 0.1 * 0.4)
        assert advanced.shape == (1, 2)

    def test_probability_mass_is_preserved(self):
        rng = np.random.default_rng(11)
        state = np.array([[0.25, 0.25], [0.25, 0.25]])
        tensor = _random_tensor(rng, 2, 3)
        advanced = parity_transfer(state, tensor)
        assert advanced.sum() == pytest.approx(state.sum())

    def test_rejects_bad_state_shape(self):
        tensor = np.zeros((1, 1, 2))
        with pytest.raises(DecompositionError, match="chain state"):
            parity_transfer(np.zeros(3), tensor)
        with pytest.raises(DecompositionError, match="chain state"):
            parity_transfer(np.zeros((2, 3)), tensor)

    def test_rejects_bad_tensor_shape(self):
        state = np.array([[1.0, 0.0]])
        with pytest.raises(DecompositionError, match="fragment tensor"):
            parity_transfer(state, np.zeros((1, 2)))
        with pytest.raises(DecompositionError, match="fragment tensor"):
            parity_transfer(state, np.zeros((1, 2, 3)))

    def test_rejects_config_mismatch(self):
        state = np.array([[1.0, 0.0]])
        with pytest.raises(DecompositionError, match="configurations"):
            parity_transfer(state, np.zeros((2, 2, 2)))


class TestChainProbabilityPlus:
    def test_single_fragment_chain(self):
        tensor = np.zeros((1, 2, 2))
        tensor[0, 0, 0] = 0.5
        tensor[0, 1, 0] = 0.2
        tensor[0, 0, 1] = 0.1
        tensor[0, 1, 1] = 0.2
        assert chain_probability_plus([tensor]) == pytest.approx(0.7)

    def test_matches_brute_force_enumeration(self):
        rng = np.random.default_rng(5)
        tensors = [
            _random_tensor(rng, 1, 4),
            _random_tensor(rng, 4, 2),
            _random_tensor(rng, 2, 1),
        ]
        assert chain_probability_plus(tensors) == pytest.approx(
            _brute_force_probability_plus(tensors), abs=1e-12
        )

    def test_empty_chain_rejected(self):
        with pytest.raises(DecompositionError, match="at least one"):
            chain_probability_plus([])

    def test_result_is_clipped_against_round_off(self):
        tensor = np.zeros((1, 1, 2))
        tensor[0, 0, 0] = 1.0 + 1e-15
        assert chain_probability_plus([tensor]) == 1.0


class TestSignedTransfer:
    def test_values(self):
        tensor = np.zeros((2, 2, 2))
        tensor[0, 1, 0] = 0.8
        tensor[0, 1, 1] = 0.2
        tensor[1, 0, 1] = 1.0
        signed = signed_transfer(tensor)
        assert signed[0, 1] == pytest.approx(0.6)
        assert signed[1, 0] == pytest.approx(-1.0)
        assert signed.shape == (2, 2)

    def test_chained_signed_matrices_equal_expectation(self):
        rng = np.random.default_rng(9)
        tensors = [_random_tensor(rng, 1, 3), _random_tensor(rng, 3, 1)]
        signed = signed_transfer(tensors[0]) @ signed_transfer(tensors[1])
        expected = expectation_from_probability(chain_probability_plus(tensors))
        assert float(signed[0, 0]) == pytest.approx(expected, abs=1e-12)

    def test_rejects_bad_shape(self):
        with pytest.raises(DecompositionError, match="fragment tensor"):
            signed_transfer(np.zeros((2, 2)))


class TestExpectationFromProbability:
    @pytest.mark.parametrize(
        ("probability", "expected"), [(0.0, -1.0), (0.5, 0.0), (1.0, 1.0), (0.75, 0.5)]
    )
    def test_mapping(self, probability, expected):
        assert expectation_from_probability(probability) == pytest.approx(expected)
