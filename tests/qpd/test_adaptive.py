"""Unit tests for the streaming adaptive-shot engine and its planners."""

import numpy as np
import pytest

from repro.exceptions import CuttingError, DecompositionError
from repro.qpd.adaptive import (
    AdaptiveConfig,
    RoundRecord,
    TermStatistics,
    run_adaptive_rounds,
)
from repro.qpd.allocation import (
    NeymanPlanner,
    ProportionalPlanner,
    resolve_planner,
)


def binomial_executor(p_plus):
    """Round executor drawing ±1 means from fixed outcome probabilities."""
    p_plus = np.asarray(p_plus, dtype=float)

    def execute_round(index, shots, seed_sequence):
        rng = np.random.default_rng(seed_sequence)
        return [
            2.0 * rng.binomial(int(n), p) / n - 1.0 if n > 0 else 0.0
            for p, n in zip(p_plus, shots)
        ]

    return execute_round


class TestTermStatistics:
    def test_merge_matches_pooled_sample(self):
        rng = np.random.default_rng(3)
        outcomes = rng.choice([-1.0, 1.0], size=1000, p=[0.3, 0.7])
        stats = TermStatistics()
        for batch in np.split(outcomes, [100, 350, 600]):
            stats.merge_round(float(batch.mean()), len(batch))
        assert stats.shots == 1000
        assert stats.mean == pytest.approx(float(outcomes.mean()))
        assert stats.sample_variance == pytest.approx(float(outcomes.var(ddof=1)), rel=1e-9)

    def test_zero_shot_round_is_ignored(self):
        stats = TermStatistics()
        stats.merge_round(0.5, 0)
        assert stats.shots == 0 and stats.mean == 0.0

    def test_deterministic_term_has_zero_variance(self):
        stats = TermStatistics()
        stats.merge_round(1.0, 500)
        stats.merge_round(1.0, 500)
        assert stats.sample_variance == 0.0

    def test_to_term_estimate_carries_m2(self):
        stats = TermStatistics()
        stats.merge_round(0.2, 100)
        estimate = stats.to_term_estimate(coefficient=-1.5, label="t")
        assert estimate.m2 == pytest.approx(stats.m2)
        assert estimate.effective_variance == pytest.approx(stats.m2 / 99)


class TestRoundRecord:
    def test_payload_round_trip(self):
        record = RoundRecord(index=2, shots_per_term=(3, 0, 7), means=(0.5, 0.0, -1 / 3))
        restored = RoundRecord.from_payload(record.to_payload())
        assert restored == record
        assert restored.total_shots == 10


class TestConfigValidation:
    def test_rejects_nonpositive_target(self):
        with pytest.raises(CuttingError):
            AdaptiveConfig(target_error=0.0, max_shots=100).validate()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(CuttingError):
            AdaptiveConfig(target_error=0.1, max_shots=0).validate()

    def test_rejects_bad_growth(self):
        with pytest.raises(DecompositionError):
            AdaptiveConfig(target_error=0.1, max_shots=100, growth=1.0).validate()

    def test_rejects_bad_rounds(self):
        with pytest.raises(CuttingError):
            AdaptiveConfig(target_error=0.1, max_shots=100, max_rounds=0).validate()


class TestPlanners:
    def test_resolve_known_names(self):
        assert isinstance(resolve_planner("neyman"), NeymanPlanner)
        assert isinstance(resolve_planner("proportional"), ProportionalPlanner)
        assert isinstance(resolve_planner(None), NeymanPlanner)
        with pytest.raises(DecompositionError):
            resolve_planner("nope")

    def test_neyman_shifts_shots_to_high_variance_terms(self):
        magnitudes = np.array([1.0, 1.0])
        counts = np.array([500.0, 500.0])
        variances = np.array([1.0, 0.01])
        allocation = NeymanPlanner().plan(magnitudes, counts, variances, 1000)
        assert int(allocation.sum()) == 1000
        assert allocation[0] > allocation[1]

    def test_neyman_without_data_matches_proportional(self):
        magnitudes = np.array([2.0, 1.0, 1.0])
        zero = np.zeros(3)
        neyman = NeymanPlanner().plan(magnitudes, zero, zero, 999)
        proportional = ProportionalPlanner().plan(magnitudes, zero, zero, 999)
        assert np.array_equal(neyman, proportional)

    def test_coverage_of_nonzero_coefficient_terms(self):
        # A tiny-coefficient term still gets at least one shot when the
        # round budget allows, so the recombined estimate stays unbiased.
        magnitudes = np.array([1000.0, 1e-6])
        allocation = ProportionalPlanner().plan(magnitudes, np.zeros(2), np.zeros(2), 50)
        assert int(allocation.sum()) == 50
        assert allocation[1] >= 1


class TestEngine:
    COEFFS = np.array([0.9, -0.6, 0.4])
    P_PLUS = np.array([0.9, 0.35, 0.5])

    def run(self, **overrides):
        config_kwargs = {"target_error": 0.05, "max_shots": 100_000, "max_rounds": 16}
        config_kwargs.update(overrides.pop("config", {}))
        return run_adaptive_rounds(
            self.COEFFS,
            binomial_executor(self.P_PLUS),
            AdaptiveConfig(**config_kwargs),
            seed=overrides.pop("seed", 42),
            **overrides,
        )

    def test_converges_below_target(self):
        result = self.run()
        assert result.converged
        assert result.estimate.standard_error <= 0.05
        exact = float(np.sum(self.COEFFS * (2 * self.P_PLUS - 1)))
        assert abs(result.estimate.value - exact) < 0.2

    def test_budget_is_hard_ceiling(self):
        result = self.run(config={"target_error": 1e-4, "max_shots": 5000})
        assert not result.converged
        assert result.total_shots <= 5000

    def test_round_limit_is_respected(self):
        result = self.run(config={"target_error": 1e-6, "max_rounds": 3})
        assert len(result.rounds) <= 3

    def test_deterministic_for_fixed_seed(self):
        first, second = self.run(seed=9), self.run(seed=9)
        assert first.estimate == second.estimate
        assert first.rounds == second.rounds

    def test_resume_replay_is_bitwise_identical(self):
        full = self.run()
        assert len(full.rounds) >= 2
        resumed = self.run(completed_rounds=full.rounds[:2])
        assert resumed.estimate == full.estimate
        assert resumed.rounds == full.rounds

    def test_on_round_reports_progress(self):
        summaries = []
        result = self.run(on_round=lambda record, summary: summaries.append(summary))
        assert len(summaries) == len(result.rounds)
        assert summaries[-1]["converged"] is True
        assert summaries[-1]["shots_spent"] == result.total_shots
        assert summaries[-1]["current_stderr"] <= 0.05
        spent = [entry["shots_spent"] for entry in summaries]
        assert spent == sorted(spent)

    def test_out_of_order_completed_rounds_rejected(self):
        full = self.run()
        with pytest.raises(DecompositionError):
            self.run(completed_rounds=full.rounds[1:2])

    def test_completed_rounds_over_budget_rejected(self):
        full = self.run()
        with pytest.raises(DecompositionError):
            self.run(
                completed_rounds=full.rounds,
                config={"max_shots": max(full.rounds[0].total_shots - 1, 1)},
            )

    def test_one_shot_terms_do_not_fake_convergence(self):
        # A single ±1 outcome has 1 − mean² = 0; if one-shot terms counted
        # as zero-variance, a 1-shot-per-term probe would immediately
        # report convergence with a zero error bar.
        coefficients = np.full(50, 0.1)
        result = run_adaptive_rounds(
            coefficients,
            binomial_executor(np.full(50, 0.5)),
            AdaptiveConfig(target_error=0.05, max_shots=50, max_rounds=1, initial_shots=50),
            seed=0,
        )
        assert not result.converged
        assert result.estimate.standard_error > 0.05

    def test_truncated_means_in_completed_round_rejected(self):
        full = self.run()
        record = full.rounds[0]
        truncated = RoundRecord(
            index=0, shots_per_term=record.shots_per_term, means=record.means[:-1]
        )
        with pytest.raises(DecompositionError):
            self.run(completed_rounds=[truncated])

    def test_proportional_planner_spends_like_static(self):
        result = self.run(config={"planner": "proportional"})
        assert result.converged
        # Per-round totals are exact and shots stay |c|-proportional.
        for record in result.rounds:
            assert sum(record.shots_per_term) == record.total_shots
