"""Unit tests for shot allocation strategies."""

import numpy as np
import pytest

from repro.exceptions import DecompositionError
from repro.qpd.allocation import ALLOCATION_STRATEGIES, allocate_shots


class TestProportional:
    def test_exact_split(self):
        shots = allocate_shots(np.array([0.5, 0.25, 0.25]), 100)
        assert list(shots) == [50, 25, 25]

    def test_sums_to_total(self):
        for total in (1, 7, 99, 1000):
            shots = allocate_shots(np.array([0.4, 0.35, 0.25]), total)
            assert shots.sum() == total

    def test_largest_remainder_rounding(self):
        shots = allocate_shots(np.array([1 / 3, 1 / 3, 1 / 3]), 100)
        assert shots.sum() == 100
        assert sorted(shots) == [33, 33, 34]

    def test_unnormalised_weights(self):
        shots = allocate_shots(np.array([2.0, 1.0, 1.0]), 400)
        assert list(shots) == [200, 100, 100]

    def test_zero_shots(self):
        assert allocate_shots(np.array([0.5, 0.5]), 0).sum() == 0

    def test_deterministic(self):
        a = allocate_shots(np.array([0.6, 0.4]), 997)
        b = allocate_shots(np.array([0.6, 0.4]), 997)
        assert np.array_equal(a, b)


class TestBudgetSmallerThanTerms:
    """Budgets below the number of QPD terms must be conserved exactly."""

    @pytest.mark.parametrize("strategy", ALLOCATION_STRATEGIES)
    @pytest.mark.parametrize("budget", [1, 2, 3, 5])
    def test_budget_conserved(self, strategy, budget):
        probabilities = np.array([0.3, 0.25, 0.2, 0.15, 0.07, 0.03])
        shots = allocate_shots(probabilities, budget, strategy=strategy, seed=11)
        assert shots.sum() == budget
        assert np.all(shots >= 0)

    def test_proportional_prefers_heavy_terms(self):
        shots = allocate_shots(np.array([0.6, 0.25, 0.1, 0.05]), 2)
        assert shots.sum() == 2
        # The two heaviest terms carry the whole budget.
        assert shots[0] >= 1 and shots[3] == 0

    def test_uniform_single_shot(self):
        shots = allocate_shots(np.array([0.5, 0.3, 0.2]), 1, strategy="uniform")
        assert shots.sum() == 1
        assert np.count_nonzero(shots) == 1

    def test_one_shot_per_strategy_no_double_count(self):
        probabilities = np.array([0.4, 0.3, 0.3])
        for strategy in ALLOCATION_STRATEGIES:
            shots = allocate_shots(probabilities, 1, strategy=strategy, seed=5)
            assert shots.sum() == 1
            assert sorted(shots)[-2] == 0  # exactly one term holds the shot


class TestMultinomial:
    def test_sums_to_total(self):
        shots = allocate_shots(np.array([0.7, 0.3]), 500, strategy="multinomial", seed=0)
        assert shots.sum() == 500

    def test_seed_reproducibility(self):
        a = allocate_shots(np.array([0.7, 0.3]), 500, strategy="multinomial", seed=3)
        b = allocate_shots(np.array([0.7, 0.3]), 500, strategy="multinomial", seed=3)
        assert np.array_equal(a, b)

    def test_statistics(self):
        shots = allocate_shots(np.array([0.9, 0.1]), 10_000, strategy="multinomial", seed=1)
        assert abs(shots[0] - 9000) < 300


class TestUniform:
    def test_ignores_weights(self):
        shots = allocate_shots(np.array([0.99, 0.01]), 100, strategy="uniform")
        assert list(shots) == [50, 50]

    def test_sums_to_total_with_remainder(self):
        shots = allocate_shots(np.array([0.5, 0.3, 0.2]), 100, strategy="uniform")
        assert shots.sum() == 100


class TestValidation:
    def test_strategies_constant(self):
        assert set(ALLOCATION_STRATEGIES) == {"proportional", "multinomial", "uniform"}

    def test_unknown_strategy(self):
        with pytest.raises(DecompositionError):
            allocate_shots(np.array([1.0]), 10, strategy="magic")

    def test_negative_probabilities(self):
        with pytest.raises(DecompositionError):
            allocate_shots(np.array([-0.1, 1.1]), 10)

    def test_zero_weight(self):
        with pytest.raises(DecompositionError):
            allocate_shots(np.array([0.0, 0.0]), 10)

    def test_empty(self):
        with pytest.raises(DecompositionError):
            allocate_shots(np.array([]), 10)

    def test_negative_shots(self):
        with pytest.raises(ValueError):
            allocate_shots(np.array([1.0]), -1)
