"""Unit tests for QPD terms."""

import numpy as np
import pytest

from repro.exceptions import DecompositionError
from repro.qpd.terms import QPDTerm
from repro.quantum.channels import QuantumChannel, dephasing_channel
from repro.quantum.gates import X
from repro.quantum.random import random_density_matrix


class TestQPDTerm:
    def test_requires_channel_or_superoperator(self):
        with pytest.raises(DecompositionError):
            QPDTerm(coefficient=1.0)

    def test_rejects_non_finite_coefficient(self):
        with pytest.raises(DecompositionError):
            QPDTerm(coefficient=float("nan"), channel=QuantumChannel.from_unitary(X))

    def test_sign_and_magnitude(self):
        term = QPDTerm(coefficient=-0.5, channel=QuantumChannel.from_unitary(X))
        assert term.sign == -1
        assert term.magnitude == 0.5

    def test_positive_sign_for_zero(self):
        term = QPDTerm(coefficient=0.0, channel=QuantumChannel.from_unitary(X))
        assert term.sign == 1

    def test_superoperator_from_channel(self):
        channel = dephasing_channel(0.3)
        term = QPDTerm(coefficient=1.0, channel=channel)
        assert np.allclose(term.superoperator(), channel.superoperator())

    def test_superoperator_explicit(self):
        superop = np.eye(4)
        term = QPDTerm(coefficient=1.0, superoperator_matrix=superop)
        assert np.allclose(term.superoperator(), superop)

    def test_apply_exact_channel(self):
        rho = random_density_matrix(1, seed=0).data
        term = QPDTerm(coefficient=2.0, channel=QuantumChannel.from_unitary(X))
        assert np.allclose(term.apply_exact(rho), X @ rho @ X)
        assert np.allclose(term.weighted_apply(rho), 2.0 * X @ rho @ X)

    def test_apply_exact_superoperator(self):
        rho = random_density_matrix(1, seed=1).data
        superop = np.kron(X, X.conj())
        term = QPDTerm(coefficient=-1.0, superoperator_matrix=superop)
        assert np.allclose(term.apply_exact(rho), X @ rho @ X)
        assert np.allclose(term.weighted_apply(rho), -(X @ rho @ X))
