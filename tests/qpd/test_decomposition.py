"""Unit tests for QuasiProbDecomposition."""

import numpy as np
import pytest

from repro.exceptions import DecompositionError
from repro.qpd.decomposition import QuasiProbDecomposition
from repro.qpd.terms import QPDTerm
from repro.quantum.channels import QuantumChannel
from repro.quantum.gates import H, X, Z
from repro.quantum.random import random_density_matrix


def _unitary_term(coefficient: float, unitary: np.ndarray, label: str = "") -> QPDTerm:
    return QPDTerm(coefficient=coefficient, channel=QuantumChannel.from_unitary(unitary), label=label)


@pytest.fixture
def dephasing_identity_qpd() -> QuasiProbDecomposition:
    """A simple exact QPD of the identity: 2·(dephasing at p=1/2) − (Z conjugation) ... no.

    We use the valid identity ρ = 2·D(ρ) − ZρZ where D is full dephasing?  That
    does not hold; instead use the exact relation ρ = (ρ + ZρZ)/2 + (ρ − ZρZ)/2
    expressed with the three CP maps {id, Z·Z}: id = 1·id (trivial).  For a
    non-trivial fixture we take the X-basis identity
    ρ = H·(HρH)·H decomposed as one term.
    """
    return QuasiProbDecomposition([_unitary_term(1.0, np.eye(2), "id")], name="identity")


class TestBasics:
    def test_requires_terms(self):
        with pytest.raises(DecompositionError):
            QuasiProbDecomposition([])

    def test_kappa_and_probabilities(self):
        qpd = QuasiProbDecomposition(
            [_unitary_term(1.5, np.eye(2)), _unitary_term(-0.5, Z)]
        )
        assert qpd.kappa == pytest.approx(2.0)
        assert np.allclose(qpd.probabilities, [0.75, 0.25])
        assert list(qpd.signs) == [1, -1]
        assert qpd.coefficient_sum() == pytest.approx(1.0)
        assert qpd.sampling_overhead == pytest.approx(4.0)

    def test_container_protocol(self):
        qpd = QuasiProbDecomposition([_unitary_term(1.0, X, "x")])
        assert len(qpd) == 1
        assert qpd[0].label == "x"
        assert [t.label for t in qpd] == ["x"]


class TestExactEvaluation:
    def test_identity_decomposition(self, dephasing_identity_qpd):
        rho = random_density_matrix(1, seed=0).data
        assert np.allclose(dephasing_identity_qpd.apply_exact(rho), rho)
        assert dephasing_identity_qpd.matches_identity()

    def test_signed_combination(self):
        # ρ = 2·ρ − XρX applied to a Z eigenstate: 2|0><0| − |1><1| (not a state,
        # but the linear algebra must follow the coefficients exactly).
        qpd = QuasiProbDecomposition(
            [_unitary_term(2.0, np.eye(2)), _unitary_term(-1.0, X)]
        )
        rho = np.diag([1.0, 0.0])
        assert np.allclose(qpd.apply_exact(rho), np.diag([2.0, -1.0]))

    def test_expectation_exact(self):
        qpd = QuasiProbDecomposition([_unitary_term(1.0, H)])
        rho = np.diag([1.0, 0.0])
        x_observable = X
        # H|0><0|H = |+><+| has <X> = 1.
        assert qpd.expectation_exact(rho, x_observable) == pytest.approx(1.0)

    def test_matches_superoperator(self):
        qpd = QuasiProbDecomposition([_unitary_term(1.0, X)])
        assert qpd.matches_superoperator(np.kron(X, X.conj()))
        assert not qpd.matches_identity()


class TestValidation:
    def test_unit_sum_enforced(self):
        qpd = QuasiProbDecomposition([_unitary_term(0.7, np.eye(2))])
        with pytest.raises(DecompositionError):
            qpd.validate()
        qpd.validate(require_unit_sum=False)

    def test_valid_decomposition_passes(self):
        qpd = QuasiProbDecomposition(
            [_unitary_term(2.0, np.eye(2)), _unitary_term(-1.0, np.eye(2))]
        )
        qpd.validate()


class TestTensor:
    def test_kappa_multiplies(self):
        a = QuasiProbDecomposition([_unitary_term(2.0, np.eye(2)), _unitary_term(-1.0, Z)])
        b = QuasiProbDecomposition([_unitary_term(1.5, X), _unitary_term(-0.5, np.eye(2))])
        assert a.tensor(b).kappa == pytest.approx(a.kappa * b.kappa)

    def test_term_count_multiplies(self):
        a = QuasiProbDecomposition([_unitary_term(1.0, np.eye(2)), _unitary_term(0.5, Z)])
        assert len(a.tensor(a)) == 4

    def test_identity_tensor_identity_is_identity(self):
        identity = QuasiProbDecomposition([_unitary_term(1.0, np.eye(2))])
        combined = identity.tensor(identity)
        assert combined.matches_identity()

    def test_tensor_action_matches_kron(self):
        a = QuasiProbDecomposition([_unitary_term(1.0, X)])
        b = QuasiProbDecomposition([_unitary_term(1.0, Z)])
        combined = a.tensor(b)
        rho = random_density_matrix(2, seed=3).data
        expected = np.kron(X, Z) @ rho @ np.kron(X, Z).conj().T
        assert np.allclose(combined.apply_exact(rho), expected)

    def test_tensor_with_superoperator_terms(self):
        # Terms given only as superoperators still tensor correctly.
        superop_term = QPDTerm(coefficient=1.0, superoperator_matrix=np.kron(X, X.conj()))
        a = QuasiProbDecomposition([superop_term])
        b = QuasiProbDecomposition([_unitary_term(1.0, Z)])
        combined = a.tensor(b)
        rho = random_density_matrix(2, seed=4).data
        expected = np.kron(X, Z) @ rho @ np.kron(X, Z).conj().T
        assert np.allclose(combined.apply_exact(rho), expected)
