"""Suite-wide fixtures: helper imports and the repo-root ``runs/`` guard."""

import shutil
import sys
from pathlib import Path

import pytest

# Make the shared test doubles under tests/utils importable as
# ``from utils.faulty_backend import FaultyBackend`` from any test module.
_TESTS_DIR = Path(__file__).resolve().parent
if str(_TESTS_DIR) not in sys.path:
    sys.path.insert(0, str(_TESTS_DIR))

_REPO_ROOT = _TESTS_DIR.parent
_GUARDED = (_REPO_ROOT / "runs", _REPO_ROOT / "src" / "runs", _REPO_ROOT / "tests" / "runs")


@pytest.fixture(autouse=True)
def _guard_repo_root_runs():
    """Fail any test that creates a ``runs/`` store in the repository tree.

    Every store-touching test must route through a ``tmp_path``-scoped
    :class:`~repro.service.store.RunStore`; a ``runs/`` directory appearing
    in the repo root means a default store path leaked.  The stray
    directory is removed so one offender cannot cascade into masking
    failures (or green runs) of later tests.
    """
    existing = {path for path in _GUARDED if path.exists()}
    yield
    leaked = [path for path in _GUARDED if path.exists() and path not in existing]
    for path in leaked:
        shutil.rmtree(path, ignore_errors=True)
    if leaked:
        pytest.fail(
            f"test created {', '.join(str(p) for p in leaked)} — run stores must "
            "be tmp_path-scoped, never default to the repository tree"
        )
