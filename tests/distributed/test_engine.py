"""The headline invariant: distributed rounds are bitwise identical to in-process.

Every test here compares a distributed adaptive run against the in-process
reference for the *same seed* and asserts exact float equality — across
worker counts, steal policies, pool modes and fleet layouts.  The invariant
is what lets ``execution="distributed"`` share content-addressed run
artifacts with in-process twins.
"""

import numpy as np
import pytest

from repro.circuits.backends import resolve_backend
from repro.devices import DeviceFleet, NoiseModel, VirtualDevice
from repro.distributed import DistributedRoundExecutor, WorkStealingScheduler
from repro.exceptions import DecompositionError, DistributedError
from repro.qpd.adaptive import AdaptiveConfig, TermStatistics, run_adaptive_rounds
from repro.cutting.executor import BackendRoundExecutor

from utils.workloads import ghz_cut_workload

pytestmark = pytest.mark.xdist_group("forkheavy")

SEED = 20240731
CONFIG = AdaptiveConfig(target_error=0.05, max_shots=4000, max_rounds=4)


@pytest.fixture(scope="module")
def workload():
    return ghz_cut_workload(num_qubits=3, overlap=0.8)


@pytest.fixture(scope="module")
def reference(workload):
    """The in-process adaptive run every distributed variant must reproduce."""
    executor = BackendRoundExecutor(
        resolve_backend("vectorized"),
        workload.measured_circuits,
        workload.selected_clbits,
    )
    return run_adaptive_rounds(
        workload.coefficients, executor, CONFIG, seed=SEED, labels=workload.labels
    )


def assert_bitwise_equal(result, reference):
    assert result.estimate.value == reference.estimate.value
    assert result.estimate.standard_error == reference.estimate.standard_error
    assert result.total_shots == reference.total_shots
    assert [r.to_payload() for r in result.rounds] == [
        r.to_payload() for r in reference.rounds
    ]


def distributed_run(workload, **options):
    options.setdefault("backend", "vectorized")
    executor = DistributedRoundExecutor(
        workload.measured_circuits, workload.selected_clbits, **options
    )
    with executor:
        return (
            run_adaptive_rounds(
                workload.coefficients,
                executor,
                CONFIG,
                seed=SEED,
                labels=workload.labels,
                execution="distributed",
            ),
            executor,
        )


class TestBitwiseIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_identical_across_worker_counts(self, workload, reference, workers):
        result, _ = distributed_run(workload, workers=workers, mode="inline")
        assert_bitwise_equal(result, reference)

    @pytest.mark.parametrize("steal", ["max-backlog", "round-robin", "random", "none"])
    def test_identical_across_steal_policies(self, workload, reference, steal):
        result, _ = distributed_run(
            workload, workers=3, mode="inline", steal=steal, steal_seed=5
        )
        assert_bitwise_equal(result, reference)

    def test_identical_with_real_worker_processes(self, workload, reference):
        result, executor = distributed_run(workload, workers=2, mode="process")
        assert_bitwise_equal(result, reference)
        assert executor.pool.units_completed > 0

    def test_identical_with_simulated_latency_skew(self, workload, reference):
        # A slow device forces steals; the statistics must not notice.
        result, executor = distributed_run(
            workload,
            workers=3,
            mode="inline",
            latencies={"worker-0": 0.001},
        )
        assert_bitwise_equal(result, reference)

    def test_identical_on_a_device_fleet(self, workload):
        def fleet():
            return DeviceFleet(
                [
                    VirtualDevice("clean", capacity=2.0),
                    VirtualDevice("noisy", noise=NoiseModel(readout_p10=0.02)),
                ],
                split="capacity",
            )

        in_process = run_adaptive_rounds(
            workload.coefficients,
            BackendRoundExecutor(
                fleet(), workload.measured_circuits, workload.selected_clbits
            ),
            CONFIG,
            seed=SEED,
            labels=workload.labels,
        )
        result, executor = distributed_run(
            workload, backend=fleet(), workers=2, mode="inline"
        )
        assert_bitwise_equal(result, in_process)
        # The fleet seeds the device layout and the split weights.
        assert executor.scheduler.devices == ("clean", "noisy")
        assert np.allclose(executor.scheduler.weights, [2 / 3, 1 / 3])


class TestExecutorLedger:
    def test_term_statistics_match_round_records(self, workload, reference):
        """The coordinator's Chan-merged ledger equals round-by-round Welford."""
        result, executor = distributed_run(workload, workers=3, mode="inline")
        expected = [TermStatistics() for _ in workload.measured_circuits]
        for record in result.rounds:
            for term, (count, mean) in enumerate(
                zip(record.shots_per_term, record.means)
            ):
                if count > 0 and workload.selected_clbits[term]:
                    expected[term].merge_round(mean, count)
        for ledger, want in zip(executor.term_statistics, expected):
            assert ledger.shots == want.shots
            assert ledger.mean == want.mean
            assert ledger.m2 == want.m2

    def test_steals_happen_under_skewed_weights(self, workload):
        # Weights this skewed home every unit on "slow", so the idle "fast"
        # worker can only make progress by stealing.
        scheduler = WorkStealingScheduler(
            ["slow", "fast"], weights=[1000.0, 1.0], steal="max-backlog"
        )
        _, executor = distributed_run(
            workload, workers=2, mode="inline", scheduler=scheduler
        )
        assert executor.steals > 0
        assert executor.rounds_executed >= 1

    def test_static_assignment_never_steals(self, workload):
        _, executor = distributed_run(workload, workers=2, mode="inline", steal="none")
        assert executor.steals == 0


class TestValidation:
    def test_unknown_execution_mode_is_rejected(self, workload):
        executor = BackendRoundExecutor(
            resolve_backend("serial"),
            workload.measured_circuits,
            workload.selected_clbits,
        )
        with pytest.raises(DecompositionError, match="unknown execution"):
            run_adaptive_rounds(
                workload.coefficients, executor, CONFIG, seed=1, execution="remote"
            )

    def test_workers_require_distributed_execution(self, workload):
        executor = BackendRoundExecutor(
            resolve_backend("serial"),
            workload.measured_circuits,
            workload.selected_clbits,
        )
        with pytest.raises(DecompositionError, match="workers"):
            run_adaptive_rounds(workload.coefficients, executor, CONFIG, seed=1, workers=2)

    def test_distributed_execution_needs_a_distribute_hook(self, workload):
        def bare_executor(index, shots, seed):
            return [0.0] * len(workload.coefficients)

        with pytest.raises(DecompositionError, match="distribute"):
            run_adaptive_rounds(
                workload.coefficients,
                bare_executor,
                CONFIG,
                seed=1,
                execution="distributed",
            )

    def test_distribute_hook_rejects_mismatched_worker_count(self, workload):
        executor = DistributedRoundExecutor(
            workload.measured_circuits,
            workload.selected_clbits,
            backend="serial",
            workers=2,
            mode="inline",
        )
        assert executor.distribute() is executor
        assert executor.distribute(2) is executor
        with pytest.raises(DistributedError, match="already distributed"):
            executor.distribute(3)

    def test_executor_rejects_wrong_allocation_length(self, workload):
        executor = DistributedRoundExecutor(
            workload.measured_circuits,
            workload.selected_clbits,
            backend="serial",
            workers=1,
            mode="inline",
        )
        with pytest.raises(DistributedError, match="allocations"):
            executor(0, [10], np.random.SeedSequence(0))

    def test_backend_hook_distribute_builds_distributed_executor(self, workload):
        hook = BackendRoundExecutor(
            resolve_backend("serial"),
            workload.measured_circuits,
            workload.selected_clbits,
        )
        distributed = hook.distribute(workers=3, mode="inline")
        try:
            assert isinstance(distributed, DistributedRoundExecutor)
            assert distributed.num_workers == 3
        finally:
            distributed.close()
