"""Unit tests of the RoundQueue's backlog and steal disciplines."""

import numpy as np
import pytest

from repro.distributed import STEAL_POLICIES, RoundQueue, WorkUnit
from repro.exceptions import DeviceError


def unit(term, shots=10, device="a", round_index=0):
    return WorkUnit(
        round_index=round_index,
        term_index=term,
        shots=shots,
        seed=np.random.SeedSequence(0),
        device=device,
    )


class TestConstruction:
    def test_rejects_empty_devices(self):
        with pytest.raises(DeviceError, match="at least one device"):
            RoundQueue([])

    def test_rejects_duplicate_devices(self):
        with pytest.raises(DeviceError, match="duplicate"):
            RoundQueue(["a", "b", "a"])

    def test_rejects_unknown_policy(self):
        with pytest.raises(DeviceError, match="steal policy"):
            RoundQueue(["a"], steal="optimistic")

    def test_exposes_devices_and_policy(self):
        queue = RoundQueue(["a", "b"], steal="round-robin")
        assert queue.devices == ("a", "b")
        assert queue.steal_policy == "round-robin"
        assert "round-robin" in STEAL_POLICIES


class TestBacklog:
    def test_push_and_len(self):
        queue = RoundQueue(["a", "b"])
        queue.push(unit(0, device="a"))
        queue.push(unit(1, device="b"))
        queue.push(unit(2, device="b"))
        assert len(queue) == 3
        assert queue.backlog("a") == 1
        assert queue.backlog("b") == 2
        assert sorted(queue.unit_keys()) == [(0, 0), (0, 1), (0, 2)]

    def test_push_rejects_unknown_device(self):
        queue = RoundQueue(["a"])
        with pytest.raises(DeviceError, match="unknown device"):
            queue.push(unit(0, device="ghost"))

    def test_own_queue_is_fifo(self):
        queue = RoundQueue(["a"])
        queue.push(unit(0))
        queue.push(unit(1))
        assert queue.next_unit("a").term_index == 0
        assert queue.next_unit("a").term_index == 1
        assert queue.next_unit("a") is None

    def test_requeue_puts_unit_at_front(self):
        queue = RoundQueue(["a"])
        queue.push(unit(0))
        queue.push(unit(1))
        recovered = queue.next_unit("a")
        queue.requeue(recovered)
        assert queue.next_unit("a").term_index == 0

    def test_next_unit_rejects_unknown_device(self):
        queue = RoundQueue(["a"])
        with pytest.raises(DeviceError, match="unknown device"):
            queue.next_unit("ghost")


class TestStealing:
    def test_none_policy_never_steals(self):
        queue = RoundQueue(["a", "b"], steal="none")
        queue.push(unit(0, device="b"))
        assert queue.next_unit("a") is None
        assert queue.steals == 0
        assert queue.backlog("b") == 1

    def test_steal_pops_from_victim_tail(self):
        queue = RoundQueue(["a", "b"])
        queue.push(unit(0, device="b"))
        queue.push(unit(1, device="b"))
        stolen = queue.next_unit("a")
        assert stolen.term_index == 1  # victim's tail, not its head
        assert queue.steals == 1
        assert queue.steal_log == [("a", "b", (0, 1))]

    def test_max_backlog_picks_longest_queue(self):
        queue = RoundQueue(["a", "b", "c"])
        queue.push(unit(0, device="b"))
        for term in (1, 2, 3):
            queue.push(unit(term, device="c"))
        stolen = queue.next_unit("a")
        assert stolen.device == "c"

    def test_max_backlog_tie_breaks_by_declaration_order(self):
        queue = RoundQueue(["a", "b", "c"])
        queue.push(unit(0, device="c"))
        queue.push(unit(1, device="b"))
        stolen = queue.next_unit("a")
        assert stolen.device == "b"  # b precedes c in declaration order

    def test_round_robin_cycles_victims(self):
        queue = RoundQueue(["a", "b", "c"], steal="round-robin")
        for term in (0, 1):
            queue.push(unit(term, device="b"))
        for term in (2, 3):
            queue.push(unit(term, device="c"))
        victims = [queue.next_unit("a").device for _ in range(4)]
        assert victims.count("b") == 2 and victims.count("c") == 2
        assert victims != ["b", "b", "c", "c"]  # interleaved, not drained in order

    def test_random_policy_is_reproducible_by_seed(self):
        def steal_pattern(seed):
            queue = RoundQueue(["a", "b", "c"], steal="random", steal_seed=seed)
            for term in range(3):
                queue.push(unit(term, device="b"))
            for term in range(3, 6):
                queue.push(unit(term, device="c"))
            return [queue.next_unit("a").device for _ in range(6)]

        assert steal_pattern(7) == steal_pattern(7)

    def test_steal_returns_none_when_everything_is_empty(self):
        queue = RoundQueue(["a", "b"])
        assert queue.next_unit("a") is None
        assert queue.steals == 0
