"""Determinism soak: many shuffled distributed runs, one fingerprint.

Marked ``slow`` and ``nightly``: the nightly workflow runs it as a soak,
the PR matrix excludes it with ``-m "not nightly"``.
"""

import pytest

from repro.distributed import STEAL_POLICIES, DistributedRoundExecutor
from repro.qpd.adaptive import AdaptiveConfig, run_adaptive_rounds
from repro.utils.serialization import payload_fingerprint
from repro.cutting.executor import BackendRoundExecutor
from repro.circuits.backends import resolve_backend

from utils.workloads import ghz_cut_workload

pytestmark = [pytest.mark.slow, pytest.mark.nightly, pytest.mark.xdist_group("forkheavy")]

SEED = 987654321
CONFIG = AdaptiveConfig(target_error=0.04, max_shots=3000, max_rounds=4)


def run_fingerprint(workload, result):
    return payload_fingerprint(
        {
            "value": result.estimate.value,
            "standard_error": result.estimate.standard_error,
            "total_shots": result.total_shots,
            "rounds": [record.to_payload() for record in result.rounds],
        }
    )


@pytest.mark.integration
def test_twenty_shuffled_distributed_runs_share_one_fingerprint():
    workload = ghz_cut_workload(num_qubits=3, overlap=0.8)
    in_process = run_adaptive_rounds(
        workload.coefficients,
        BackendRoundExecutor(
            resolve_backend("vectorized"),
            workload.measured_circuits,
            workload.selected_clbits,
        ),
        CONFIG,
        seed=SEED,
        labels=workload.labels,
    )
    expected = run_fingerprint(workload, in_process)

    # 20 scheduling variations: worker counts 1–5, all four steal policies,
    # shifting steal seeds, plus real worker processes on the last three.
    scenarios = [
        {
            "workers": 1 + (index % 5),
            "steal": STEAL_POLICIES[index % len(STEAL_POLICIES)],
            "steal_seed": index * 17 + 3,
            "mode": "process" if index >= 17 else "inline",
        }
        for index in range(20)
    ]
    fingerprints = set()
    for scenario in scenarios:
        executor = DistributedRoundExecutor(
            workload.measured_circuits,
            workload.selected_clbits,
            backend="vectorized",
            **scenario,
        )
        with executor:
            result = run_adaptive_rounds(
                workload.coefficients,
                executor,
                CONFIG,
                seed=SEED,
                labels=workload.labels,
                execution="distributed",
            )
        fingerprints.add(run_fingerprint(workload, result))

    assert fingerprints == {expected}, (
        f"distributed runs fragmented into {len(fingerprints)} fingerprints; "
        "scheduling leaked into the statistics"
    )
