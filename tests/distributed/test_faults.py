"""Fault injection: worker deaths, flaky backends and retry exhaustion.

The recovery contract under test: any interleaving of worker crashes and
backend faults either completes the round with bitwise-identical statistics
(units are re-queued and retried) or raises ``DistributedError`` — never a
silently wrong estimate.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.circuits.backends import resolve_backend
from repro.distributed import (
    DistributedRoundExecutor,
    RoundQueue,
    WorkUnit,
    WorkerPool,
    execute_unit,
)
from repro.exceptions import DistributedError
from repro.qpd.adaptive import AdaptiveConfig, run_adaptive_rounds

from utils.faulty_backend import FaultyBackend
from utils.workloads import ghz_cut_workload

pytestmark = pytest.mark.xdist_group("forkheavy")

SEED = 424242


@pytest.fixture(scope="module")
def workload():
    return ghz_cut_workload(num_qubits=3, overlap=0.8)


def make_units(workload, shots=60):
    seed = np.random.SeedSequence(SEED)
    return [
        WorkUnit(round_index=0, term_index=term, shots=shots, seed=seed, device="")
        for term in range(len(workload.measured_circuits))
        if workload.selected_clbits[term]
    ]


def loaded_queue(units, devices, steal="max-backlog"):
    queue = RoundQueue(devices, steal=steal)
    for index, unit in enumerate(units):
        queue.push(
            WorkUnit(
                round_index=unit.round_index,
                term_index=unit.term_index,
                shots=unit.shots,
                seed=unit.seed,
                device=devices[index % len(devices)],
            )
        )
    return queue


def reference_results(workload, units):
    backend = resolve_backend("serial")
    return [
        execute_unit(
            backend, workload.measured_circuits, workload.selected_clbits, unit
        )
        for unit in sorted(units, key=lambda u: u.key)
    ]


def summaries(results):
    return [(r.key, r.shots, r.mean) for r in results]


class RoundThread(threading.Thread):
    """Drive ``pool.run_round`` off the main thread, capturing the outcome."""

    def __init__(self, pool, queue):
        super().__init__(daemon=True)
        self._pool = pool
        self._queue = queue
        self.results = None
        self.error = None

    def run(self):
        try:
            self.results = self._pool.run_round(self._queue)
        except Exception as error:  # re-raised by the asserting test
            self.error = error


class TestWorkerDeath:
    def test_sigkilled_worker_unit_is_requeued_and_round_completes(self, workload):
        units = make_units(workload)
        devices = ("a", "b")
        pool = WorkerPool(
            workload.measured_circuits,
            workload.selected_clbits,
            backend="serial",
            devices=devices,
            workers=2,
            latencies={"a": 0.3, "b": 0.3},
            poll_interval=0.02,
        )
        with pool:
            victim = pool._handles[0]
            driver = RoundThread(pool, loaded_queue(units, devices))
            driver.start()
            # Let both workers pick up their first unit, then kill one
            # mid-execution (inside its simulated latency sleep).
            deadline = time.monotonic() + 5.0
            while victim.in_flight is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert victim.in_flight is not None
            os.kill(victim.process.pid, signal.SIGKILL)
            driver.join(timeout=30.0)
        assert driver.error is None
        assert pool.requeues >= 1
        assert summaries(driver.results) == summaries(reference_results(workload, units))

    def test_all_workers_dead_raises_distributed_error(self, workload):
        units = make_units(workload)
        devices = ("a", "b")
        pool = WorkerPool(
            workload.measured_circuits,
            workload.selected_clbits,
            backend="serial",
            devices=devices,
            workers=2,
            latencies={"a": 0.6, "b": 0.6},
            poll_interval=0.02,
        )
        with pool:
            driver = RoundThread(pool, loaded_queue(units, devices))
            driver.start()
            deadline = time.monotonic() + 5.0
            while (
                any(h.in_flight is None for h in pool._handles)
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            for handle in pool._handles:
                os.kill(handle.process.pid, signal.SIGKILL)
            driver.join(timeout=30.0)
        assert isinstance(driver.error, DistributedError)
        assert "workers died" in str(driver.error)


class TestFlakyBackend:
    def test_inline_fault_is_retried_to_identical_results(self, workload):
        units = make_units(workload)
        pool = WorkerPool(
            workload.measured_circuits,
            workload.selected_clbits,
            backend=FaultyBackend("serial", fail_on=(1,)),
            devices=("a", "b"),
            mode="inline",
        )
        results = pool.run_round(loaded_queue(units, ("a", "b")))
        assert pool.retries == 1
        assert summaries(results) == summaries(reference_results(workload, units))

    def test_process_fault_per_worker_is_retried_to_identical_results(self, workload):
        units = make_units(workload)
        devices = ("a", "b")
        pool = WorkerPool(
            workload.measured_circuits,
            workload.selected_clbits,
            backend=FaultyBackend("serial", fail_on=(1,)),
            devices=devices,
            workers=2,
            poll_interval=0.02,
        )
        with pool:
            results = pool.run_round(loaded_queue(units, devices))
        # Each worker process owns a pickled FaultyBackend copy, so every
        # worker's first call fails and the coordinator absorbs the faults.
        assert pool.retries >= 1
        assert summaries(results) == summaries(reference_results(workload, units))

    def test_retry_budget_exhaustion_raises(self, workload):
        units = make_units(workload)
        pool = WorkerPool(
            workload.measured_circuits,
            workload.selected_clbits,
            backend=FaultyBackend("serial", fail_from=1),
            devices=("a",),
            mode="inline",
            max_retries=2,
        )
        with pytest.raises(DistributedError, match="failed 3 times"):
            pool.run_round(loaded_queue(units, ("a",)))

    def test_adaptive_run_with_faults_stays_bitwise_identical(self, workload):
        """A flaky backend's retries never perturb the adaptive estimate."""
        config = AdaptiveConfig(target_error=0.05, max_shots=2000, max_rounds=3)

        def run(backend):
            executor = DistributedRoundExecutor(
                workload.measured_circuits,
                workload.selected_clbits,
                backend=backend,
                workers=2,
                mode="inline",
            )
            with executor:
                return run_adaptive_rounds(
                    workload.coefficients,
                    executor,
                    config,
                    seed=SEED,
                    labels=workload.labels,
                    execution="distributed",
                )

        clean = run("serial")
        faulty = run(FaultyBackend("serial", fail_on=(1, 4)))
        assert faulty.estimate.value == clean.estimate.value
        assert faulty.estimate.standard_error == clean.estimate.standard_error
        assert [r.to_payload() for r in faulty.rounds] == [
            r.to_payload() for r in clean.rounds
        ]
