"""Trace-context propagation through the distributed machinery, under faults.

The contract: with a tracer active on the coordinator, every completed work
unit lands as a ``unit`` span inside the submitting trace — pickled across
real worker processes as a ``(trace_id, span_id)`` tuple — exactly once per
unit, with a ``retry`` attribute counting backend retries and SIGKILL
requeues.  The span tree stays connected through any fault interleaving.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.distributed import (
    DistributedRoundExecutor,
    RoundQueue,
    WorkUnit,
    WorkerPool,
)
from repro.qpd.adaptive import AdaptiveConfig, run_adaptive_rounds
from repro.telemetry import tracing
from repro.telemetry.tracing import TraceContext, Tracer

from utils.faulty_backend import FaultyBackend
from utils.workloads import ghz_cut_workload

pytestmark = pytest.mark.xdist_group("forkheavy")

SEED = 515151


@pytest.fixture(scope="module")
def workload():
    return ghz_cut_workload(num_qubits=3, overlap=0.8)


def traced_queue(workload, devices, context, shots=60):
    """A loaded round queue whose units carry ``context`` as their trace."""
    seed = np.random.SeedSequence(SEED)
    queue = RoundQueue(devices)
    index = 0
    for term, bits in enumerate(workload.selected_clbits):
        if not bits:
            continue
        queue.push(
            WorkUnit(
                round_index=0,
                term_index=term,
                shots=shots,
                seed=seed,
                device=devices[index % len(devices)],
                trace=context.as_tuple(),
            )
        )
        index += 1
    return queue


def unit_spans(tracer):
    return [s for s in tracer.spans if s.name == "unit"]


class TestInlineRetries:
    def test_retried_unit_lands_once_with_retry_attribute(self, workload):
        tracer = Tracer(trace_id="inline-faults")
        root = tracer.start_span("execute")
        context = TraceContext(tracer.trace_id, root.span_id)
        pool = WorkerPool(
            workload.measured_circuits,
            workload.selected_clbits,
            backend=FaultyBackend("serial", fail_on=(1,)),
            devices=("a", "b"),
            mode="inline",
        )
        with tracing.activate(tracer, context):
            results = pool.run_round(traced_queue(workload, ("a", "b"), context))
        tracer.end_span(root)

        assert pool.retries == 1
        spans = unit_spans(tracer)
        # Exactly one span per completed unit — the retried unit is not doubled.
        assert len(spans) == len(results)
        assert all(s.trace_id == "inline-faults" for s in spans)
        assert all(s.parent_id == root.span_id for s in spans)
        retries = [s.attributes["retry"] for s in spans]
        assert retries.count(1) == 1 and retries.count(0) == len(spans) - 1
        assert tracer.is_connected()


class TestWorkerDeathTracing:
    def test_sigkilled_unit_retries_under_the_same_trace(self, workload):
        tracer = Tracer(trace_id="sigkill-trace")
        root = tracer.start_span("execute")
        context = TraceContext(tracer.trace_id, root.span_id)
        devices = ("a", "b")
        pool = WorkerPool(
            workload.measured_circuits,
            workload.selected_clbits,
            backend="serial",
            devices=devices,
            workers=2,
            latencies={"a": 0.3, "b": 0.3},
            poll_interval=0.02,
        )
        outcome = {}

        def drive():
            with tracing.activate(tracer, context):
                try:
                    outcome["results"] = pool.run_round(
                        traced_queue(workload, devices, context)
                    )
                except Exception as error:  # pragma: no cover - asserted below
                    outcome["error"] = error

        with pool:
            victim = pool._handles[0]
            driver = threading.Thread(target=drive, daemon=True)
            driver.start()
            deadline = time.monotonic() + 5.0
            while victim.in_flight is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert victim.in_flight is not None
            os.kill(victim.process.pid, signal.SIGKILL)
            driver.join(timeout=30.0)
        tracer.end_span(root)

        assert "error" not in outcome
        assert pool.requeues >= 1
        spans = unit_spans(tracer)
        # One span per unit despite the kill: the requeued unit reports once,
        # under the same trace ID, with its requeue counted as a retry.
        assert len(spans) == len(outcome["results"])
        assert all(s.trace_id == "sigkill-trace" for s in spans)
        assert max(s.attributes["retry"] for s in spans) >= 1
        assert all(s.duration >= 0.0 for s in spans)
        assert tracer.is_connected()


class TestAdaptiveEngineTracing:
    def test_rounds_and_units_form_one_connected_tree(self, workload):
        tracer = Tracer(trace_id="adaptive-engine")
        config = AdaptiveConfig(target_error=0.05, max_shots=2000, max_rounds=3)
        executor = DistributedRoundExecutor(
            workload.measured_circuits,
            workload.selected_clbits,
            backend="serial",
            workers=2,
            mode="inline",
        )
        with tracing.activate(tracer):
            with executor:
                result = run_adaptive_rounds(
                    workload.coefficients,
                    executor,
                    config,
                    seed=SEED,
                    labels=workload.labels,
                    execution="distributed",
                )
        rounds = [s for s in tracer.spans if s.name == "round"]
        units = unit_spans(tracer)
        assert len(rounds) == len(result.rounds)
        # Every unit span parents under one of the round spans.
        round_ids = {s.span_id for s in rounds}
        assert units and all(s.parent_id in round_ids for s in units)
        assert tracer.is_connected()
        # Round spans carry the adaptive engine's structured attributes.
        assert all({"index", "budget", "total_shots"} <= set(s.attributes) for s in rounds)
