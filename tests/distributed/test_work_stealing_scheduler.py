"""Unit tests of the work-stealing scheduler's deterministic assignment."""

import numpy as np
import pytest

from repro.devices import DeviceFleet, VirtualDevice
from repro.distributed import WorkStealingScheduler, WorkUnit
from repro.exceptions import DeviceError


def units(shot_list, round_index=0):
    return [
        WorkUnit(
            round_index=round_index,
            term_index=term,
            shots=shots,
            seed=np.random.SeedSequence(0),
        )
        for term, shots in enumerate(shot_list)
    ]


class TestConstruction:
    def test_rejects_empty_devices(self):
        with pytest.raises(DeviceError, match="at least one device"):
            WorkStealingScheduler([])

    def test_rejects_duplicate_devices(self):
        with pytest.raises(DeviceError, match="duplicate"):
            WorkStealingScheduler(["a", "a"])

    def test_rejects_non_positive_weights(self):
        with pytest.raises(DeviceError, match="strictly positive"):
            WorkStealingScheduler(["a", "b"], weights=[1.0, 0.0])

    def test_rejects_mismatched_weight_shape(self):
        with pytest.raises(DeviceError, match="shape"):
            WorkStealingScheduler(["a", "b"], weights=[1.0])

    def test_rejects_unknown_policy(self):
        with pytest.raises(DeviceError, match="steal policy"):
            WorkStealingScheduler(["a"], steal="greedy")

    def test_weights_are_normalised(self):
        scheduler = WorkStealingScheduler(["a", "b"], weights=[2.0, 6.0])
        assert np.allclose(scheduler.weights, [0.25, 0.75])

    def test_for_workers_builds_equal_weight_synthetic_devices(self):
        scheduler = WorkStealingScheduler.for_workers(3)
        assert scheduler.devices == ("worker-0", "worker-1", "worker-2")
        assert np.allclose(scheduler.weights, [1 / 3] * 3)

    def test_for_workers_rejects_non_positive_count(self):
        with pytest.raises(DeviceError, match="at least 1"):
            WorkStealingScheduler.for_workers(0)


class TestAssignment:
    def test_assignment_is_deterministic(self):
        scheduler = WorkStealingScheduler(["a", "b"])
        batch = units([100, 50, 25, 25, 10])
        first = [u.device for u in scheduler.assign(batch)]
        second = [u.device for u in scheduler.assign(batch)]
        assert first == second

    def test_assignment_preserves_unit_order_and_identity(self):
        scheduler = WorkStealingScheduler(["a", "b"])
        batch = units([10, 90, 40])
        assigned = scheduler.assign(batch)
        assert [u.key for u in assigned] == [(0, 0), (0, 1), (0, 2)]
        assert [u.shots for u in assigned] == [10, 90, 40]
        assert all(u.device in ("a", "b") for u in assigned)

    def test_equal_weights_balance_shot_totals(self):
        scheduler = WorkStealingScheduler(["a", "b"])
        assigned = scheduler.assign(units([100, 100, 50, 50]))
        totals = {"a": 0, "b": 0}
        for u in assigned:
            totals[u.device] += u.shots
        assert totals["a"] == totals["b"] == 150

    def test_skewed_weights_skew_shot_totals(self):
        scheduler = WorkStealingScheduler(["fast", "slow"], weights=[3.0, 1.0])
        assigned = scheduler.assign(units([40] * 8))
        totals = {"fast": 0, "slow": 0}
        for u in assigned:
            totals[u.device] += u.shots
        assert totals["fast"] == 240 and totals["slow"] == 80

    def test_build_queue_loads_every_unit(self):
        scheduler = WorkStealingScheduler(["a", "b"], steal="none")
        batch = units([30, 20, 10])
        queue = scheduler.build_queue(batch)
        assert queue.steal_policy == "none"
        assert len(queue) == 3
        assert sorted(queue.unit_keys()) == [(0, 0), (0, 1), (0, 2)]


class TestFromFleet:
    def test_mirrors_fleet_names_and_split_weights(self):
        fleet = DeviceFleet(
            [VirtualDevice("big", capacity=3.0), VirtualDevice("small", capacity=1.0)],
            split="capacity",
        )
        scheduler = WorkStealingScheduler.from_fleet(fleet)
        assert scheduler.devices == ("big", "small")
        assert np.allclose(scheduler.weights, [0.75, 0.25])

    def test_uniform_fleet_gets_equal_weights(self):
        fleet = DeviceFleet([VirtualDevice("a"), VirtualDevice("b")])
        scheduler = WorkStealingScheduler.from_fleet(fleet)
        assert np.allclose(scheduler.weights, [0.5, 0.5])
