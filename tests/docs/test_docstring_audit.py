"""Docstring audit for the documented public surface.

Every public module, class, function and method in ``repro.pipeline``,
``repro.cutting``, ``repro.devices``, ``repro.service`` and ``repro.qpd``
must carry a docstring whose summary
line is followed by a blank line and ends with punctuation — the load-bearing
subset of the ruff pydocstyle (``D``) rules scoped to those packages in
``pyproject.toml``, kept runnable here so environments without ruff still
enforce it (and the mkdocs API reference never renders an undocumented
symbol).
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
AUDITED_PACKAGES = ("pipeline", "cutting", "devices", "service", "qpd")


def _audited_files():
    for package in AUDITED_PACKAGES:
        yield from sorted((SRC / package).glob("*.py"))


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_docstring(node, path, issues):
    name = getattr(node, "name", "<module>")
    docstring = ast.get_docstring(node, clean=False)
    lineno = getattr(node, "lineno", 1)
    if docstring is None:
        issues.append(f"{path}:{lineno} missing docstring on {name}")
        return
    lines = docstring.expandtabs().splitlines()
    summary = lines[0].strip()
    if not summary:
        issues.append(f"{path}:{lineno} docstring of {name} starts with a blank line")
        return
    if len(lines) > 1 and lines[1].strip():
        issues.append(
            f"{path}:{lineno} docstring of {name} needs a blank line after the summary"
        )
    if not summary.endswith((".", "?", "!", ":")):
        issues.append(
            f"{path}:{lineno} docstring summary of {name} should end with punctuation"
        )


def test_public_api_is_fully_documented():
    issues: list[str] = []
    for path in _audited_files():
        tree = ast.parse(path.read_text())
        relative = path.relative_to(SRC.parent.parent)
        _check_docstring(tree, relative, issues)
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if not _is_public(node.name):
                continue
            _check_docstring(node, relative, issues)
    assert not issues, "undocumented or malformed public API:\n" + "\n".join(issues)


def test_audit_covers_all_packages():
    files = list(_audited_files())
    packages = {path.parent.name for path in files}
    assert packages == set(AUDITED_PACKAGES)
    # 38 files as of the instance-dedup layer (cutting/instances.py,
    # qpd/contraction.py); the floor guards against the glob silently
    # missing a package, not against growth.
    assert len(files) > 36, "audit should see every audited package in full"
