"""Execute the instance-dedup/reconstruction tutorial so the docs cannot rot.

Every fenced ``python`` code block of
``docs/tutorials/multi_cut_reconstruction.md`` is extracted in order and
executed in one shared namespace, exactly as a reader following the page
would.  The tutorial's own inline ``assert`` statements are the acceptance
checks — instance counts, bitwise memoization identity, contraction
agreement — so any drift in the dedup layer fails this test.
"""

import re
from pathlib import Path

import pytest

TUTORIAL = (
    Path(__file__).resolve().parents[2]
    / "docs"
    / "tutorials"
    / "multi_cut_reconstruction.md"
)

_CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _code_blocks() -> list[str]:
    return _CODE_BLOCK.findall(TUTORIAL.read_text())


def test_tutorial_exists_and_has_code():
    assert TUTORIAL.exists(), f"tutorial missing at {TUTORIAL}"
    blocks = _code_blocks()
    assert len(blocks) >= 8, "tutorial should walk enumeration, evaluation and contraction"


@pytest.mark.integration
def test_tutorial_blocks_execute_in_order():
    namespace: dict = {}
    for index, block in enumerate(_code_blocks()):
        try:
            exec(compile(block, f"{TUTORIAL.name}[block {index}]", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial code block {index} failed: {error}\n---\n{block}")
    # The walk must actually have produced the headline artifacts.
    assert namespace["table"].num_instances == 27
    assert namespace["result"].execution.instance_stats is not None
    assert namespace["nme_result"].execution.instance_stats is None
