"""Execute the adaptive-shots tutorial so the docs cannot rot.

Every fenced ``python`` code block of ``docs/tutorials/adaptive_shots.md``
is extracted in order and executed in one shared namespace, exactly as a
reader following the page would.  The tutorial's inline ``assert``
statements — convergence, the bitwise resume, the Neyman shot shift, the
savings comparison — are the acceptance criteria; any API drift fails this
test.
"""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parents[2] / "docs" / "tutorials" / "adaptive_shots.md"

_CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _code_blocks() -> list[str]:
    return _CODE_BLOCK.findall(TUTORIAL.read_text())


def test_tutorial_exists_and_has_code():
    assert TUTORIAL.exists(), f"tutorial missing at {TUTORIAL}"
    blocks = _code_blocks()
    assert len(blocks) >= 5, "tutorial should cover run, rounds, resume, planner and savings"


@pytest.mark.integration
def test_tutorial_blocks_execute_in_order():
    namespace: dict = {}
    for index, block in enumerate(_code_blocks()):
        try:
            exec(compile(block, f"{TUTORIAL.name}[block {index}]", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial code block {index} failed: {error}\n---\n{block}")
    # The walk must actually have produced the headline artifacts.
    assert namespace["execution"].mode == "adaptive"
    assert namespace["resumed"].rounds == namespace["execution"].rounds
    assert namespace["outcome"].converged
    assert namespace["savings"] > 0.0
