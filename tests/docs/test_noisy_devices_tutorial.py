"""Execute the noisy-devices tutorial so the docs cannot rot.

Every fenced ``python`` code block of ``docs/tutorials/noisy_devices.md`` is
extracted in order and executed in one shared namespace, exactly as a reader
following the page would.  The tutorial's inline ``assert`` statements — the
fleet schedule, the bitwise replay, the measured-bias-within-bound check —
are the acceptance criteria; any API drift fails this test.
"""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parents[2] / "docs" / "tutorials" / "noisy_devices.md"

_CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _code_blocks() -> list[str]:
    return _CODE_BLOCK.findall(TUTORIAL.read_text())


def test_tutorial_exists_and_has_code():
    assert TUTORIAL.exists(), f"tutorial missing at {TUTORIAL}"
    blocks = _code_blocks()
    assert len(blocks) >= 6, "tutorial should cover fleet, run, replay, bound and specs"


@pytest.mark.integration
def test_tutorial_blocks_execute_in_order():
    namespace: dict = {}
    for index, block in enumerate(_code_blocks()):
        try:
            exec(compile(block, f"{TUTORIAL.name}[block {index}]", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial code block {index} failed: {error}\n---\n{block}")
    # The walk must actually have produced the headline artifacts.
    assert "result" in namespace and "table" in namespace
    assert namespace["result"].execution.backend_name.startswith("fleet(3 devices")
    assert all(namespace["table"].columns["within_bound"])
