"""Round-structured pipeline execution: artifacts, resume, payload stability."""

import numpy as np
import pytest

from repro.exceptions import CuttingError
from repro.experiments import ghz_circuit
from repro.pipeline import CutPipeline
from repro.pipeline.stages import Execution


@pytest.fixture(scope="module")
def pipeline():
    return CutPipeline(max_fragment_width=3, backend="vectorized")


@pytest.fixture(scope="module")
def decomposition(pipeline):
    return pipeline.decompose(pipeline.plan(ghz_circuit(4)))


class TestAdaptiveExecute:
    def test_converges_and_reports_rounds(self, pipeline, decomposition):
        execution = pipeline.execute(
            decomposition, "ZZZZ", shots=100_000, seed=5, mode="adaptive", target_error=0.05
        )
        assert execution.mode == "adaptive"
        assert execution.converged
        assert execution.rounds
        assert execution.total_shots < 100_000
        result = pipeline.reconstruct(execution)
        assert result.standard_error <= 0.05
        assert abs(result.value - result.exact_value) < 0.25

    def test_requires_target_error(self, pipeline, decomposition):
        with pytest.raises(CuttingError):
            pipeline.execute(decomposition, "ZZZZ", shots=1000, mode="adaptive")

    def test_rejects_unknown_mode(self, pipeline, decomposition):
        with pytest.raises(CuttingError):
            pipeline.execute(decomposition, "ZZZZ", shots=1000, mode="mystery")

    def test_budget_exhaustion_is_flagged(self, pipeline, decomposition):
        execution = pipeline.execute(
            decomposition, "ZZZZ", shots=300, seed=5, mode="adaptive", target_error=1e-5
        )
        assert not execution.converged
        assert execution.total_shots <= 300

    def test_static_mode_unchanged_by_refactor(self, pipeline, decomposition):
        default = pipeline.execute(decomposition, "ZZZZ", shots=4000, seed=11)
        explicit = pipeline.execute(decomposition, "ZZZZ", shots=4000, seed=11, mode="static")
        assert default.term_estimates == explicit.term_estimates
        assert default.mode == "static" and not default.rounds


class TestAdaptiveArtifact:
    def test_payload_round_trip(self, pipeline, decomposition):
        execution = pipeline.execute(
            decomposition, "ZZZZ", shots=50_000, seed=3, mode="adaptive", target_error=0.06
        )
        payload = execution.to_payload()
        restored = Execution.from_payload(decomposition, payload)
        assert restored.mode == "adaptive"
        assert restored.target_error == pytest.approx(0.06)
        assert restored.converged == execution.converged
        assert restored.rounds == execution.rounds
        assert restored.term_estimates == execution.term_estimates
        assert restored.fingerprint() == execution.fingerprint()

    def test_static_payload_layout_is_unchanged(self, pipeline, decomposition):
        execution = pipeline.execute(decomposition, "ZZZZ", shots=2000, seed=3)
        payload = execution.to_payload()
        # The adaptive extension must not leak new keys into static payloads
        # (existing stored runs keep their fingerprints).
        assert set(payload) == {
            "observable",
            "backend_name",
            "allocation",
            "shots_per_term",
            "term_estimates",
        }
        assert all(set(entry) == {
            "coefficient",
            "mean",
            "shots",
            "variance",
            "label",
        } for entry in payload["term_estimates"])

    def test_reconstruction_from_payload_is_bitwise(self, pipeline, decomposition):
        execution = pipeline.execute(
            decomposition, "ZZZZ", shots=50_000, seed=9, mode="adaptive", target_error=0.06
        )
        restored = Execution.from_payload(decomposition, execution.to_payload())
        original = pipeline.reconstruct(execution)
        resumed = pipeline.reconstruct(restored)
        assert resumed.value == original.value
        assert resumed.standard_error == original.standard_error


class TestResume:
    def test_completed_rounds_resume_bitwise(self, pipeline, decomposition):
        on_round_records = []
        full = pipeline.execute(
            decomposition,
            "ZZZZ",
            shots=100_000,
            seed=21,
            mode="adaptive",
            target_error=0.05,
            on_round=lambda record, summary: on_round_records.append(record),
        )
        assert len(on_round_records) == len(full.rounds) >= 2
        resumed = pipeline.execute(
            decomposition,
            "ZZZZ",
            shots=100_000,
            seed=21,
            mode="adaptive",
            target_error=0.05,
            completed_rounds=full.rounds[:2],
        )
        assert resumed.rounds == full.rounds
        assert resumed.term_estimates == full.term_estimates

    def test_fleet_round_shares_follow_largest_remainder(self):
        from repro.devices import DeviceFleet, VirtualDevice

        fleet = DeviceFleet(
            [VirtualDevice("a", capacity=3.0), VirtualDevice("b", capacity=1.0)],
            split="capacity",
        )
        circuit = ghz_circuit(3)
        shares = fleet.plan_round_shares(circuit, [100, 37, 1])
        assert [sum(round_shares.values()) for round_shares in shares] == [100, 37, 1]
        assert shares[0] == {"a": 75, "b": 25}

    def test_adaptive_runs_on_a_device_fleet(self):
        from repro.devices import DeviceFleet, VirtualDevice

        fleet = DeviceFleet(
            [VirtualDevice("a", capacity=2.0), VirtualDevice("b", capacity=1.0)],
            split="capacity",
        )
        pipeline = CutPipeline(max_fragment_width=3, backend=fleet)
        result = pipeline.run(
            ghz_circuit(4), "ZZZZ", shots=60_000, seed=4, mode="adaptive", target_error=0.06
        )
        assert result.execution.mode == "adaptive"
        assert result.execution.converged
        assert np.isfinite(result.value)
