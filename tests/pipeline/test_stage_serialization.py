"""Tests for the stage artifacts' stable serialization and fingerprints."""

import json

import pytest

from repro.experiments import ghz_circuit
from repro.pipeline import CutPipeline
from repro.pipeline.stages import Execution


@pytest.fixture(scope="module")
def staged():
    """One pipeline run broken into its stage artifacts."""
    pipeline = CutPipeline(max_fragment_width=2, backend="vectorized")
    plan_result = pipeline.plan(ghz_circuit(4))
    decomposition = pipeline.decompose(plan_result)
    execution = pipeline.execute(decomposition, "ZZZZ", shots=2000, seed=21)
    result = pipeline.reconstruct(execution)
    return pipeline, plan_result, decomposition, execution, result


class TestPlanPayload:
    def test_payload_is_json_ready(self, staged):
        _, plan_result, _, _, _ = staged
        payload = json.loads(json.dumps(plan_result.to_payload()))
        assert len(payload["locations"]) == plan_result.num_cuts == 2
        assert payload["num_fragments"] == plan_result.num_fragments == 3
        assert all(len(pair) == 2 for pair in payload["locations"])

    def test_fingerprint_stable(self, staged):
        _, plan_result, _, _, _ = staged
        assert plan_result.fingerprint() == plan_result.fingerprint()

    def test_fingerprint_differs_for_different_plans(self, staged):
        pipeline, plan_result, _, _, _ = staged
        other = CutPipeline(max_fragment_width=3).plan(ghz_circuit(4))
        assert other.fingerprint() != plan_result.fingerprint()


class TestExecutionPayload:
    def test_roundtrip_is_bitwise_identical(self, staged):
        pipeline, _, decomposition, execution, result = staged
        payload = json.loads(json.dumps(execution.to_payload()))
        rebuilt = Execution.from_payload(decomposition, payload)
        assert rebuilt.term_estimates == execution.term_estimates
        assert rebuilt.shots_per_term == execution.shots_per_term
        assert rebuilt.observable == execution.observable
        reconstructed = pipeline.reconstruct(rebuilt)
        assert reconstructed.value == result.value
        assert reconstructed.standard_error == result.standard_error

    def test_fingerprint_covers_statistics(self, staged):
        pipeline, _, decomposition, execution, _ = staged
        other = pipeline.execute(decomposition, "ZZZZ", shots=2000, seed=22)
        assert other.fingerprint() != execution.fingerprint()


class TestResultPayload:
    def test_roundtrip(self, staged):
        _, _, _, _, result = staged
        from repro.pipeline.stages import PipelineResult

        payload = json.loads(json.dumps(result.to_payload()))
        rebuilt = PipelineResult.from_payload(payload)
        assert rebuilt.value == result.value
        assert rebuilt.standard_error == result.standard_error
        assert rebuilt.exact_value == result.exact_value
        assert rebuilt.error == result.error
