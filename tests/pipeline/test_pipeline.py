"""Unit and integration tests for the CutPipeline orchestration layer."""

import pytest

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import exact_expectation
from repro.cutting import (
    CutLocation,
    HaradaWireCut,
    NMEWireCut,
    plan_from_positions,
)
from repro.experiments import ghz_circuit
from repro.pipeline import CutPipeline
from repro.quantum.paulis import PauliString


class TestPlanStage:
    def test_automatic_two_cut_plan(self):
        pipeline = CutPipeline(max_fragment_width=2)
        plan_result = pipeline.plan(ghz_circuit(4))
        assert plan_result.num_cuts == 2
        assert plan_result.num_fragments == 3
        assert plan_result.alternatives and plan_result.alternatives[0] == plan_result.plan
        assert plan_result.max_fragment_width == 2

    def test_explicit_positions(self):
        pipeline = CutPipeline()
        plan_result = pipeline.plan(ghz_circuit(4), positions=(2,))
        assert [(loc.qubit, loc.position) for loc in plan_result.plan.locations] == [(1, 2)]

    def test_explicit_locations_allow_end_cut(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        pipeline = CutPipeline()
        plan_result = pipeline.plan(circuit, locations=[CutLocation(0, 1)])
        assert plan_result.plan.num_cuts == 1

    def test_explicit_plan_passthrough(self):
        circuit = ghz_circuit(4)
        plan = plan_from_positions(circuit, (2,))
        plan_result = CutPipeline().plan(circuit, plan=plan)
        assert plan_result.plan is plan
        assert plan_result.alternatives == ()

    def test_rejects_multiple_explicit_sources(self):
        circuit = ghz_circuit(4)
        plan = plan_from_positions(circuit, (2,))
        with pytest.raises(CuttingError):
            CutPipeline().plan(circuit, plan=plan, positions=(2,))

    def test_requires_width_for_automatic_planning(self):
        with pytest.raises(CuttingError, match="max_fragment_width"):
            CutPipeline().plan(ghz_circuit(4))

    def test_raises_when_no_plan_fits(self):
        with pytest.raises(CuttingError, match="no valid cut plan"):
            CutPipeline(max_fragment_width=1).plan(ghz_circuit(4))

    def test_circuit_already_fitting_gets_trivial_plan(self):
        # A circuit no wider than the device needs no cut at all: the
        # planner returns the single-fragment plan first (kappa = 1).
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        pipeline = CutPipeline(max_fragment_width=2, backend="vectorized")
        result = pipeline.run(circuit, "ZZ", shots=1000, seed=3)
        assert result.plan.num_cuts == 0
        assert result.plan.num_fragments == 1
        assert result.kappa == pytest.approx(1.0)
        assert result.exact_value == pytest.approx(
            exact_expectation(circuit, PauliString("ZZ").to_matrix())
        )

    def test_identity_observable_identical_on_serial_and_vectorized(self):
        # The zero-cut identity term under an all-identity observable has no
        # measured bits; no backend may crash and both must return the
        # deterministic +1.
        circuit = QuantumCircuit(4)
        circuit.h(0).cx(0, 1).h(2).cx(2, 3)
        values = {}
        for backend in ("serial", "vectorized"):
            pipeline = CutPipeline(max_fragment_width=2, backend=backend)
            values[backend] = pipeline.run(circuit, "IIII", shots=100, seed=2).value
        assert values["serial"] == values["vectorized"] == pytest.approx(1.0)

    def test_entangled_pair_accounting(self):
        # Every teleportation-term shot consumes one pair per cut gadget.
        from repro.cutting import TeleportationWireCut

        pipeline = CutPipeline(
            max_fragment_width=2, protocol=TeleportationWireCut(), backend="vectorized"
        )
        result = pipeline.run(ghz_circuit(4), "ZZZZ", shots=500, seed=5)
        # Teleportation is a single-term protocol: every shot runs both cut
        # gadgets, consuming two pairs per shot.
        assert result.execution.entangled_pairs == 2 * result.total_shots

    def test_zero_cut_plan_runs_end_to_end(self):
        # Independent blocks need no cut: the pipeline plans a free split,
        # decomposes to the single identity term (kappa = 1) and estimates
        # the uncut circuit directly.
        circuit = QuantumCircuit(4)
        circuit.h(0).cx(0, 1).h(2).cx(2, 3)
        pipeline = CutPipeline(max_fragment_width=2, backend="vectorized")
        result = pipeline.run(circuit, "ZZZZ", shots=2000, seed=13)
        assert result.plan.num_cuts == 0
        assert result.kappa == pytest.approx(1.0)
        decomposition = result.execution.decomposition
        assert decomposition.num_terms == 1
        assert result.exact_value == pytest.approx(
            exact_expectation(circuit, PauliString("ZZZZ").to_matrix())
        )
        assert pipeline.exact_reconstruction(decomposition, "ZZZZ") == pytest.approx(
            result.exact_value
        )


class TestDecomposeStage:
    def test_tensor_product_term_set(self):
        pipeline = CutPipeline(max_fragment_width=2)
        decomposition = pipeline.decompose(pipeline.plan(ghz_circuit(4)))
        assert decomposition.num_terms == 9  # 3 terms per harada cut, 2 cuts
        assert decomposition.kappa == pytest.approx(9.0)
        assert decomposition.probabilities.sum() == pytest.approx(1.0)

    def test_protocol_sequence_must_match_cut_count(self):
        pipeline = CutPipeline(max_fragment_width=2, protocol=[HaradaWireCut()])
        plan_result = pipeline.plan(ghz_circuit(4))
        with pytest.raises(CuttingError, match="protocols"):
            pipeline.decompose(plan_result)

    def test_mixed_protocols_per_cut(self):
        protocols = [HaradaWireCut(), NMEWireCut.from_overlap(0.9)]
        pipeline = CutPipeline(max_fragment_width=2, protocol=protocols)
        decomposition = pipeline.decompose(pipeline.plan(ghz_circuit(4)))
        expected_kappa = protocols[0].kappa * protocols[1].kappa
        assert decomposition.kappa == pytest.approx(expected_kappa)

    def test_entanglement_overlap_selects_nme(self):
        pipeline = CutPipeline(max_fragment_width=2, entanglement_overlap=0.9)
        decomposition = pipeline.decompose(pipeline.plan(ghz_circuit(4)))
        assert all(p.name == "nme" for p in decomposition.protocols)
        assert decomposition.kappa < 2.0


class TestExecuteReconstructStages:
    def test_budget_is_spent_exactly(self):
        pipeline = CutPipeline(max_fragment_width=2, backend="vectorized")
        decomposition = pipeline.decompose(pipeline.plan(ghz_circuit(4)))
        execution = pipeline.execute(decomposition, "ZZZZ", shots=1000, seed=5)
        assert execution.total_shots == 1000
        assert len(execution.term_estimates) == decomposition.num_terms
        assert execution.backend_name == "vectorized"

    def test_reconstruct_reports_exact_and_error(self):
        pipeline = CutPipeline(max_fragment_width=2, backend="vectorized")
        result = pipeline.run(ghz_circuit(4), "ZZZZ", shots=20_000, seed=9)
        assert result.exact_value == pytest.approx(1.0)
        assert result.error == pytest.approx(abs(result.value - 1.0))
        assert result.plan.num_cuts == 2
        assert result.total_shots == 20_000

    def test_compute_exact_false_leaves_none(self):
        pipeline = CutPipeline(max_fragment_width=2, backend="vectorized")
        result = pipeline.run(ghz_circuit(4), "ZZZZ", shots=200, seed=9, compute_exact=False)
        assert result.exact_value is None
        assert result.error is None

    def test_single_letter_observable_refers_to_qubit_zero(self):
        pipeline = CutPipeline(backend="vectorized")
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        result = pipeline.run(circuit, "Z", shots=500, seed=3, positions=(1,))
        pauli = PauliString("ZI")
        assert result.exact_value == pytest.approx(
            exact_expectation(circuit, pauli.to_matrix())
        )


class TestCrossBackendDeterminism:
    @pytest.mark.integration
    def test_two_cut_ghz_identical_on_all_backends(self):
        # Acceptance criterion: a 2-cut GHZ plan runs end to end on all three
        # backends with bitwise-identical seeded estimates.
        results = {}
        for backend in ("serial", "vectorized", "process-pool"):
            pipeline = CutPipeline(max_fragment_width=2, backend=backend)
            result = pipeline.run(ghz_circuit(4), "ZZZZ", shots=3000, seed=11)
            assert result.plan.num_cuts == 2
            results[backend] = result
        reference = results["serial"]
        for backend, result in results.items():
            assert result.value == reference.value, backend
            assert result.standard_error == reference.standard_error, backend
            assert (
                result.execution.shots_per_term == reference.execution.shots_per_term
            ), backend

    def test_same_seed_same_result_same_backend(self):
        pipeline = CutPipeline(max_fragment_width=2, backend="vectorized")
        a = pipeline.run(ghz_circuit(4), "ZZZZ", shots=1000, seed=21)
        b = pipeline.run(ghz_circuit(4), "ZZZZ", shots=1000, seed=21)
        assert a.value == b.value


class TestExactReconstruction:
    def test_two_cut_exact_reconstruction_is_unbiased(self):
        circuit = ghz_circuit(4)
        pipeline = CutPipeline(max_fragment_width=2, backend="vectorized")
        decomposition = pipeline.decompose(pipeline.plan(circuit))
        assert pipeline.exact_reconstruction(decomposition, "ZZZZ") == pytest.approx(1.0)

    def test_same_wire_double_cut_exact(self):
        # A wire cut at two positions (chained receivers) still reconstructs
        # the uncut value exactly.
        circuit = QuantumCircuit(3)
        circuit.ry(0.7, 0).cx(0, 1).cx(0, 2)
        exact = exact_expectation(circuit, PauliString("ZZZ").to_matrix())
        pipeline = CutPipeline(backend="vectorized")
        plan_result = pipeline.plan(
            circuit, locations=[CutLocation(0, 1), CutLocation(0, 2)]
        )
        decomposition = pipeline.decompose(plan_result)
        assert pipeline.exact_reconstruction(decomposition, "ZZZ") == pytest.approx(exact)

    def test_mixed_protocol_exact_reconstruction(self):
        circuit = ghz_circuit(4)
        pipeline = CutPipeline(
            max_fragment_width=2,
            protocol=[HaradaWireCut(), NMEWireCut.from_overlap(0.8)],
            backend="vectorized",
        )
        decomposition = pipeline.decompose(pipeline.plan(circuit))
        assert pipeline.exact_reconstruction(decomposition, "ZZZZ") == pytest.approx(1.0)
