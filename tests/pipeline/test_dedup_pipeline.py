"""Tests for dedup execution and contraction reconstruction in the pipeline."""

import json

import pytest

from repro.exceptions import CuttingError
from repro.circuits.expectation import exact_expectation
from repro.experiments import ghz_circuit
from repro.pipeline import DEDUP_MODES, RECONSTRUCTION_METHODS, CutPipeline
from repro.pipeline.stages import Execution
from repro.quantum.paulis import PauliString


@pytest.fixture(scope="module")
def staged():
    """A 2-cut GHZ plan with dedup enabled end to end."""
    pipeline = CutPipeline(max_fragment_width=2, backend="vectorized", dedup=True)
    plan_result = pipeline.plan(ghz_circuit(4))
    decomposition = pipeline.decompose(plan_result)
    execution = pipeline.execute(decomposition, "ZZZZ", shots=4000, seed=21)
    return pipeline, decomposition, execution


class TestModeValidation:
    def test_mode_constants(self):
        assert DEDUP_MODES == (False, True, "auto")
        assert RECONSTRUCTION_METHODS == ("summation", "contraction")

    def test_constructor_rejects_unknown_mode(self):
        with pytest.raises(CuttingError, match="dedup"):
            CutPipeline(max_fragment_width=2, dedup="always")

    def test_execute_rejects_unknown_mode(self, staged):
        pipeline, decomposition, _ = staged
        with pytest.raises(CuttingError, match="dedup"):
            pipeline.execute(decomposition, "ZZZZ", 100, seed=1, dedup="always")

    def test_reconstruction_method_validated(self, staged):
        pipeline, decomposition, _ = staged
        with pytest.raises(CuttingError, match="method"):
            pipeline.exact_reconstruction(decomposition, "ZZZZ", method="tensor")


class TestDedupExecution:
    def test_instance_stats_attached(self, staged):
        _, _, execution = staged
        stats = execution.instance_stats
        assert stats is not None
        assert stats.num_terms == len(execution.term_estimates) == 9
        assert stats.num_instances <= stats.num_references

    def test_monolithic_execution_has_no_stats(self, staged):
        pipeline, decomposition, _ = staged
        execution = pipeline.execute(decomposition, "ZZZZ", 1000, seed=3, dedup=False)
        assert execution.instance_stats is None

    def test_estimate_close_to_exact(self, staged):
        pipeline, decomposition, execution = staged
        result = pipeline.reconstruct(execution)
        assert result.value == pytest.approx(1.0, abs=0.2)

    def test_seeded_dedup_run_is_reproducible(self, staged):
        pipeline, decomposition, execution = staged
        again = pipeline.execute(decomposition, "ZZZZ", shots=4000, seed=21)
        assert again.term_estimates == execution.term_estimates

    def test_adaptive_dedup_execution(self, staged):
        pipeline, decomposition, _ = staged
        execution = pipeline.execute(
            decomposition,
            "ZZZZ",
            shots=4000,
            seed=9,
            mode="adaptive",
            target_error=0.05,
            rounds=5,
        )
        assert execution.mode == "adaptive"
        assert execution.instance_stats is not None
        assert execution.converged is not None
        assert 1 <= len(execution.rounds) <= 5

    def test_dedup_true_raises_on_unsupported_protocol(self):
        pipeline = CutPipeline(
            max_fragment_width=2, entanglement_overlap=0.8, dedup=True
        )
        plan_result = pipeline.plan(ghz_circuit(4))
        decomposition = pipeline.decompose(plan_result)
        with pytest.raises(CuttingError, match="dedup execution unavailable"):
            pipeline.execute(decomposition, "ZZZZ", 500, seed=1)

    def test_dedup_auto_falls_back_on_unsupported_protocol(self):
        auto = CutPipeline(max_fragment_width=2, entanglement_overlap=0.8, dedup="auto")
        plain = CutPipeline(max_fragment_width=2, entanglement_overlap=0.8)
        decomposition = auto.decompose(auto.plan(ghz_circuit(4)))
        fallback = auto.execute(decomposition, "ZZZZ", 800, seed=5)
        monolithic = plain.execute(decomposition, "ZZZZ", 800, seed=5)
        assert fallback.instance_stats is None
        # The fallback is the monolithic path, bit for bit.
        assert fallback.term_estimates == monolithic.term_estimates

    def test_dedup_rejected_on_fleet_backend(self):
        from repro.devices import example_fleet_spec, fleet_from_spec

        fleet = fleet_from_spec(example_fleet_spec())
        pipeline = CutPipeline(max_fragment_width=2, backend=fleet, dedup=True)
        decomposition = pipeline.decompose(pipeline.plan(ghz_circuit(4)))
        with pytest.raises(CuttingError, match="ideal simulator backend"):
            pipeline.execute(decomposition, "ZZZZ", 500, seed=1)


class TestContractionReconstruction:
    def test_matches_summation(self, staged):
        pipeline, decomposition, _ = staged
        summed = pipeline.exact_reconstruction(decomposition, "ZZZZ")
        contracted = pipeline.exact_reconstruction(
            decomposition, "ZZZZ", method="contraction"
        )
        truth = float(exact_expectation(ghz_circuit(4), PauliString("ZZZZ").to_matrix()))
        assert contracted == pytest.approx(summed, abs=1e-9)
        assert contracted == pytest.approx(truth, abs=1e-9)

    def test_contraction_raises_on_unsupported_protocol(self):
        pipeline = CutPipeline(max_fragment_width=2, entanglement_overlap=0.8)
        decomposition = pipeline.decompose(pipeline.plan(ghz_circuit(4)))
        with pytest.raises(CuttingError, match="contraction"):
            pipeline.exact_reconstruction(decomposition, "ZZZZ", method="contraction")


class TestInstanceStatsPayload:
    def test_round_trip_preserves_stats(self, staged):
        pipeline, decomposition, execution = staged
        payload = json.loads(json.dumps(execution.to_payload()))
        rebuilt = Execution.from_payload(decomposition, payload)
        assert rebuilt.instance_stats == execution.instance_stats
        assert rebuilt.term_estimates == execution.term_estimates

    def test_monolithic_payload_has_no_stats_key(self, staged):
        pipeline, decomposition, _ = staged
        execution = pipeline.execute(decomposition, "ZZZZ", 1000, seed=3, dedup=False)
        payload = execution.to_payload()
        assert "instance_stats" not in payload

    def test_stats_do_not_change_result_fingerprint_semantics(self, staged):
        # Same seeds, same statistics: the dedup run's fingerprint is stable.
        pipeline, decomposition, execution = staged
        again = pipeline.execute(decomposition, "ZZZZ", shots=4000, seed=21)
        assert execution.fingerprint() == again.fingerprint()
