"""Property-based tests for the circuit simulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.density_matrix_simulator import simulate_density_matrix
from repro.circuits.shot_simulator import run_and_sample
from repro.circuits.statevector_simulator import simulate_statevector

SETTINGS = settings(max_examples=30, deadline=None)

_GATE_CHOICES = ("h", "x", "y", "z", "s", "t", "sx")


@st.composite
def random_circuits(draw, max_qubits: int = 3, max_gates: int = 8):
    """Generate small random unitary circuits as (num_qubits, gate list)."""
    num_qubits = draw(st.integers(min_value=1, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=0, max_value=max_gates))
    gates = []
    for _ in range(num_gates):
        kind = draw(st.sampled_from(("single", "rotation", "cx")))
        if kind == "single":
            gates.append((draw(st.sampled_from(_GATE_CHOICES)), (draw(st.integers(0, num_qubits - 1)),), ()))
        elif kind == "rotation":
            angle = draw(st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False))
            gates.append(("ry", (draw(st.integers(0, num_qubits - 1)),), (angle,)))
        else:
            if num_qubits < 2:
                continue
            control = draw(st.integers(0, num_qubits - 1))
            target = draw(st.integers(0, num_qubits - 1))
            if control == target:
                continue
            gates.append(("cx", (control, target), ()))
    return num_qubits, gates


def _build(num_qubits: int, gates, num_clbits: int = 0) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, num_clbits)
    for name, qubits, params in gates:
        circuit.gate(name, qubits, params)
    return circuit


class TestSimulatorConsistency:
    @SETTINGS
    @given(spec=random_circuits())
    def test_statevector_norm_preserved(self, spec):
        num_qubits, gates = spec
        state = simulate_statevector(_build(num_qubits, gates))
        assert np.linalg.norm(state.data) == pytest.approx(1.0)

    @SETTINGS
    @given(spec=random_circuits())
    def test_density_matrix_matches_statevector(self, spec):
        num_qubits, gates = spec
        circuit = _build(num_qubits, gates)
        pure = simulate_statevector(circuit)
        mixed = simulate_density_matrix(circuit).average_state()
        assert np.allclose(mixed.data, np.outer(pure.data, pure.data.conj()), atol=1e-9)

    @SETTINGS
    @given(spec=random_circuits(max_qubits=2, max_gates=5), seed=st.integers(0, 2**31 - 1))
    def test_exact_sampling_matches_born_probabilities(self, spec, seed):
        num_qubits, gates = spec
        circuit = _build(num_qubits, gates, num_clbits=num_qubits)
        circuit.measure_all()
        counts = run_and_sample(circuit, 4000, seed=seed)
        probabilities = np.abs(simulate_statevector(_build(num_qubits, gates)).data) ** 2
        for index, probability in enumerate(probabilities):
            key = format(index, f"0{num_qubits}b")
            assert counts[key] / 4000 == pytest.approx(probability, abs=0.06)

    @SETTINGS
    @given(spec=random_circuits(max_qubits=2, max_gates=4), seed=st.integers(0, 2**31 - 1))
    def test_counts_total_is_shot_budget(self, spec, seed):
        num_qubits, gates = spec
        circuit = _build(num_qubits, gates, num_clbits=num_qubits)
        circuit.measure_all()
        shots = 137
        assert run_and_sample(circuit, shots, seed=seed).shots == shots
