"""Property-based tests for the quantum-information substrate."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.quantum.bell import bell_overlaps, k_from_overlap, overlap_from_k, phi_k_state
from repro.quantum.entanglement import (
    concurrence,
    entanglement_entropy,
    maximal_overlap_pure,
    negativity,
    schmidt_coefficients,
)
from repro.quantum.gates import ry
from repro.quantum.measures import purity, state_fidelity, trace_distance
from repro.quantum.states import DensityMatrix, Statevector

from tests.property.strategies import (
    angles,
    k_values,
    overlaps,
    single_qubit_density_matrices,
    single_qubit_statevectors,
    two_qubit_statevectors,
)

SETTINGS = settings(max_examples=60, deadline=None)


class TestStateInvariants:
    @SETTINGS
    @given(vector=single_qubit_statevectors, theta=angles)
    def test_unitary_evolution_preserves_norm(self, vector, theta):
        state = Statevector(vector, validate=False)
        evolved = state.evolve(ry(theta))
        assert np.linalg.norm(evolved.data) == pytest.approx(1.0)

    @SETTINGS
    @given(vector=two_qubit_statevectors)
    def test_probabilities_form_distribution(self, vector):
        state = Statevector(vector, validate=False)
        probabilities = state.probabilities()
        assert np.all(probabilities >= -1e-12)
        assert probabilities.sum() == pytest.approx(1.0)

    @SETTINGS
    @given(vector=two_qubit_statevectors)
    def test_reduced_states_are_valid(self, vector):
        state = Statevector(vector, validate=False)
        for keep in ([0], [1]):
            reduced = state.reduced_density_matrix(keep)
            assert np.trace(reduced.data).real == pytest.approx(1.0)
            assert np.all(np.linalg.eigvalsh(reduced.data) >= -1e-9)

    @SETTINGS
    @given(rho=single_qubit_density_matrices)
    def test_purity_bounds(self, rho):
        value = purity(DensityMatrix(rho, validate=False))
        assert 0.5 - 1e-9 <= value <= 1.0 + 1e-9


class TestMeasureInvariants:
    @SETTINGS
    @given(a=single_qubit_statevectors, b=single_qubit_statevectors)
    def test_fidelity_symmetric_and_bounded(self, a, b):
        f_ab = state_fidelity(a, b)
        f_ba = state_fidelity(b, a)
        assert f_ab == pytest.approx(f_ba, abs=1e-9)
        assert -1e-9 <= f_ab <= 1.0 + 1e-9

    @SETTINGS
    @given(a=single_qubit_density_matrices, b=single_qubit_density_matrices)
    def test_trace_distance_is_metric_like(self, a, b):
        rho = DensityMatrix(a, validate=False)
        sigma = DensityMatrix(b, validate=False)
        distance = trace_distance(rho, sigma)
        assert -1e-9 <= distance <= 1.0 + 1e-9
        assert trace_distance(rho, rho) == pytest.approx(0.0, abs=1e-9)
        assert distance == pytest.approx(trace_distance(sigma, rho), abs=1e-9)

    @SETTINGS
    @given(a=single_qubit_density_matrices, b=single_qubit_density_matrices)
    def test_fuchs_van_de_graaf_inequalities(self, a, b):
        rho = DensityMatrix(a, validate=False)
        sigma = DensityMatrix(b, validate=False)
        fidelity = state_fidelity(rho, sigma)
        distance = trace_distance(rho, sigma)
        assert 1 - np.sqrt(fidelity) <= distance + 1e-6
        assert distance <= np.sqrt(max(1 - fidelity, 0.0)) + 1e-6


class TestEntanglementInvariants:
    @SETTINGS
    @given(vector=two_qubit_statevectors)
    def test_schmidt_coefficients_normalised(self, vector):
        coefficients = schmidt_coefficients(vector)
        assert np.sum(coefficients**2) == pytest.approx(1.0)
        assert np.all(coefficients >= -1e-12)

    @SETTINGS
    @given(vector=two_qubit_statevectors)
    def test_maximal_overlap_range(self, vector):
        f = maximal_overlap_pure(vector)
        assert 0.5 - 1e-9 <= f <= 1.0 + 1e-9

    @SETTINGS
    @given(vector=two_qubit_statevectors)
    def test_entanglement_measures_agree_on_separability(self, vector):
        # Concurrence and negativity vanish together for pure two-qubit states.
        c = concurrence(vector)
        n = negativity(vector)
        assert c == pytest.approx(2 * n, abs=1e-7)

    @SETTINGS
    @given(vector=two_qubit_statevectors)
    def test_entropy_bounds(self, vector):
        entropy = entanglement_entropy(vector)
        assert -1e-9 <= entropy <= 1.0 + 1e-9


class TestPhiKProperties:
    @SETTINGS
    @given(k=k_values)
    def test_overlap_range(self, k):
        assert 0.5 - 1e-12 <= overlap_from_k(k) <= 1.0 + 1e-12

    @SETTINGS
    @given(k=k_values)
    def test_overlap_matches_pure_state_measure(self, k):
        assert maximal_overlap_pure(phi_k_state(k)) == pytest.approx(overlap_from_k(k))

    @SETTINGS
    @given(f=overlaps)
    def test_k_from_overlap_roundtrip(self, f):
        k = k_from_overlap(f)
        assert overlap_from_k(k) == pytest.approx(f, abs=1e-9)

    @SETTINGS
    @given(k=k_values)
    def test_bell_overlaps_sum_to_one(self, k):
        assert sum(bell_overlaps(phi_k_state(k)).values()) == pytest.approx(1.0)
