"""Property-based tests: the multi-cut QPD pipeline estimate is unbiased."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import exact_expectation
from repro.experiments import ghz_circuit
from repro.pipeline import CutPipeline
from repro.quantum.paulis import PauliString

from tests.property.strategies import angles

FAST_SETTINGS = settings(max_examples=12, deadline=None)

_OBSERVABLES = st.sampled_from(["ZZZ", "ZIZ", "XXI", "IZZ", "ZXZ"])


def _chain_circuit(theta_a: float, theta_b: float, theta_c: float) -> QuantumCircuit:
    """A 3-qubit chain whose natural 2-cut plan has one cut per slice."""
    circuit = QuantumCircuit(3)
    circuit.ry(theta_a, 0)
    circuit.cx(0, 1)
    circuit.ry(theta_b, 1)
    circuit.cx(1, 2)
    circuit.ry(theta_c, 2)
    return circuit


class TestExactReconstructionIsUnbiased:
    """The infinite-shot limit of the 2-cut estimator equals the uncut value."""

    @FAST_SETTINGS
    @given(theta_a=angles, theta_b=angles, theta_c=angles, observable=_OBSERVABLES)
    def test_two_cut_chain_reconstructs_exactly(
        self, theta_a, theta_b, theta_c, observable
    ):
        circuit = _chain_circuit(theta_a, theta_b, theta_c)
        exact = exact_expectation(circuit, PauliString(observable).to_matrix())
        pipeline = CutPipeline(backend="vectorized")
        decomposition = pipeline.decompose(pipeline.plan(circuit, positions=(2, 4)))
        assert decomposition.plan_result.num_cuts == 2
        reconstructed = pipeline.exact_reconstruction(decomposition, observable)
        assert reconstructed == pytest.approx(exact, abs=1e-9)

    @FAST_SETTINGS
    @given(theta_a=angles, theta_b=angles, theta_c=angles)
    def test_entanglement_assisted_chain_reconstructs_exactly(
        self, theta_a, theta_b, theta_c
    ):
        circuit = _chain_circuit(theta_a, theta_b, theta_c)
        exact = exact_expectation(circuit, PauliString("ZZZ").to_matrix())
        pipeline = CutPipeline(entanglement_overlap=0.8, backend="vectorized")
        decomposition = pipeline.decompose(pipeline.plan(circuit, positions=(2, 4)))
        reconstructed = pipeline.exact_reconstruction(decomposition, "ZZZ")
        assert reconstructed == pytest.approx(exact, abs=1e-9)


@pytest.mark.integration
class TestFiniteShotUnbiasedness:
    """Finite-shot estimates average to the exact value within statistics."""

    def test_two_cut_ghz_mean_matches_exact(self):
        circuit = ghz_circuit(4)
        shots = 2000
        num_repeats = 200
        pipeline = CutPipeline(max_fragment_width=2, backend="vectorized")
        decomposition = pipeline.decompose(pipeline.plan(circuit))
        assert decomposition.plan_result.num_cuts == 2

        values = []
        errors = []
        for seed in range(num_repeats):
            execution = pipeline.execute(decomposition, "ZZZZ", shots, seed=seed)
            result = pipeline.reconstruct(execution, compute_exact=False)
            values.append(result.value)
            errors.append(result.standard_error)
        mean = float(np.mean(values))
        # Standard error of the mean, from the per-estimate spread.
        sem = float(np.std(values, ddof=1) / np.sqrt(num_repeats))
        assert mean == pytest.approx(1.0, abs=max(5 * sem, 1e-3)), (
            f"2-cut estimate looks biased: mean {mean:.4f}, sem {sem:.4f}"
        )
        # The propagated per-estimate error bar should match the empirical
        # spread to within a factor ~2 (it uses the Bernoulli bound).
        empirical = float(np.std(values, ddof=1))
        predicted = float(np.mean(errors))
        assert 0.3 * empirical < predicted < 3.0 * empirical
