"""Property tests of the adaptive engine's budget and determinism contracts.

Three invariants anchor the streaming refactor:

* the engine never spends more than ``max_shots``, whatever the
  coefficients, target or planner;
* every round's allocation sums exactly to the round's budget (no shot is
  lost or invented between the planner and the executor);
* ``mode="static"`` is bitwise identical to the pre-refactor execution
  path — the adaptive seams must not perturb a single seeded draw.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.backends import resolve_backend
from repro.cutting import CutLocation, NMEWireCut, estimate_cut_expectation
from repro.cutting.cutter import build_cut_circuits
from repro.cutting.executor import _as_pauli, _measured_term_circuit
from repro.experiments import ghz_circuit
from repro.qpd.adaptive import AdaptiveConfig, run_adaptive_rounds
from repro.qpd.allocation import NeymanPlanner, ProportionalPlanner, allocate_shots
from repro.qpd.estimator import TermEstimate, combine_term_estimates

SETTINGS = settings(max_examples=60, deadline=None)


def coefficient_arrays():
    """Signed coefficient vectors with at least one non-zero entry."""
    return (
        st.lists(
            st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
            min_size=1,
            max_size=8,
        )
        .map(np.array)
        .flatmap(
            lambda magnitudes: st.lists(
                st.sampled_from([-1.0, 1.0]),
                min_size=len(magnitudes),
                max_size=len(magnitudes),
            ).map(lambda signs: magnitudes * np.array(signs))
        )
    )


def fixed_mean_executor(coefficients):
    """Deterministic round executor (mean 0 per term, full variance)."""

    def execute_round(index, shots, seed_sequence):
        rng = np.random.default_rng(seed_sequence)
        return [
            2.0 * rng.binomial(int(n), 0.5) / n - 1.0 if n > 0 else 0.0
            for n in shots
        ]

    return execute_round


class TestBudgetProperties:
    @SETTINGS
    @given(
        coefficients=coefficient_arrays(),
        max_shots=st.integers(min_value=1, max_value=20_000),
        target=st.floats(min_value=1e-4, max_value=0.5, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_never_exceeds_max_shots(self, coefficients, max_shots, target, seed):
        result = run_adaptive_rounds(
            coefficients,
            fixed_mean_executor(coefficients),
            AdaptiveConfig(target_error=target, max_shots=max_shots, max_rounds=8),
            seed=seed,
        )
        assert result.total_shots <= max_shots
        assert sum(record.total_shots for record in result.rounds) == result.total_shots

    @SETTINGS
    @given(
        coefficients=coefficient_arrays(),
        max_shots=st.integers(min_value=1, max_value=20_000),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_per_round_totals_are_exact(self, coefficients, max_shots, seed):
        result = run_adaptive_rounds(
            coefficients,
            fixed_mean_executor(coefficients),
            AdaptiveConfig(target_error=0.01, max_shots=max_shots, max_rounds=6),
            seed=seed,
        )
        for record in result.rounds:
            assert all(count >= 0 for count in record.shots_per_term)
            assert len(record.shots_per_term) == len(coefficients)
        # The engine validates each round's planner total internally; the
        # cumulative identity proves no shots leak between rounds.
        assert result.total_shots == sum(r.total_shots for r in result.rounds)

    @SETTINGS
    @given(
        magnitudes=st.lists(
            st.floats(min_value=1e-3, max_value=10.0, allow_nan=False), min_size=1, max_size=10
        ).map(np.array),
        counts=st.integers(min_value=0, max_value=5_000),
        shots=st.integers(min_value=0, max_value=50_000),
        variance=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_planners_allocate_exact_totals(self, magnitudes, counts, shots, variance):
        count_array = np.full(magnitudes.shape, float(counts))
        variance_array = np.full(magnitudes.shape, variance)
        for planner in (ProportionalPlanner(), NeymanPlanner()):
            allocation = planner.plan(magnitudes, count_array, variance_array, shots)
            assert int(allocation.sum()) == shots
            assert np.all(allocation >= 0)


def reference_static_estimate(circuit, location, protocol, observable, shots, seed, backend):
    """The pre-refactor static execution path, inlined verbatim.

    This reproduces the original ``estimate_cut_expectation`` body (one
    up-front proportional allocation, one batch, Eq.-12 recombination) so
    the property test can prove ``mode="static"`` did not change a single
    seeded draw.
    """
    rng = np.random.default_rng(seed)
    pauli = _as_pauli(observable, circuit.num_qubits)
    decomposition = protocol.decomposition()
    shots_per_term = allocate_shots(decomposition.probabilities, shots, strategy="proportional", seed=rng)
    term_circuits = build_cut_circuits(circuit, location, protocol)
    exec_backend = resolve_backend(backend)
    measured_circuits = []
    selected_clbits = []
    for term_circuit in term_circuits:
        measured, observable_clbits = _measured_term_circuit(term_circuit, pauli)
        measured_circuits.append(measured)
        selected_clbits.append(list(observable_clbits) + list(term_circuit.sign_clbits))
    counts_per_term = exec_backend.run_batch(
        measured_circuits, [int(s) for s in shots_per_term], seed=rng
    )
    term_estimates = []
    for term_circuit, term_shots, counts, selected in zip(
        term_circuits, shots_per_term, counts_per_term, selected_clbits
    ):
        if term_shots == 0:
            mean = 0.0
        elif selected:
            mean = counts.expectation_z(selected)
        else:
            mean = 1.0
        term_estimates.append(
            TermEstimate(
                coefficient=term_circuit.coefficient,
                mean=mean,
                shots=int(term_shots),
                label=term_circuit.term.label,
            )
        )
    return combine_term_estimates(term_estimates)


class TestStaticModeIsBitwiseIdentical:
    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        shots=st.integers(min_value=1, max_value=4_000),
        overlap=st.sampled_from([0.6, 0.8, 0.95]),
        backend=st.sampled_from(["serial", "vectorized"]),
    )
    def test_matches_pre_refactor_path(self, seed, shots, overlap, backend):
        circuit = ghz_circuit(3)
        location = CutLocation(qubit=1, position=2)
        protocol = NMEWireCut.from_overlap(overlap)
        result = estimate_cut_expectation(
            circuit,
            location,
            protocol,
            observable="ZZZ",
            shots=shots,
            seed=seed,
            backend=backend,
            mode="static",
            compute_exact=False,
        )
        reference = reference_static_estimate(
            circuit, location, protocol, "ZZZ", shots, seed, backend
        )
        assert result.value == reference.value
        assert result.standard_error == reference.standard_error
        assert result.total_shots == reference.total_shots

    @pytest.mark.parametrize("backend", ["serial", "vectorized", "process-pool"])
    def test_matches_pre_refactor_path_all_backends(self, backend):
        circuit = ghz_circuit(3)
        location = CutLocation(qubit=1, position=2)
        protocol = NMEWireCut.from_overlap(0.8)
        result = estimate_cut_expectation(
            circuit,
            location,
            protocol,
            observable="ZZZ",
            shots=2000,
            seed=123,
            backend=backend,
            compute_exact=False,
        )
        reference = reference_static_estimate(
            circuit, location, protocol, "ZZZ", 2000, 123, backend
        )
        assert result.value == reference.value
        assert result.standard_error == reference.standard_error
