"""Property tests of the ``TermStatistics`` merge algebra.

The distributed coordinator folds per-unit partials into per-term ledgers
with Chan's parallel update.  These properties pin the algebra it leans on:

* the empty ledger is a (bitwise) identity,
* merging is commutative and associative up to float rounding — which is
  exactly why the coordinator merges in one canonical (sorted unit-key)
  order instead of relying on float commutativity,
* merging per-batch summaries reproduces the Welford statistics of the
  pooled raw ±1 sequence, across adversarial shot splits,
* ``merge`` of a one-round ledger is bitwise ``merge_round``.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qpd.adaptive import TermStatistics

SETTINGS = settings(max_examples=120, deadline=None)

# One batch of a ±1-valued observable: ``shots`` outcomes, ``successes`` of
# them +1; the empirical mean 2k/n − 1 is the only mean a real batch can have.
batches = st.integers(min_value=1, max_value=200).flatmap(
    lambda shots: st.tuples(st.just(shots), st.integers(min_value=0, max_value=shots))
)
batch_lists = st.lists(batches, min_size=1, max_size=8)


def batch_mean(shots, successes):
    return 2.0 * successes / shots - 1.0


def ledger_of(batch_list):
    """Fold batches into a ledger with ``merge_round`` (the round-loop path)."""
    ledger = TermStatistics()
    for shots, successes in batch_list:
        ledger.merge_round(batch_mean(shots, successes), shots)
    return ledger


def merged(left, right):
    """Non-mutating ``merge`` (the distributed coordinator's path)."""
    out = TermStatistics(shots=left.shots, mean=left.mean, m2=left.m2)
    out.merge(right)
    return out


def assert_close(left, right):
    assert left.shots == right.shots
    assert math.isclose(left.mean, right.mean, rel_tol=1e-9, abs_tol=1e-12)
    assert math.isclose(left.m2, right.m2, rel_tol=1e-9, abs_tol=1e-9)


class TestMergeAlgebra:
    @SETTINGS
    @given(batch_lists)
    def test_empty_ledger_is_identity(self, batch_list):
        ledger = ledger_of(batch_list)
        assert merged(ledger, TermStatistics()) == ledger
        assert merged(TermStatistics(), ledger) == ledger

    @SETTINGS
    @given(batch_lists, batch_lists)
    def test_merge_is_commutative(self, left_batches, right_batches):
        left, right = ledger_of(left_batches), ledger_of(right_batches)
        assert_close(merged(left, right), merged(right, left))

    @SETTINGS
    @given(batch_lists, batch_lists, batch_lists)
    def test_merge_is_associative(self, a_batches, b_batches, c_batches):
        a, b, c = ledger_of(a_batches), ledger_of(b_batches), ledger_of(c_batches)
        assert_close(merged(merged(a, b), c), merged(a, merged(b, c)))

    @SETTINGS
    @given(batches)
    def test_merge_of_one_round_ledger_is_bitwise_merge_round(self, batch):
        shots, successes = batch
        mean = batch_mean(shots, successes)
        via_round = TermStatistics()
        via_round.merge_round(mean, shots)
        partial = TermStatistics()
        partial.merge_round(mean, shots)
        base = ledger_of([(10, 7)])
        via_merge = merged(base, partial)
        reference = ledger_of([(10, 7)])
        reference.merge_round(mean, shots)
        assert via_merge.shots == reference.shots
        assert via_merge.mean == reference.mean
        assert via_merge.m2 == reference.m2

    @SETTINGS
    @given(batch_lists)
    def test_merge_of_splits_equals_pooled_welford(self, batch_list):
        """Any split of the raw ±1 sequence merges to the pooled statistics."""
        outcomes = np.concatenate(
            [
                np.concatenate(
                    [np.ones(successes), -np.ones(shots - successes)]
                )
                for shots, successes in batch_list
            ]
        )
        pooled_mean = float(np.mean(outcomes))
        pooled_m2 = float(np.sum((outcomes - pooled_mean) ** 2))

        ledger = ledger_of(batch_list)
        assert ledger.shots == len(outcomes)
        assert math.isclose(ledger.mean, pooled_mean, rel_tol=1e-9, abs_tol=1e-12)
        assert math.isclose(ledger.m2, pooled_m2, rel_tol=1e-9, abs_tol=1e-8)

        # The same sequence split as distributed partials merges identically.
        half = max(1, len(batch_list) // 2)
        left, right = ledger_of(batch_list[:half]), ledger_of(batch_list[half:])
        assert_close(merged(left, right), ledger)

    @SETTINGS
    @given(batch_lists)
    def test_sample_variance_is_bounded_for_pm1_observables(self, batch_list):
        ledger = ledger_of(batch_list)
        # Unbiased ±1 variance is at most n/(n−1) ≤ 2 (attained by {+1, −1}).
        assert 0.0 <= ledger.sample_variance <= 2.0 + 1e-9
