"""Shared hypothesis strategies for quantum objects."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

__all__ = [
    "k_values",
    "overlaps",
    "angles",
    "single_qubit_statevectors",
    "two_qubit_statevectors",
    "single_qubit_density_matrices",
]

#: Resource-state parameters k (bounded away from pathological magnitudes).
k_values = st.floats(min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False)

#: Entanglement levels f(Φ_k).
overlaps = st.floats(min_value=0.5, max_value=1.0, allow_nan=False, allow_infinity=False)

#: Rotation angles.
angles = st.floats(min_value=-2 * np.pi, max_value=2 * np.pi, allow_nan=False, allow_infinity=False)


def _complex_vector(dim: int):
    component = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, allow_infinity=False)
    return st.tuples(*([component] * (2 * dim))).map(
        lambda parts: np.array(
            [parts[2 * i] + 1j * parts[2 * i + 1] for i in range(dim)], dtype=complex
        )
    )


def _normalised(vector: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(vector)
    if norm < 1e-6:
        base = np.zeros_like(vector)
        base[0] = 1.0
        return base
    return vector / norm


#: Normalised single-qubit pure states.
single_qubit_statevectors = _complex_vector(2).map(_normalised)

#: Normalised two-qubit pure states.
two_qubit_statevectors = _complex_vector(4).map(_normalised)


def _vector_to_density(vector: np.ndarray) -> np.ndarray:
    return np.outer(vector, vector.conj())


#: Single-qubit density matrices as mixtures of two random pure states.
single_qubit_density_matrices = st.tuples(
    single_qubit_statevectors,
    single_qubit_statevectors,
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
).map(lambda parts: parts[2] * _vector_to_density(parts[0]) + (1 - parts[2]) * _vector_to_density(parts[1]))
