"""Property tests for largest-remainder shot apportionment.

The job scheduler's bitwise-determinism guarantee leans on the allocator:
if ``allocate_shots`` ever broke ties differently between two identical
calls, concurrent and serial submissions of the same job would diverge.
These properties pin down the deterministic largest-remainder contract —
exact budget totals and reproducible tie-breaking — including the
weight-tie cases a naive "sort by remainder" implementation gets wrong.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qpd.allocation import allocate_shots

SETTINGS = settings(max_examples=120, deadline=None)


def tied_weight_arrays():
    """Weight vectors built from a small value pool, so ties are common."""
    return st.lists(
        st.sampled_from([0.125, 0.25, 0.5, 1.0, 2.0]), min_size=1, max_size=12
    ).map(np.array)


class TestLargestRemainderProperties:
    @SETTINGS
    @given(weights=tied_weight_arrays(), shots=st.integers(min_value=0, max_value=50_000))
    def test_sums_exactly_to_budget_under_ties(self, weights, shots):
        allocation = allocate_shots(weights, shots, strategy="proportional")
        assert int(allocation.sum()) == shots
        assert np.all(allocation >= 0)

    @SETTINGS
    @given(weights=tied_weight_arrays(), shots=st.integers(min_value=0, max_value=50_000))
    def test_deterministic_under_ties(self, weights, shots):
        first = allocate_shots(weights, shots, strategy="proportional")
        second = allocate_shots(weights.copy(), shots, strategy="proportional")
        assert np.array_equal(first, second)

    @SETTINGS
    @given(
        weights=st.lists(
            st.floats(min_value=1e-6, max_value=100.0, allow_nan=False), min_size=1, max_size=12
        ).map(np.array),
        shots=st.integers(min_value=0, max_value=50_000),
    )
    def test_sums_exactly_for_arbitrary_weights(self, weights, shots):
        allocation = allocate_shots(weights, shots, strategy="proportional")
        assert int(allocation.sum()) == shots

    @SETTINGS
    @given(weights=tied_weight_arrays(), shots=st.integers(min_value=0, max_value=50_000))
    def test_off_by_at_most_one_from_ideal(self, weights, shots):
        # Largest-remainder apportionment never misses the ideal real-valued
        # share by a full shot in either direction.
        probabilities = weights / weights.sum()
        allocation = allocate_shots(weights, shots, strategy="proportional")
        ideal = probabilities * shots
        assert np.all(allocation >= np.floor(ideal) - 0)
        assert np.all(allocation <= np.ceil(ideal) + 0)

    @SETTINGS
    @given(
        size=st.integers(min_value=1, max_value=16),
        shots=st.integers(min_value=0, max_value=10_000),
    )
    def test_all_equal_weights_split_evenly(self, size, shots):
        allocation = allocate_shots(np.ones(size), shots, strategy="proportional")
        assert int(allocation.sum()) == shots
        assert allocation.max() - allocation.min() <= 1
