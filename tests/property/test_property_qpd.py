"""Property-based tests for the QPD framework and the teleportation channel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qpd.allocation import allocate_shots
from repro.qpd.estimator import TermEstimate, combine_term_estimates
from repro.quantum.bell import overlap_from_k, phi_k_state
from repro.teleport.channel import phi_k_teleportation_channel, teleportation_channel
from repro.teleport.probabilistic import success_probability

from tests.property.strategies import k_values, single_qubit_density_matrices

SETTINGS = settings(max_examples=60, deadline=None)


class TestAllocationProperties:
    @SETTINGS
    @given(
        weights=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8),
        shots=st.integers(min_value=0, max_value=10_000),
        strategy=st.sampled_from(["proportional", "uniform"]),
    )
    def test_allocation_sums_to_budget(self, weights, shots, strategy):
        allocation = allocate_shots(np.array(weights), shots, strategy=strategy)
        assert allocation.sum() == shots
        assert np.all(allocation >= 0)

    @SETTINGS
    @given(
        weights=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8),
        shots=st.integers(min_value=0, max_value=10_000),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_multinomial_allocation_sums_to_budget(self, weights, shots, seed):
        allocation = allocate_shots(np.array(weights), shots, strategy="multinomial", seed=seed)
        assert allocation.sum() == shots

    @SETTINGS
    @given(
        weights=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=6),
        shots=st.integers(min_value=100, max_value=5000),
    )
    def test_proportional_allocation_close_to_ideal(self, weights, shots):
        weights = np.array(weights)
        allocation = allocate_shots(weights, shots)
        ideal = weights / weights.sum() * shots
        assert np.all(np.abs(allocation - ideal) <= 1.0 + 1e-9)


class TestEstimatorProperties:
    @SETTINGS
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
                st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                st.integers(min_value=1, max_value=1000),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_combination_is_linear_in_coefficients(self, data):
        estimates = [
            TermEstimate(coefficient=c, mean=m, shots=s) for c, m, s in data
        ]
        result = combine_term_estimates(estimates)
        expected = sum(c * m for c, m, _ in data)
        assert result.value == pytest.approx(expected, abs=1e-9)
        assert result.kappa == pytest.approx(sum(abs(c) for c, _, _ in data))
        assert result.standard_error >= 0.0


class TestTeleportationChannelProperties:
    @SETTINGS
    @given(k=k_values, rho=single_qubit_density_matrices)
    def test_output_is_valid_state(self, k, rho):
        channel = phi_k_teleportation_channel(k)
        out = channel.apply_matrix(rho)
        assert np.trace(out).real == pytest.approx(np.trace(rho).real, abs=1e-9)
        assert np.all(np.linalg.eigvalsh((out + out.conj().T) / 2) >= -1e-9)

    @SETTINGS
    @given(k=k_values)
    def test_identity_weight_matches_overlap(self, k):
        channel = teleportation_channel(phi_k_state(k))
        rho = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
        # Z-diagonal states are invariant under the Φ_k teleportation channel.
        assert np.allclose(channel.apply_matrix(rho), rho)

    @SETTINGS
    @given(k=k_values)
    def test_coherence_damped_by_2f_minus_1(self, k):
        # The off-diagonal element of the output is (2f − 1) times the input's.
        channel = phi_k_teleportation_channel(k)
        plus = np.full((2, 2), 0.5, dtype=complex)
        out = channel.apply_matrix(plus)
        assert out[0, 1].real == pytest.approx(0.5 * (2 * overlap_from_k(k) - 1), abs=1e-9)

    @SETTINGS
    @given(k=k_values)
    def test_probabilistic_success_bounded(self, k):
        p = success_probability(k)
        assert 0.0 <= p <= 1.0
