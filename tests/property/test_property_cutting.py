"""Property-based tests for the wire-cutting core (Theorems 1 and 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.cutting.cutter import CutLocation
from repro.cutting.executor import build_sampling_model
from repro.cutting.nme_cut import NMEWireCut, nme_coefficients
from repro.cutting.overhead import nme_overhead, optimal_overhead
from repro.cutting.standard_cut import HaradaWireCut
from repro.quantum.bell import overlap_from_k
from repro.quantum.states import Statevector

from tests.property.strategies import k_values, overlaps, single_qubit_statevectors

SETTINGS = settings(max_examples=40, deadline=None)
FAST_SETTINGS = settings(max_examples=15, deadline=None)


class TestTheorem2ChannelLevel:
    """The Theorem-2 decomposition is an exact identity QPD for every k."""

    @SETTINGS
    @given(k=k_values)
    def test_identity_superoperator(self, k):
        assert NMEWireCut(k).decomposition().matches_identity(atol=1e-8)

    @SETTINGS
    @given(k=k_values)
    def test_coefficients(self, k):
        a, b = nme_coefficients(k)
        assert a > 0
        assert b >= 0
        assert 2 * a - b == pytest.approx(1.0)

    @SETTINGS
    @given(k=k_values)
    def test_kappa_equals_corollary1(self, k):
        assert NMEWireCut(k).kappa == pytest.approx(nme_overhead(k))

    @SETTINGS
    @given(k=k_values, vector=single_qubit_statevectors)
    def test_exact_action_is_identity_on_states(self, k, vector):
        rho = np.outer(vector, vector.conj())
        reconstructed = NMEWireCut(k).decomposition().apply_exact(rho)
        assert np.allclose(reconstructed, rho, atol=1e-8)


class TestTheorem1Relations:
    @SETTINGS
    @given(f=overlaps)
    def test_overhead_between_one_and_three(self, f):
        assert 1.0 - 1e-9 <= optimal_overhead(f) <= 3.0 + 1e-9

    @SETTINGS
    @given(k=k_values)
    def test_corollary_consistent_with_theorem(self, k):
        assert nme_overhead(k) == pytest.approx(optimal_overhead(overlap_from_k(k)))

    @SETTINGS
    @given(k=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_overhead_decreasing_in_k_below_one(self, k):
        # On [0, 1] the overhead is non-increasing in k.
        assert nme_overhead(min(k + 0.05, 1.0)) <= nme_overhead(k) + 1e-9

    @SETTINGS
    @given(k=k_values)
    def test_nme_never_worse_than_entanglement_free(self, k):
        assert nme_overhead(k) <= 3.0 + 1e-9
        assert nme_overhead(k) >= 1.0 - 1e-9


class TestCircuitLevelReconstruction:
    """Executed as circuits, the cut reproduces the uncut expectation value."""

    @FAST_SETTINGS
    @given(vector=single_qubit_statevectors, k=st.floats(min_value=0.0, max_value=2.0))
    def test_nme_cut_exact_on_random_states(self, vector, k):
        circuit = QuantumCircuit(1, 0)
        circuit.initialize(np.asarray(vector), 0)
        model = build_sampling_model(circuit, CutLocation(0, 1), NMEWireCut(k), "Z")
        assert model.exact_cut_value() == pytest.approx(model.exact_value, abs=1e-8)

    @FAST_SETTINGS
    @given(vector=single_qubit_statevectors)
    def test_harada_cut_exact_on_random_states(self, vector):
        circuit = QuantumCircuit(1, 0)
        circuit.initialize(np.asarray(vector), 0)
        model = build_sampling_model(circuit, CutLocation(0, 1), HaradaWireCut(), "Z")
        assert model.exact_cut_value() == pytest.approx(model.exact_value, abs=1e-8)

    @FAST_SETTINGS
    @given(
        vector=single_qubit_statevectors,
        shots=st.integers(min_value=1, max_value=5000),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_estimates_bounded_by_kappa(self, vector, shots, seed):
        # Every finite-shot estimate lies within [-κ, κ] by construction.
        circuit = QuantumCircuit(1, 0)
        circuit.initialize(np.asarray(vector), 0)
        protocol = NMEWireCut(0.5)
        model = build_sampling_model(circuit, CutLocation(0, 1), protocol, "Z")
        result = model.estimate(shots, seed=seed)
        assert abs(result.value) <= protocol.kappa + 1e-9
        assert Statevector(vector, validate=False).num_qubits == 1
