"""Property-based equivalence of the einsum and dense simulation kernels.

The axis-local ``einsum`` kernels must be indistinguishable from the legacy
``dense`` reference path on arbitrary circuits: final states and exact
distributions agree to 1e-12, and — for a fixed kernel — every execution
backend returns bitwise-identical distributions and sampled counts for the
same seed (the repo-wide determinism contract).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.backends import ProcessPoolBackend, SerialBackend, VectorizedBackend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.density_matrix_simulator import DensityMatrixSimulator
from repro.circuits.kernels import KERNEL_NAMES
from repro.circuits.statevector_simulator import StatevectorSimulator
from repro.devices import NoiseModel, NoisyDeviceBackend

SETTINGS = settings(max_examples=25, deadline=None)

_SINGLE_GATES = ("h", "x", "y", "z", "s", "t", "sx")


@st.composite
def mixed_circuits(draw, max_qubits: int = 3, max_ops: int = 10):
    """Random circuits over the full instruction set (gates, measure, reset,
    initialize, classical conditioning)."""
    num_qubits = draw(st.integers(min_value=1, max_value=max_qubits))
    num_clbits = num_qubits
    circuit = QuantumCircuit(num_qubits, num_clbits)
    measured = False
    num_ops = draw(st.integers(min_value=1, max_value=max_ops))
    for _ in range(num_ops):
        kind = draw(
            st.sampled_from(
                ("single", "rotation", "cx", "measure", "reset", "initialize", "conditional")
            )
        )
        qubit = draw(st.integers(0, num_qubits - 1))
        if kind == "single":
            circuit.gate(draw(st.sampled_from(_SINGLE_GATES)), (qubit,))
        elif kind == "rotation":
            angle = draw(
                st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False, allow_infinity=False)
            )
            circuit.gate(draw(st.sampled_from(("rx", "ry", "rz"))), (qubit,), (angle,))
        elif kind == "cx":
            if num_qubits < 2:
                continue
            target = draw(st.integers(0, num_qubits - 1))
            if target == qubit:
                continue
            circuit.cx(qubit, target)
        elif kind == "measure":
            circuit.measure(qubit, qubit)
            measured = True
        elif kind == "reset":
            circuit.reset(qubit)
        elif kind == "initialize":
            amplitudes = np.array(
                [
                    draw(st.floats(min_value=-1, max_value=1, allow_nan=False)) + 0.5j,
                    draw(st.floats(min_value=-1, max_value=1, allow_nan=False)) - 0.25j,
                ]
            )
            circuit.initialize(amplitudes / np.linalg.norm(amplitudes), qubit)
        else:  # conditional
            if not measured:
                continue
            circuit.x(qubit, condition=(draw(st.integers(0, num_clbits - 1)), draw(st.integers(0, 1))))
    circuit.measure_all()
    return circuit


@st.composite
def unitary_circuits(draw, max_qubits: int = 4, max_gates: int = 10):
    """Random measurement-free circuits for the statevector simulator."""
    num_qubits = draw(st.integers(min_value=1, max_value=max_qubits))
    circuit = QuantumCircuit(num_qubits, 0)
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        kind = draw(st.sampled_from(("single", "rotation", "cx")))
        qubit = draw(st.integers(0, num_qubits - 1))
        if kind == "single":
            circuit.gate(draw(st.sampled_from(_SINGLE_GATES)), (qubit,))
        elif kind == "rotation":
            angle = draw(
                st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False, allow_infinity=False)
            )
            circuit.gate(draw(st.sampled_from(("rx", "ry", "rz"))), (qubit,), (angle,))
        else:
            if num_qubits < 2:
                continue
            target = draw(st.integers(0, num_qubits - 1))
            if target == qubit:
                continue
            circuit.cx(qubit, target)
    return circuit


def _distributions_close(left: dict[str, float], right: dict[str, float], atol: float) -> None:
    keys = set(left) | set(right)
    for key in keys:
        assert abs(left.get(key, 0.0) - right.get(key, 0.0)) <= atol, key


class TestKernelEquivalence:
    @SETTINGS
    @given(circuit=mixed_circuits())
    def test_density_matrix_distributions_agree(self, circuit):
        """einsum and dense produce the same exact distribution to 1e-12."""
        einsum = DensityMatrixSimulator(kernel="einsum").run(circuit)
        dense = DensityMatrixSimulator(kernel="dense").run(circuit)
        _distributions_close(
            einsum.classical_distribution(), dense.classical_distribution(), atol=1e-12
        )
        # The branch-averaged quantum states agree too.
        np.testing.assert_allclose(
            einsum.average_state().data, dense.average_state().data, atol=1e-12
        )

    @SETTINGS
    @given(circuit=unitary_circuits())
    def test_statevector_states_agree(self, circuit):
        einsum = StatevectorSimulator(kernel="einsum").run(circuit).data
        dense = StatevectorSimulator(kernel="dense").run(circuit).data
        np.testing.assert_allclose(einsum, dense, atol=1e-12)

    @SETTINGS
    @given(
        circuit=mixed_circuits(),
        p1=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
        p2=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
    )
    def test_gate_noise_distributions_agree(self, circuit, p1, p2):
        """The local-Kraus noise path matches the expanded reference."""
        noise = NoiseModel(depolarizing_1q=p1, depolarizing_2q=p2)
        hook = noise.gate_noise_hook
        einsum = DensityMatrixSimulator(gate_noise=hook, kernel="einsum").run(circuit)
        dense = DensityMatrixSimulator(gate_noise=hook, kernel="dense").run(circuit)
        _distributions_close(
            einsum.classical_distribution(), dense.classical_distribution(), atol=1e-12
        )


class TestCrossBackendBitwise:
    """For a fixed kernel, every backend is bitwise identical per seed."""

    @SETTINGS
    @given(
        circuit=mixed_circuits(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        kernel=st.sampled_from(KERNEL_NAMES),
    )
    def test_distributions_and_counts_bitwise_across_backends(self, circuit, seed, kernel):
        circuits = [circuit, circuit.copy()]
        shots = [64, 128]
        backends = [
            SerialBackend(kernel=kernel),
            VectorizedBackend(cache=None, kernel=kernel),
            # chunk_size keeps the pool on its in-process path: worker
            # processes are exercised (slowly) by tests/circuits/test_backends
            # and the kernel benchmark; the arithmetic is chunk-invariant.
            ProcessPoolBackend(chunk_size=len(circuits), kernel=kernel),
        ]
        reference_distributions = None
        reference_counts = None
        for backend in backends:
            distributions = backend.exact_distributions(circuits)
            counts = backend.run_batch(circuits, shots, seed=seed)
            if reference_distributions is None:
                reference_distributions = distributions
                reference_counts = counts
                continue
            for got, expected in zip(distributions, reference_distributions):
                assert got == expected  # bitwise: dict equality on floats
            for got, expected in zip(counts, reference_counts):
                assert dict(got) == dict(expected)

    @SETTINGS
    @given(
        circuit=mixed_circuits(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        kernel=st.sampled_from(KERNEL_NAMES),
    )
    def test_noisy_backend_bitwise_across_inner_backends(self, circuit, seed, kernel):
        noise = NoiseModel(depolarizing_1q=0.02, depolarizing_2q=0.05, readout_p01=0.01)
        circuits = [circuit]
        shots = [96]
        results = []
        for inner in ("serial", "vectorized"):
            backend = NoisyDeviceBackend(noise, inner=inner, kernel=kernel)
            backend.cache.clear()
            results.append(
                (
                    backend.exact_distributions(circuits),
                    [dict(c) for c in backend.run_batch(circuits, shots, seed=seed)],
                )
            )
        assert results[0] == results[1]
