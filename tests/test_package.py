"""Package-level tests: metadata, exceptions, public API surface, examples."""

import importlib
import pathlib

import pytest

import repro
from repro import exceptions


class TestMetadata:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_quickstart_docstring_example(self):
        # The doctest-style snippet in the package docstring must actually work.
        from repro import NMEWireCut, cut_expectation_value
        from repro.quantum import random_statevector

        state = random_statevector(1, seed=7)
        result = cut_expectation_value(state, NMEWireCut.from_overlap(0.9), shots=4000, seed=11)
        assert abs(result.value - result.exact_value) < 0.2


class TestExceptions:
    def test_hierarchy(self):
        for name in exceptions.__all__:
            error_class = getattr(exceptions, name)
            assert issubclass(error_class, Exception)
            if name != "ReproError":
                assert issubclass(error_class, exceptions.ReproError)

    def test_catching_base_class(self):
        from repro.cutting import optimal_overhead

        with pytest.raises(exceptions.ReproError):
            optimal_overhead(0.1)


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.utils",
            "repro.quantum",
            "repro.circuits",
            "repro.qpd",
            "repro.teleport",
            "repro.cutting",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_imports_cleanly(self, module):
        assert importlib.import_module(module) is not None

    @pytest.mark.parametrize(
        "module",
        ["repro.quantum", "repro.circuits", "repro.qpd", "repro.teleport", "repro.cutting", "repro.experiments"],
    )
    def test_all_exports_resolve(self, module):
        package = importlib.import_module(module)
        for name in package.__all__:
            assert hasattr(package, name), f"{module}.{name} missing"


class TestExamples:
    def test_all_examples_compile(self):
        examples_dir = pathlib.Path(__file__).resolve().parent.parent / "examples"
        scripts = sorted(examples_dir.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            compile(script.read_text(), str(script), "exec")

    def test_quickstart_example_main_runs(self, capsys):
        import importlib.util

        path = pathlib.Path(__file__).resolve().parent.parent / "examples" / "quickstart.py"
        spec = importlib.util.spec_from_file_location("quickstart_example", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        out = capsys.readouterr().out
        assert "teleportation" in out
