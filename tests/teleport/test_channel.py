"""Unit tests for the analytic teleportation channel (Eq. 22)."""

import numpy as np
import pytest

from repro.circuits.density_matrix_simulator import simulate_density_matrix
from repro.quantum.bell import phi_k_density, phi_k_state, werner_state
from repro.quantum.measures import state_fidelity
from repro.quantum.random import random_statevector
from repro.teleport.channel import (
    average_teleportation_fidelity,
    phi_k_average_fidelity,
    phi_k_teleportation_channel,
    teleportation_channel,
    teleportation_error_probabilities,
)
from repro.teleport.protocol import teleportation_circuit


class TestErrorProbabilities:
    def test_appendix_c_overlaps(self):
        k = 0.6
        probabilities = teleportation_error_probabilities(phi_k_state(k))
        norm = 2 * (k * k + 1)
        assert probabilities["I"] == pytest.approx((k + 1) ** 2 / norm)
        assert probabilities["Z"] == pytest.approx((k - 1) ** 2 / norm)
        assert probabilities["X"] == pytest.approx(0.0, abs=1e-12)
        assert probabilities["Y"] == pytest.approx(0.0, abs=1e-12)

    def test_werner_resource(self):
        probabilities = teleportation_error_probabilities(werner_state(0.7))
        assert probabilities["I"] == pytest.approx(0.7 + 0.3 / 4)
        assert sum(probabilities.values()) == pytest.approx(1.0)


class TestChannel:
    def test_maximally_entangled_is_identity(self):
        channel = teleportation_channel(phi_k_density(1.0))
        rho = random_statevector(1, seed=0).to_density_matrix()
        assert np.allclose(channel.apply(rho).data, rho.data)

    def test_trace_preserving_for_phi_k(self):
        for k in (0.0, 0.3, 1.0):
            assert phi_k_teleportation_channel(k).is_trace_preserving()

    def test_phi_k_channel_matches_generic(self):
        k = 0.45
        rho = random_statevector(1, seed=1).to_density_matrix()
        a = phi_k_teleportation_channel(k).apply(rho)
        b = teleportation_channel(phi_k_density(k)).apply(rho)
        assert np.allclose(a.data, b.data)

    def test_matches_circuit_simulation(self):
        # The analytic channel (Eq. 22) must agree with the full circuit
        # simulation of Figure 3 for every k.
        for k in (0.0, 0.25, 0.7, 1.0):
            message = random_statevector(1, seed=int(k * 100) + 2)
            circuit = teleportation_circuit(message_state=message, resource=k)
            simulated = simulate_density_matrix(circuit).average_state().partial_trace([0, 1])
            analytic = phi_k_teleportation_channel(k).apply(message.to_density_matrix())
            assert np.allclose(simulated.data, analytic.data, atol=1e-9)

    def test_separable_resource_gives_full_dephasing(self):
        channel = phi_k_teleportation_channel(0.0)
        plus = np.full((2, 2), 0.5, dtype=complex)
        assert np.allclose(channel.apply_matrix(plus), np.eye(2) / 2)


class TestFidelity:
    def test_phi_k_fidelity_formula(self):
        for k in (0.0, 0.5, 1.0):
            assert phi_k_average_fidelity(k) == pytest.approx((2 * ((k + 1) ** 2 / (2 * (k * k + 1))) + 1) / 3)

    def test_maximal_entanglement_unit_fidelity(self):
        assert phi_k_average_fidelity(1.0) == pytest.approx(1.0)

    def test_classical_limit(self):
        # Without entanglement the best achievable average fidelity is 2/3.
        assert phi_k_average_fidelity(0.0) == pytest.approx(2.0 / 3.0)

    def test_generic_resource(self):
        assert average_teleportation_fidelity(werner_state(1.0)) == pytest.approx(1.0)
        assert average_teleportation_fidelity(werner_state(0.0)) == pytest.approx(0.5)

    def test_monte_carlo_agrees_with_formula(self):
        # Average the simulated fidelity over many random inputs and compare
        # with the analytic Haar-average formula.
        k = 0.5
        fidelities = []
        for seed in range(60):
            message = random_statevector(1, seed=seed)
            output = phi_k_teleportation_channel(k).apply(message.to_density_matrix())
            fidelities.append(state_fidelity(message, output))
        assert np.mean(fidelities) == pytest.approx(phi_k_average_fidelity(k), abs=0.03)
