"""Unit tests for the teleportation circuit builders."""

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.density_matrix_simulator import simulate_density_matrix
from repro.circuits.statevector_simulator import simulate_statevector
from repro.quantum.bell import bell_state, overlap_from_k, phi_k_state
from repro.quantum.measures import state_fidelity
from repro.quantum.random import random_statevector
from repro.teleport.protocol import (
    append_teleportation,
    prepare_phi_k,
    prepare_resource_state,
    teleportation_circuit,
)


class TestResourcePreparation:
    @pytest.mark.parametrize("k", [0.0, 0.3, 0.7, 1.0, 2.5])
    def test_prepare_phi_k(self, k):
        circuit = QuantumCircuit(2)
        prepare_phi_k(circuit, k, 0, 1)
        state = simulate_statevector(circuit)
        assert state_fidelity(state, phi_k_state(k)) == pytest.approx(1.0)

    def test_prepare_phi_k_on_arbitrary_qubits(self):
        circuit = QuantumCircuit(3)
        prepare_phi_k(circuit, 1.0, 2, 0)
        state = simulate_statevector(circuit)
        reduced = state.reduced_density_matrix([2, 0])
        assert state_fidelity(bell_state("I"), reduced) == pytest.approx(1.0)

    def test_prepare_phi_k_negative_k(self):
        with pytest.raises(CircuitError):
            prepare_phi_k(QuantumCircuit(2), -0.1, 0, 1)

    def test_prepare_resource_state_from_k(self):
        circuit = QuantumCircuit(2)
        prepare_resource_state(circuit, 0.4, 0, 1)
        state = simulate_statevector(circuit)
        assert state_fidelity(state, phi_k_state(0.4)) == pytest.approx(1.0)

    def test_prepare_resource_state_from_vector(self):
        target = random_statevector(2, seed=0)
        circuit = QuantumCircuit(2)
        prepare_resource_state(circuit, target, 0, 1)
        result = simulate_density_matrix(circuit).average_state()
        assert state_fidelity(target, result) == pytest.approx(1.0)

    def test_prepare_resource_state_bad_dimension(self):
        with pytest.raises(CircuitError):
            prepare_resource_state(QuantumCircuit(2), np.array([1.0, 0.0]), 0, 1)


class TestTeleportationCircuit:
    def test_maximally_entangled_perfect_fidelity(self):
        for seed in range(3):
            message = random_statevector(1, seed=seed)
            circuit = teleportation_circuit(message_state=message, resource=1.0)
            result = simulate_density_matrix(circuit)
            output = result.average_state().partial_trace([0, 1])
            assert state_fidelity(message, output) == pytest.approx(1.0)

    def test_measurement_outcomes_uniform_for_bell_resource(self):
        message = random_statevector(1, seed=5)
        circuit = teleportation_circuit(message_state=message, resource=1.0)
        distribution = simulate_density_matrix(circuit).classical_distribution()
        assert len(distribution) == 4
        assert all(p == pytest.approx(0.25) for p in distribution.values())

    def test_nme_resource_fidelity_matches_eq22(self):
        # With |Φ_k⟩ the output is pI·ρ + pZ·ZρZ; its fidelity with the input
        # is pI + pZ·|<ψ|Z|ψ>|².
        k = 0.4
        message = random_statevector(1, seed=7)
        circuit = teleportation_circuit(message_state=message, resource=k)
        output = simulate_density_matrix(circuit).average_state().partial_trace([0, 1])
        p_identity = overlap_from_k(k)
        z = np.diag([1.0, -1.0])
        z_expect = float(np.real(message.expectation_value(z)))
        expected_fidelity = p_identity + (1 - p_identity) * z_expect**2
        assert state_fidelity(message, output) == pytest.approx(expected_fidelity)

    def test_product_resource_destroys_coherence(self):
        plus = np.array([1, 1]) / np.sqrt(2)
        circuit = teleportation_circuit(message_state=plus, resource=0.0)
        output = simulate_density_matrix(circuit).average_state().partial_trace([0, 1])
        assert np.allclose(output.data, np.eye(2) / 2)

    def test_explicit_resource_state(self):
        message = random_statevector(1, seed=8)
        circuit = teleportation_circuit(message_state=message, resource=bell_state("I"))
        output = simulate_density_matrix(circuit).average_state().partial_trace([0, 1])
        assert state_fidelity(message, output) == pytest.approx(1.0)

    def test_append_teleportation_custom_wiring(self):
        message = random_statevector(1, seed=9)
        circuit = QuantumCircuit(4, 3)
        circuit.initialize(message.data, 1)
        append_teleportation(circuit, 1.0, qubit_a=1, qubit_b=3, qubit_c=0, clbit_a=2, clbit_b=0)
        output = simulate_density_matrix(circuit).average_state().partial_trace([1, 2, 3])
        assert state_fidelity(message, output) == pytest.approx(1.0)
