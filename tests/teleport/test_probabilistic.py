"""Unit tests for probabilistic (Agrawal–Pati) teleportation."""

import pytest

from repro.exceptions import StateError
from repro.teleport.probabilistic import expected_attempts, simulate_attempts, success_probability


class TestSuccessProbability:
    def test_maximally_entangled(self):
        assert success_probability(1.0) == pytest.approx(1.0)

    def test_separable(self):
        assert success_probability(0.0) == pytest.approx(0.0)

    def test_formula(self):
        k = 0.5
        assert success_probability(k) == pytest.approx(2 * k * k / (1 + k * k))

    def test_symmetric_under_inversion(self):
        assert success_probability(0.25) == pytest.approx(success_probability(4.0))

    def test_monotone_in_k(self):
        values = [success_probability(k) for k in (0.1, 0.3, 0.6, 1.0)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_negative_k(self):
        with pytest.raises(StateError):
            success_probability(-1)


class TestExpectedAttempts:
    def test_maximally_entangled(self):
        assert expected_attempts(1.0) == pytest.approx(1.0)

    def test_separable_is_infinite(self):
        assert expected_attempts(0.0) == float("inf")

    def test_inverse_of_probability(self):
        assert expected_attempts(0.5) == pytest.approx(1 / success_probability(0.5))


class TestSimulateAttempts:
    def test_deterministic_resource(self):
        assert simulate_attempts(1.0, successes=10, seed=0) == 10

    def test_zero_successes(self):
        assert simulate_attempts(0.5, successes=0) == 0

    def test_statistics(self):
        attempts = simulate_attempts(0.5, successes=2000, seed=1)
        assert attempts / 2000 == pytest.approx(expected_attempts(0.5), rel=0.1)

    def test_separable_raises(self):
        with pytest.raises(StateError):
            simulate_attempts(0.0, successes=1)

    def test_negative_successes(self):
        with pytest.raises(ValueError):
            simulate_attempts(0.5, successes=-1)
