"""Unit tests for entanglement quantification (Schmidt, f, concurrence, negativity)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.quantum.bell import bell_state, overlap_from_k, phi_k_density, phi_k_state, werner_state
from repro.quantum.entanglement import (
    concurrence,
    entanglement_entropy,
    fully_entangled_fraction,
    is_separable_pure,
    maximal_overlap,
    maximal_overlap_pure,
    negativity,
    schmidt_coefficients,
    schmidt_decomposition,
    schmidt_rank,
)
from repro.quantum.random import random_statevector, random_unitary
from repro.quantum.states import DensityMatrix, Statevector


class TestSchmidtDecomposition:
    def test_product_state_rank_one(self):
        assert schmidt_rank(Statevector("01")) == 1
        assert is_separable_pure(Statevector("01"))

    def test_bell_state_rank_two(self):
        assert schmidt_rank(bell_state("I")) == 2
        assert not is_separable_pure(bell_state("I"))

    def test_coefficients_of_phi_k(self):
        k = 0.5
        coefficients = schmidt_coefficients(phi_k_state(k))
        normalisation = 1 / np.sqrt(1 + k * k)
        assert np.allclose(coefficients, sorted([normalisation, k * normalisation], reverse=True))

    def test_coefficients_descending_and_normalised(self):
        state = random_statevector(2, seed=3)
        coefficients = schmidt_coefficients(state)
        assert np.all(np.diff(coefficients) <= 1e-12)
        assert np.sum(coefficients**2) == pytest.approx(1.0)

    def test_reconstruction(self):
        state = random_statevector(2, seed=8)
        decomposition = schmidt_decomposition(state)
        assert np.allclose(decomposition.reconstruct(), state.data)

    def test_unequal_dims(self):
        # 3-qubit state split as 1 | 2 qubits.
        state = random_statevector(3, seed=2)
        decomposition = schmidt_decomposition(state, dims=(2, 4))
        assert decomposition.coefficients.shape[0] == 2
        assert np.allclose(decomposition.reconstruct(), state.data)

    def test_odd_qubits_require_dims(self):
        with pytest.raises(DimensionError):
            schmidt_decomposition(random_statevector(3, seed=1))

    def test_bad_dims(self):
        with pytest.raises(DimensionError):
            schmidt_decomposition(random_statevector(2, seed=1), dims=(2, 3))


class TestEntanglementEntropy:
    def test_product_state_zero(self):
        assert entanglement_entropy(Statevector("00")) == pytest.approx(0.0)

    def test_bell_state_one_bit(self):
        assert entanglement_entropy(bell_state("I")) == pytest.approx(1.0)

    def test_monotone_in_k(self):
        values = [entanglement_entropy(phi_k_state(k)) for k in (0.1, 0.4, 0.7, 1.0)]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestConcurrence:
    def test_bell_state(self):
        assert concurrence(bell_state("I")) == pytest.approx(1.0)

    def test_product_state(self):
        assert concurrence(Statevector("01")) == pytest.approx(0.0, abs=1e-8)

    def test_phi_k_formula(self):
        # For |Φ_k>, concurrence = 2k/(1+k²).
        for k in (0.2, 0.5, 1.0):
            assert concurrence(phi_k_state(k)) == pytest.approx(2 * k / (1 + k * k))

    def test_werner_threshold(self):
        # Werner states are separable for p <= 1/3.
        assert concurrence(werner_state(0.2)) == pytest.approx(0.0, abs=1e-10)
        assert concurrence(werner_state(0.8)) > 0.0

    def test_invariant_under_local_unitaries(self):
        state = phi_k_state(0.6)
        local = np.kron(random_unitary(2, seed=1), random_unitary(2, seed=2))
        rotated = Statevector(local @ state.data, validate=False)
        assert concurrence(rotated) == pytest.approx(concurrence(state))


class TestNegativity:
    def test_bell_state(self):
        assert negativity(bell_state("I")) == pytest.approx(0.5)

    def test_product_state(self):
        assert negativity(Statevector("00")) == pytest.approx(0.0, abs=1e-10)

    def test_werner_separable_region(self):
        assert negativity(werner_state(0.3)) == pytest.approx(0.0, abs=1e-10)
        assert negativity(werner_state(0.9)) > 0.0


class TestMaximalOverlap:
    def test_phi_k_matches_eq10(self):
        for k in (0.0, 0.2, 0.5, 0.8, 1.0):
            assert maximal_overlap_pure(phi_k_state(k)) == pytest.approx(overlap_from_k(k))

    def test_range_for_random_states(self):
        for seed in range(8):
            f = maximal_overlap_pure(random_statevector(2, seed=seed))
            assert 0.5 - 1e-9 <= f <= 1.0 + 1e-9

    def test_invariant_under_local_unitaries(self):
        # Eq. 7/8 of the paper: f only depends on the Schmidt coefficients.
        state = phi_k_state(0.4)
        local = np.kron(random_unitary(2, seed=5), random_unitary(2, seed=6))
        rotated = Statevector(local @ state.data, validate=False)
        assert maximal_overlap_pure(rotated) == pytest.approx(maximal_overlap_pure(state))

    def test_dispatches_pure_density_matrix(self):
        assert maximal_overlap(phi_k_density(0.5)) == pytest.approx(overlap_from_k(0.5))

    def test_werner_state(self):
        # For Werner states the maximal overlap equals max(FEF, 1/2) = max(p + (1-p)/4, 1/2).
        assert maximal_overlap(werner_state(0.8)) == pytest.approx(0.85)
        assert maximal_overlap(werner_state(0.0)) == pytest.approx(0.5)

    def test_mixed_state_wrong_size(self):
        with pytest.raises(DimensionError):
            maximal_overlap(DensityMatrix.maximally_mixed(1))


class TestFullyEntangledFraction:
    def test_bell_state(self):
        assert fully_entangled_fraction(bell_state("I")) == pytest.approx(1.0)

    def test_all_bell_states_have_unit_fef(self):
        for label in "IXYZ":
            assert fully_entangled_fraction(bell_state(label)) == pytest.approx(1.0)

    def test_maximally_mixed(self):
        assert fully_entangled_fraction(DensityMatrix.maximally_mixed(2)) == pytest.approx(0.25)

    def test_product_state(self):
        assert fully_entangled_fraction(Statevector("00")) == pytest.approx(0.5)

    def test_never_below_quarter(self):
        for seed in range(5):
            from repro.quantum.random import random_density_matrix

            rho = random_density_matrix(2, seed=seed)
            assert fully_entangled_fraction(rho) >= 0.25 - 1e-9
