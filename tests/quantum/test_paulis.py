"""Unit tests for Pauli strings and the Pauli basis."""

import numpy as np
import pytest

from repro.exceptions import DimensionError, GateError
from repro.quantum.gates import X, Y, Z
from repro.quantum.paulis import (
    PauliString,
    pauli_basis,
    pauli_decompose,
    pauli_expectation_from_counts,
    pauli_reconstruct,
)


class TestPauliString:
    def test_matrix_single(self):
        assert np.allclose(PauliString("X").to_matrix(), X)

    def test_matrix_two_qubit(self):
        assert np.allclose(PauliString("XZ").to_matrix(), np.kron(X, Z))

    def test_phase(self):
        assert np.allclose(PauliString("Z", phase=-1).to_matrix(), -Z)

    def test_invalid_label(self):
        with pytest.raises(GateError):
            PauliString("XA")

    def test_empty_label(self):
        with pytest.raises(GateError):
            PauliString("")

    def test_weight(self):
        assert PauliString("IXIZ").weight == 2

    def test_num_qubits(self):
        assert PauliString("IXY").num_qubits == 3

    def test_compose_single(self):
        result = PauliString("X").compose(PauliString("Y"))
        assert result.labels == "Z"
        assert result.phase == 1j

    def test_compose_multi(self):
        result = PauliString("XI").compose(PauliString("XZ"))
        assert result.labels == "IZ"
        assert result.phase == 1

    def test_compose_matches_matrix_product(self):
        a, b = PauliString("XY"), PauliString("ZZ")
        assert np.allclose(a.compose(b).to_matrix(), a.to_matrix() @ b.to_matrix())

    def test_compose_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            PauliString("X").compose(PauliString("XX"))

    def test_commutation(self):
        assert PauliString("XX").commutes_with(PauliString("ZZ"))
        assert not PauliString("XI").commutes_with(PauliString("ZI"))
        assert PauliString("XI").commutes_with(PauliString("IZ"))

    def test_expectation_statevector(self):
        plus = np.array([1, 1]) / np.sqrt(2)
        assert PauliString("X").expectation(plus).real == pytest.approx(1.0)

    def test_expectation_density_matrix(self):
        rho = np.diag([1.0, 0.0])
        assert PauliString("Z").expectation(rho).real == pytest.approx(1.0)


class TestPauliBasis:
    def test_size(self):
        assert len(pauli_basis(1)) == 4
        assert len(pauli_basis(2)) == 16

    def test_contains_identity(self):
        assert np.allclose(pauli_basis(2)["II"], np.eye(4))

    def test_orthogonality(self):
        basis = pauli_basis(1)
        for label_a, matrix_a in basis.items():
            for label_b, matrix_b in basis.items():
                overlap = np.trace(matrix_a @ matrix_b) / 2
                assert overlap == pytest.approx(1.0 if label_a == label_b else 0.0)

    def test_invalid_num_qubits(self):
        with pytest.raises(DimensionError):
            pauli_basis(0)


class TestPauliDecompose:
    def test_roundtrip_random_hermitian(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        matrix = matrix + matrix.conj().T
        coefficients = pauli_decompose(matrix)
        assert np.allclose(pauli_reconstruct(coefficients, 2), matrix)

    def test_decompose_z(self):
        coefficients = pauli_decompose(Z)
        assert set(coefficients) == {"Z"}
        assert coefficients["Z"] == pytest.approx(1.0)

    def test_decompose_projector(self):
        coefficients = pauli_decompose(np.diag([1.0, 0.0]))
        assert coefficients["I"] == pytest.approx(0.5)
        assert coefficients["Z"] == pytest.approx(0.5)

    def test_decompose_rejects_non_square(self):
        with pytest.raises(DimensionError):
            pauli_decompose(np.zeros((2, 3)))

    def test_reconstruct_rejects_wrong_width(self):
        with pytest.raises(DimensionError):
            pauli_reconstruct({"XX": 1.0}, 1)


class TestPauliExpectationFromCounts:
    def test_all_zero_counts(self):
        assert pauli_expectation_from_counts({"00": 100}, "ZZ") == pytest.approx(1.0)

    def test_parity(self):
        counts = {"01": 50, "10": 50}
        assert pauli_expectation_from_counts(counts, "ZZ") == pytest.approx(-1.0)

    def test_identity_marginalises(self):
        counts = {"01": 30, "00": 70}
        assert pauli_expectation_from_counts(counts, "ZI") == pytest.approx(1.0)

    def test_qubit_selection(self):
        counts = {"01": 40, "00": 60}
        assert pauli_expectation_from_counts(counts, qubits=[1]) == pytest.approx(0.2)

    def test_rejects_x_labels(self):
        with pytest.raises(GateError):
            pauli_expectation_from_counts({"0": 1}, "X")

    def test_rejects_empty_counts(self):
        with pytest.raises(ValueError):
            pauli_expectation_from_counts({}, "Z")

    def test_requires_labels_or_qubits(self):
        with pytest.raises(ValueError):
            pauli_expectation_from_counts({"0": 1})
