"""Unit tests for state distance/similarity measures."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.quantum.bell import bell_state
from repro.quantum.measures import (
    hilbert_schmidt_distance,
    purity,
    state_fidelity,
    trace_distance,
    von_neumann_entropy,
)
from repro.quantum.random import random_density_matrix, random_statevector
from repro.quantum.states import DensityMatrix, Statevector


class TestFidelity:
    def test_identical_pure(self):
        state = random_statevector(2, seed=0)
        assert state_fidelity(state, state) == pytest.approx(1.0)

    def test_orthogonal_pure(self):
        assert state_fidelity(Statevector("0"), Statevector("1")) == pytest.approx(0.0)

    def test_pure_pure_overlap(self):
        plus = Statevector(np.array([1, 1]) / np.sqrt(2))
        assert state_fidelity(plus, Statevector("0")) == pytest.approx(0.5)

    def test_pure_mixed(self):
        assert state_fidelity(Statevector("0"), DensityMatrix.maximally_mixed(1)) == pytest.approx(0.5)

    def test_mixed_mixed_identical(self):
        rho = random_density_matrix(1, seed=1)
        assert state_fidelity(rho, rho) == pytest.approx(1.0)

    def test_symmetry(self):
        rho = random_density_matrix(1, seed=2)
        sigma = random_density_matrix(1, seed=3)
        assert state_fidelity(rho, sigma) == pytest.approx(state_fidelity(sigma, rho))

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            state_fidelity(Statevector("0"), Statevector("00"))

    def test_accepts_raw_arrays(self):
        assert state_fidelity(np.array([1, 0]), np.diag([1.0, 0.0])) == pytest.approx(1.0)


class TestTraceDistance:
    def test_identical(self):
        rho = random_density_matrix(1, seed=5)
        assert trace_distance(rho, rho) == pytest.approx(0.0)

    def test_orthogonal_pure(self):
        assert trace_distance(Statevector("0"), Statevector("1")) == pytest.approx(1.0)

    def test_bounds(self):
        rho = random_density_matrix(2, seed=1)
        sigma = random_density_matrix(2, seed=2)
        distance = trace_distance(rho, sigma)
        assert 0.0 <= distance <= 1.0

    def test_fuchs_van_de_graaf(self):
        # 1 - sqrt(F) <= T <= sqrt(1 - F)
        rho = random_density_matrix(1, seed=7)
        sigma = random_density_matrix(1, seed=8)
        fidelity = state_fidelity(rho, sigma)
        distance = trace_distance(rho, sigma)
        assert 1 - np.sqrt(fidelity) <= distance + 1e-9
        assert distance <= np.sqrt(1 - fidelity) + 1e-9


class TestOtherMeasures:
    def test_hilbert_schmidt_zero_for_identical(self):
        rho = random_density_matrix(1, seed=4)
        assert hilbert_schmidt_distance(rho, rho) == pytest.approx(0.0)

    def test_purity(self):
        assert purity(Statevector("0")) == pytest.approx(1.0)
        assert purity(DensityMatrix.maximally_mixed(2)) == pytest.approx(0.25)

    def test_entropy_pure(self):
        assert von_neumann_entropy(bell_state("I")) == pytest.approx(0.0, abs=1e-10)

    def test_entropy_maximally_mixed(self):
        assert von_neumann_entropy(DensityMatrix.maximally_mixed(2)) == pytest.approx(2.0)

    def test_entropy_base_e(self):
        entropy = von_neumann_entropy(DensityMatrix.maximally_mixed(1), base=np.e)
        assert entropy == pytest.approx(np.log(2))
