"""Unit tests for the gate matrix library."""

import numpy as np
import pytest

from repro.exceptions import GateError
from repro.quantum import gates
from repro.utils.linalg import is_unitary


class TestFixedGates:
    @pytest.mark.parametrize(
        "matrix",
        [gates.I, gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.SDG, gates.T, gates.TDG,
         gates.SX, gates.CX, gates.CZ, gates.CY, gates.SWAP, gates.ISWAP, gates.CCX, gates.CSWAP],
    )
    def test_all_fixed_gates_unitary(self, matrix):
        assert is_unitary(matrix)

    def test_pauli_relations(self):
        assert np.allclose(gates.X @ gates.X, np.eye(2))
        assert np.allclose(gates.X @ gates.Y, 1j * gates.Z)
        assert np.allclose(gates.Z @ gates.X, 1j * gates.Y)
        assert np.allclose(gates.Y @ gates.Z, 1j * gates.X)

    def test_hadamard_conjugation(self):
        assert np.allclose(gates.H @ gates.Z @ gates.H, gates.X)
        assert np.allclose(gates.H @ gates.X @ gates.H, gates.Z)

    def test_s_squared_is_z(self):
        assert np.allclose(gates.S @ gates.S, gates.Z)

    def test_t_squared_is_s(self):
        assert np.allclose(gates.T @ gates.T, gates.S)

    def test_sx_squared_is_x(self):
        assert np.allclose(gates.SX @ gates.SX, gates.X)

    def test_sh_conjugates_z_to_y(self):
        # U2 = SH maps Z to Y under conjugation — used in the wire-cut proofs.
        u2 = gates.S @ gates.H
        assert np.allclose(u2 @ gates.Z @ u2.conj().T, gates.Y)

    def test_cx_action(self):
        ket10 = np.zeros(4); ket10[2] = 1
        ket11 = np.zeros(4); ket11[3] = 1
        assert np.allclose(gates.CX @ ket10, ket11)

    def test_cz_is_diagonal_with_single_minus(self):
        assert np.allclose(np.diag(gates.CZ), [1, 1, 1, -1])

    def test_swap_action(self):
        ket01 = np.zeros(4); ket01[1] = 1
        ket10 = np.zeros(4); ket10[2] = 1
        assert np.allclose(gates.SWAP @ ket01, ket10)

    def test_ccx_flips_target_only_when_both_controls_set(self):
        state = np.zeros(8); state[0b110] = 1
        assert np.allclose(gates.CCX @ state, np.eye(8)[0b111])
        state = np.zeros(8); state[0b100] = 1
        assert np.allclose(gates.CCX @ state, np.eye(8)[0b100])


class TestParametricGates:
    @pytest.mark.parametrize("theta", [0.0, 0.3, np.pi / 2, np.pi, 2 * np.pi])
    def test_rotations_unitary(self, theta):
        for factory in (gates.rx, gates.ry, gates.rz):
            assert is_unitary(factory(theta))

    def test_rx_pi_is_x_up_to_phase(self):
        assert np.allclose(gates.rx(np.pi), -1j * gates.X)

    def test_ry_pi_is_y_up_to_phase(self):
        assert np.allclose(gates.ry(np.pi), -1j * gates.Y)

    def test_rz_pi_is_z_up_to_phase(self):
        assert np.allclose(gates.rz(np.pi), -1j * gates.Z)

    def test_rotation_composition(self):
        assert np.allclose(gates.rz(0.3) @ gates.rz(0.4), gates.rz(0.7))

    def test_phase_gate(self):
        assert np.allclose(gates.phase(np.pi / 2), gates.S)

    def test_u3_special_cases(self):
        assert np.allclose(gates.u3(0, 0, 0), np.eye(2))
        # U(π/2, 0, π) = H
        assert np.allclose(gates.u3(np.pi / 2, 0, np.pi), gates.H)

    def test_rzz_diagonal(self):
        theta = 0.7
        expected = np.diag(
            [np.exp(-1j * theta / 2), np.exp(1j * theta / 2), np.exp(1j * theta / 2), np.exp(-1j * theta / 2)]
        )
        assert np.allclose(gates.rzz(theta), expected)

    def test_rxx_unitary(self):
        assert is_unitary(gates.rxx(1.1))
        assert is_unitary(gates.ryy(0.4))


class TestControlled:
    def test_controlled_x_is_cx(self):
        assert np.allclose(gates.controlled(gates.X), gates.CX)

    def test_doubly_controlled_x_is_ccx(self):
        assert np.allclose(gates.controlled(gates.X, num_controls=2), gates.CCX)

    def test_controlled_rejects_bad_input(self):
        with pytest.raises(GateError):
            gates.controlled(np.zeros((2, 3)))
        with pytest.raises(GateError):
            gates.controlled(gates.X, num_controls=0)


class TestGateMatrixLookup:
    def test_fixed_lookup(self):
        assert np.allclose(gates.gate_matrix("h"), gates.H)
        assert np.allclose(gates.gate_matrix("CNOT"), gates.CX)

    def test_parametric_lookup(self):
        assert np.allclose(gates.gate_matrix("ry", (0.5,)), gates.ry(0.5))

    def test_unknown_gate(self):
        with pytest.raises(GateError):
            gates.gate_matrix("nope")

    def test_wrong_params_fixed(self):
        with pytest.raises(GateError):
            gates.gate_matrix("x", (0.1,))

    def test_wrong_params_parametric(self):
        with pytest.raises(GateError):
            gates.gate_matrix("rx", ())

    def test_returns_copy(self):
        matrix = gates.gate_matrix("x")
        matrix[0, 0] = 99
        assert gates.X[0, 0] == 0
