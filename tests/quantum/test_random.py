"""Unit tests for Haar-random sampling."""

import numpy as np
import pytest

from repro.quantum.random import (
    haar_random_single_qubit_states,
    random_density_matrix,
    random_pure_two_qubit_state,
    random_statevector,
    random_unitary,
)
from repro.utils.linalg import is_density_matrix, is_statevector, is_unitary


class TestRandomUnitary:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4, 8])
    def test_unitarity(self, dim):
        assert is_unitary(random_unitary(dim, seed=0))

    def test_deterministic_with_seed(self):
        assert np.allclose(random_unitary(4, seed=5), random_unitary(4, seed=5))

    def test_different_seeds_differ(self):
        assert not np.allclose(random_unitary(4, seed=1), random_unitary(4, seed=2))

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            random_unitary(0)

    def test_haar_first_moment(self):
        # The Haar average of |U[0,0]|^2 is 1/dim; check within sampling error.
        dim = 2
        rng = np.random.default_rng(7)
        values = [abs(random_unitary(dim, seed=rng)[0, 0]) ** 2 for _ in range(2000)]
        assert np.mean(values) == pytest.approx(1.0 / dim, abs=0.03)

    def test_phase_correction_makes_eigenphases_uniformish(self):
        # Without Mezzadri's phase correction the eigenphase distribution of
        # QR-sampled matrices is visibly non-uniform; with it, the mean
        # complex eigenvalue should be near zero.
        rng = np.random.default_rng(3)
        eigs = np.concatenate(
            [np.linalg.eigvals(random_unitary(2, seed=rng)) for _ in range(1500)]
        )
        assert abs(np.mean(eigs)) < 0.05


class TestRandomStates:
    def test_statevector_valid(self):
        assert is_statevector(random_statevector(3, seed=1).data)

    def test_statevector_deterministic(self):
        a = random_statevector(2, seed=9)
        b = random_statevector(2, seed=9)
        assert np.allclose(a.data, b.data)

    def test_density_matrix_valid(self):
        assert is_density_matrix(random_density_matrix(2, seed=0).data)

    def test_density_matrix_rank(self):
        rho = random_density_matrix(2, rank=1, seed=0)
        eigenvalues = np.sort(rho.eigenvalues())
        assert np.allclose(eigenvalues[:-1], 0.0, atol=1e-10)

    def test_density_matrix_invalid_rank(self):
        with pytest.raises(ValueError):
            random_density_matrix(1, rank=3)

    def test_two_qubit_state(self):
        assert random_pure_two_qubit_state(seed=0).num_qubits == 2

    def test_haar_single_qubit_workload(self):
        states = haar_random_single_qubit_states(10, seed=4)
        assert len(states) == 10
        assert all(s.num_qubits == 1 for s in states)

    def test_haar_workload_z_average_near_zero(self):
        # Haar-random states have <Z> uniformly distributed in [-1, 1].
        states = haar_random_single_qubit_states(2000, seed=11)
        z = np.diag([1.0, -1.0])
        values = [float(np.real(s.expectation_value(z))) for s in states]
        assert np.mean(values) == pytest.approx(0.0, abs=0.05)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            haar_random_single_qubit_states(-1)
