"""Unit tests for partial trace/transpose and qubit permutations."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.quantum.bell import bell_state
from repro.quantum.partial import (
    partial_trace,
    partial_transpose,
    permute_qubits_matrix,
    permute_qubits_vector,
)
from repro.quantum.random import random_density_matrix, random_statevector
from repro.quantum.states import DensityMatrix, Statevector


class TestPartialTrace:
    def test_product_state(self):
        rho = DensityMatrix("01").data
        assert np.allclose(partial_trace(rho, [1]), np.diag([1.0, 0.0]))
        assert np.allclose(partial_trace(rho, [0]), np.diag([0.0, 1.0]))

    def test_bell_state_gives_maximally_mixed(self):
        rho = bell_state("I").to_density_matrix().data
        assert np.allclose(partial_trace(rho, [0]), np.eye(2) / 2)
        assert np.allclose(partial_trace(rho, [1]), np.eye(2) / 2)

    def test_trace_all(self):
        rho = random_density_matrix(2, seed=0).data
        assert partial_trace(rho, [0, 1])[0, 0] == pytest.approx(1.0)

    def test_trace_preserved(self):
        rho = random_density_matrix(3, seed=1).data
        reduced = partial_trace(rho, [2])
        assert np.trace(reduced).real == pytest.approx(1.0)

    def test_consistency_with_kron(self):
        a = random_density_matrix(1, seed=2).data
        b = random_density_matrix(1, seed=3).data
        assert np.allclose(partial_trace(np.kron(a, b), [1]), a)
        assert np.allclose(partial_trace(np.kron(a, b), [0]), b)

    def test_duplicate_indices(self):
        with pytest.raises(DimensionError):
            partial_trace(np.eye(4) / 4, [0, 0])

    def test_out_of_range(self):
        with pytest.raises(DimensionError):
            partial_trace(np.eye(4) / 4, [2])

    def test_non_square(self):
        with pytest.raises(DimensionError):
            partial_trace(np.zeros((2, 4)), [0])


class TestPartialTranspose:
    def test_involution(self):
        rho = random_density_matrix(2, seed=4).data
        assert np.allclose(partial_transpose(partial_transpose(rho, [1]), [1]), rho)

    def test_full_transpose(self):
        rho = random_density_matrix(2, seed=5).data
        assert np.allclose(partial_transpose(rho, [0, 1]), rho.T)

    def test_bell_state_negative_eigenvalue(self):
        rho = bell_state("I").to_density_matrix().data
        eigenvalues = np.linalg.eigvalsh(partial_transpose(rho, [1]))
        assert eigenvalues.min() == pytest.approx(-0.5)

    def test_separable_state_stays_psd(self):
        rho = np.kron(random_density_matrix(1, seed=6).data, random_density_matrix(1, seed=7).data)
        eigenvalues = np.linalg.eigvalsh(partial_transpose(rho, [1]))
        assert eigenvalues.min() >= -1e-10


class TestPermutations:
    def test_vector_swap(self):
        state = Statevector("01").data
        swapped = permute_qubits_vector(state, [1, 0])
        assert np.allclose(swapped, Statevector("10").data)

    def test_vector_identity(self):
        state = random_statevector(3, seed=8).data
        assert np.allclose(permute_qubits_vector(state, [0, 1, 2]), state)

    def test_matrix_swap_consistent_with_vector(self):
        state = random_statevector(2, seed=9)
        rho = state.to_density_matrix().data
        permuted_rho = permute_qubits_matrix(rho, [1, 0])
        permuted_vec = permute_qubits_vector(state.data, [1, 0])
        assert np.allclose(permuted_rho, np.outer(permuted_vec, permuted_vec.conj()))

    def test_incomplete_permutation(self):
        with pytest.raises(DimensionError):
            permute_qubits_vector(np.zeros(4), [0])
