"""Unit tests for Statevector and DensityMatrix."""

import numpy as np
import pytest

from repro.exceptions import DimensionError, StateError
from repro.quantum.gates import CX, H, X, Z
from repro.quantum.states import DensityMatrix, Statevector


class TestStatevectorConstruction:
    def test_from_label(self):
        assert np.allclose(Statevector("10").data, [0, 0, 1, 0])

    def test_from_array(self):
        state = Statevector(np.array([1, 1]) / np.sqrt(2))
        assert state.num_qubits == 1

    def test_copy_constructor(self):
        original = Statevector("0")
        copy = Statevector(original)
        assert copy == original
        assert copy.data is not original.data

    def test_rejects_unnormalised(self):
        with pytest.raises(StateError):
            Statevector(np.array([1.0, 1.0]))

    def test_rejects_bad_dimension(self):
        with pytest.raises(StateError):
            Statevector(np.array([1.0, 0.0, 0.0]))

    def test_zero_state(self):
        assert np.allclose(Statevector.zero_state(3).data, np.eye(8)[0])

    def test_dim_and_len(self):
        state = Statevector.zero_state(2)
        assert state.dim == 4 and len(state) == 4


class TestStatevectorEvolution:
    def test_full_register_unitary(self):
        state = Statevector("00").evolve(np.kron(H, np.eye(2)))
        expected = np.array([1, 0, 1, 0]) / np.sqrt(2)
        assert np.allclose(state.data, expected)

    def test_subsystem_evolution_matches_full(self):
        state = Statevector("00")
        via_subsystem = state.evolve(H, [0])
        via_full = state.evolve(np.kron(H, np.eye(2)))
        assert via_subsystem.equiv(via_full, up_to_global_phase=False)

    def test_bell_state_construction(self):
        state = Statevector("00").evolve(H, [0]).evolve(CX, [0, 1])
        assert np.allclose(state.data, np.array([1, 0, 0, 1]) / np.sqrt(2))

    def test_two_qubit_gate_on_reversed_qubits(self):
        # CX with control qubit 1 and target qubit 0.
        state = Statevector("01").evolve(CX, [1, 0])
        assert np.allclose(state.data, Statevector("11").data)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            Statevector("0").evolve(CX)
        with pytest.raises(DimensionError):
            Statevector("00").evolve(CX, [0])

    def test_tensor(self):
        product = Statevector("1").tensor(Statevector("0"))
        assert np.allclose(product.data, Statevector("10").data)

    def test_equiv_up_to_global_phase(self):
        state = Statevector("0")
        phased = Statevector(np.exp(1j * 0.7) * state.data, validate=False)
        assert state.equiv(phased)
        assert not state.equiv(phased, up_to_global_phase=False)


class TestStatevectorMeasurement:
    def test_probabilities_full(self):
        state = Statevector(np.array([1, 0, 0, 1]) / np.sqrt(2))
        assert np.allclose(state.probabilities(), [0.5, 0, 0, 0.5])

    def test_probabilities_marginal(self):
        state = Statevector(np.array([1, 0, 0, 1]) / np.sqrt(2))
        assert np.allclose(state.probabilities([0]), [0.5, 0.5])

    def test_probabilities_marginal_order(self):
        state = Statevector("01")
        assert np.allclose(state.probabilities([1, 0]), [0, 0, 1, 0])

    def test_expectation_value(self):
        plus = Statevector(np.array([1, 1]) / np.sqrt(2))
        assert plus.expectation_value(X) == pytest.approx(1.0)
        assert plus.expectation_value(Z) == pytest.approx(0.0)

    def test_expectation_value_on_subsystem(self):
        state = Statevector("01")
        assert state.expectation_value(Z, [0]).real == pytest.approx(1.0)
        assert state.expectation_value(Z, [1]).real == pytest.approx(-1.0)

    def test_sample_counts_deterministic_state(self):
        counts = Statevector("10").sample_counts(100, seed=0)
        assert counts == {"10": 100}

    def test_sample_counts_statistics(self):
        plus = Statevector(np.array([1, 1]) / np.sqrt(2))
        counts = plus.sample_counts(10_000, seed=1)
        assert abs(counts["0"] - 5000) < 300

    def test_sample_counts_zero_shots(self):
        assert Statevector("0").sample_counts(0) == {}

    def test_sample_counts_negative_shots(self):
        with pytest.raises(ValueError):
            Statevector("0").sample_counts(-1)


class TestStatevectorConversion:
    def test_to_density_matrix(self):
        rho = Statevector("1").to_density_matrix()
        assert np.allclose(rho.data, np.diag([0, 1]))

    def test_reduced_density_matrix_of_bell_state(self):
        bell = Statevector(np.array([1, 0, 0, 1]) / np.sqrt(2))
        reduced = bell.reduced_density_matrix([0])
        assert np.allclose(reduced.data, np.eye(2) / 2)


class TestDensityMatrix:
    def test_from_statevector(self):
        rho = DensityMatrix(Statevector("0"))
        assert np.allclose(rho.data, np.diag([1, 0]))

    def test_from_label(self):
        assert np.allclose(DensityMatrix("1").data, np.diag([0, 1]))

    def test_rejects_non_psd(self):
        with pytest.raises(StateError):
            DensityMatrix(np.array([[0.5, 0.6], [0.6, 0.5]]))

    def test_rejects_wrong_trace(self):
        with pytest.raises(StateError):
            DensityMatrix(np.diag([0.4, 0.4]))

    def test_maximally_mixed(self):
        rho = DensityMatrix.maximally_mixed(2)
        assert rho.purity() == pytest.approx(0.25)

    def test_purity_pure(self):
        assert DensityMatrix("0").purity() == pytest.approx(1.0)
        assert DensityMatrix("0").is_pure()

    def test_to_statevector_roundtrip(self):
        state = Statevector(np.array([1, 1j]) / np.sqrt(2))
        recovered = state.to_density_matrix().to_statevector()
        assert state.equiv(recovered)

    def test_to_statevector_rejects_mixed(self):
        with pytest.raises(StateError):
            DensityMatrix.maximally_mixed(1).to_statevector()

    def test_evolve_full(self):
        rho = DensityMatrix("0").evolve(X)
        assert np.allclose(rho.data, np.diag([0, 1]))

    def test_evolve_subsystem(self):
        rho = DensityMatrix("00").evolve(X, [1])
        assert np.allclose(rho.data, DensityMatrix("01").data)

    def test_apply_kraus_dephasing(self):
        plus = Statevector(np.array([1, 1]) / np.sqrt(2)).to_density_matrix()
        kraus = [np.sqrt(0.5) * np.eye(2), np.sqrt(0.5) * Z]
        result = plus.apply_kraus(kraus)
        assert np.allclose(result.data, np.eye(2) / 2)

    def test_partial_trace(self):
        bell = Statevector(np.array([1, 0, 0, 1]) / np.sqrt(2)).to_density_matrix()
        assert np.allclose(bell.partial_trace([1]).data, np.eye(2) / 2)

    def test_tensor(self):
        rho = DensityMatrix("0").tensor(DensityMatrix("1"))
        assert np.allclose(rho.data, DensityMatrix("01").data)

    def test_expectation_value(self):
        rho = DensityMatrix.maximally_mixed(1)
        assert rho.expectation_value(Z).real == pytest.approx(0.0)

    def test_sample_counts(self):
        rho = DensityMatrix.maximally_mixed(1)
        counts = rho.sample_counts(2000, seed=3)
        assert abs(counts["0"] - 1000) < 150

    def test_eigenvalues(self):
        rho = DensityMatrix(np.diag([0.25, 0.75]))
        assert np.allclose(rho.eigenvalues(), [0.25, 0.75])
