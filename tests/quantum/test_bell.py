"""Unit tests for Bell states and the NME state family Φ_k."""

import numpy as np
import pytest

from repro.exceptions import StateError
from repro.quantum.bell import (
    bell_basis_states,
    bell_overlaps,
    bell_state,
    k_from_overlap,
    overlap_from_k,
    phi_k_density,
    phi_k_state,
    werner_state,
)
from repro.quantum.measures import state_fidelity


class TestBellStates:
    def test_phi_plus(self):
        assert np.allclose(bell_state("I").data, np.array([1, 0, 0, 1]) / np.sqrt(2))

    def test_all_four_orthonormal(self):
        states = bell_basis_states()
        vectors = [s.data for s in states.values()]
        gram = np.array([[abs(np.vdot(a, b)) for b in vectors] for a in vectors])
        assert np.allclose(gram, np.eye(4), atol=1e-12)

    def test_unknown_label(self):
        with pytest.raises(StateError):
            bell_state("Q")

    def test_phi_x_is_psi_plus(self):
        assert np.allclose(bell_state("X").data, np.array([0, 1, 1, 0]) / np.sqrt(2))


class TestPhiK:
    def test_k_zero_is_product(self):
        assert np.allclose(phi_k_state(0.0).data, [1, 0, 0, 0])

    def test_k_one_is_bell(self):
        assert state_fidelity(phi_k_state(1.0), bell_state("I")) == pytest.approx(1.0)

    def test_normalised(self):
        for k in (0.0, 0.2, 1.0, 3.7):
            assert np.linalg.norm(phi_k_state(k).data) == pytest.approx(1.0)

    def test_negative_k_rejected(self):
        with pytest.raises(StateError):
            phi_k_state(-0.5)

    def test_density(self):
        rho = phi_k_density(0.5)
        assert rho.is_pure()

    def test_amplitude_ratio(self):
        k = 0.3
        vector = phi_k_state(k).data
        assert vector[3] / vector[0] == pytest.approx(k)


class TestOverlapFormulas:
    def test_eq10_endpoints(self):
        assert overlap_from_k(0.0) == pytest.approx(0.5)
        assert overlap_from_k(1.0) == pytest.approx(1.0)

    def test_eq10_generic(self):
        k = 0.4
        assert overlap_from_k(k) == pytest.approx((k + 1) ** 2 / (2 * (k * k + 1)))

    def test_symmetric_in_k_and_inverse_k(self):
        assert overlap_from_k(0.25) == pytest.approx(overlap_from_k(4.0))

    def test_matches_direct_overlap_with_bell_state(self):
        for k in (0.1, 0.5, 0.9):
            direct = abs(np.vdot(bell_state("I").data, phi_k_state(k).data)) ** 2
            assert overlap_from_k(k) == pytest.approx(direct)

    def test_negative_k_rejected(self):
        with pytest.raises(StateError):
            overlap_from_k(-1)

    def test_inverse_roundtrip_lower(self):
        for f in (0.5, 0.6, 0.75, 0.9, 1.0):
            k = k_from_overlap(f, branch="lower")
            assert k <= 1.0 + 1e-12
            assert overlap_from_k(k) == pytest.approx(f)

    def test_inverse_roundtrip_upper(self):
        for f in (0.6, 0.75, 0.9):
            k = k_from_overlap(f, branch="upper")
            assert k >= 1.0
            assert overlap_from_k(k) == pytest.approx(f)

    def test_inverse_upper_separable_is_infinite(self):
        assert k_from_overlap(0.5, branch="upper") == float("inf")

    def test_inverse_out_of_range(self):
        with pytest.raises(StateError):
            k_from_overlap(0.4)
        with pytest.raises(StateError):
            k_from_overlap(1.1)

    def test_inverse_bad_branch(self):
        with pytest.raises(ValueError):
            k_from_overlap(0.8, branch="middle")


class TestBellOverlaps:
    def test_appendix_c_values(self):
        # Eqs. 55-58 of the paper.
        for k in (0.0, 0.3, 0.7, 1.0):
            overlaps = bell_overlaps(phi_k_state(k))
            norm = 2 * (k * k + 1)
            assert overlaps["I"] == pytest.approx((k + 1) ** 2 / norm)
            assert overlaps["Z"] == pytest.approx((k - 1) ** 2 / norm)
            assert overlaps["X"] == pytest.approx(0.0, abs=1e-12)
            assert overlaps["Y"] == pytest.approx(0.0, abs=1e-12)

    def test_overlaps_sum_to_one_for_bell_diagonal(self):
        overlaps = bell_overlaps(werner_state(0.6))
        assert sum(overlaps.values()) == pytest.approx(1.0)

    def test_accepts_density_matrix_and_array(self):
        rho = phi_k_density(0.5)
        assert bell_overlaps(rho) == bell_overlaps(rho.data)

    def test_rejects_wrong_dimension(self):
        with pytest.raises(StateError):
            bell_overlaps(np.eye(2) / 2)


class TestWernerState:
    def test_endpoints(self):
        assert np.allclose(werner_state(0.0).data, np.eye(4) / 4)
        assert state_fidelity(werner_state(1.0), bell_state("I")) == pytest.approx(1.0)

    def test_valid_density(self):
        rho = werner_state(0.5)
        assert np.trace(rho.data).real == pytest.approx(1.0)

    def test_out_of_range(self):
        with pytest.raises(StateError):
            werner_state(1.5)
