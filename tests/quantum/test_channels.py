"""Unit tests for quantum channels."""

import numpy as np
import pytest

from repro.exceptions import ChannelError, DimensionError
from repro.quantum.channels import (
    QuantumChannel,
    amplitude_damping_channel,
    dephasing_channel,
    depolarizing_channel,
    identity_channel,
    measure_and_prepare_channel,
)
from repro.quantum.gates import H, X, Z
from repro.quantum.random import random_density_matrix
from repro.quantum.states import DensityMatrix, Statevector


class TestConstruction:
    def test_requires_kraus(self):
        with pytest.raises(ChannelError):
            QuantumChannel([])

    def test_mismatched_shapes(self):
        with pytest.raises(ChannelError):
            QuantumChannel([np.eye(2), np.eye(4)])

    def test_from_unitary(self):
        channel = QuantumChannel.from_unitary(H)
        assert channel.is_trace_preserving()
        assert channel.num_qubits_in == 1

    def test_dimensions(self):
        channel = identity_channel(2)
        assert channel.dim_in == 4 and channel.dim_out == 4


class TestPredicates:
    def test_identity_properties(self):
        channel = identity_channel(1)
        assert channel.is_trace_preserving()
        assert channel.is_trace_nonincreasing()
        assert channel.is_completely_positive()
        assert channel.is_unital()

    def test_projective_branch_is_trace_nonincreasing(self):
        projector = np.diag([1.0, 0.0]).astype(complex)
        channel = QuantumChannel([projector])
        assert channel.is_trace_nonincreasing()
        assert not channel.is_trace_preserving()

    def test_amplitude_damping_not_unital(self):
        assert not amplitude_damping_channel(0.3).is_unital()
        assert amplitude_damping_channel(0.3).is_trace_preserving()

    def test_depolarizing_tp_and_unital(self):
        channel = depolarizing_channel(0.4)
        assert channel.is_trace_preserving()
        assert channel.is_unital()


class TestStandardChannels:
    def test_depolarizing_action(self):
        rho = DensityMatrix("0")
        out = depolarizing_channel(1.0).apply(rho)
        assert np.allclose(out.data, np.eye(2) / 2)

    def test_depolarizing_partial(self):
        p = 0.3
        rho = DensityMatrix("0")
        out = depolarizing_channel(p).apply(rho)
        expected = (1 - p) * rho.data + p * np.eye(2) / 2
        assert np.allclose(out.data, expected)

    def test_depolarizing_two_qubit(self):
        rho = DensityMatrix("01")
        out = depolarizing_channel(1.0, num_qubits=2).apply(rho)
        assert np.allclose(out.data, np.eye(4) / 4)

    def test_depolarizing_invalid_p(self):
        with pytest.raises(ChannelError):
            depolarizing_channel(1.2)

    def test_dephasing_kills_coherence(self):
        plus = Statevector(np.array([1, 1]) / np.sqrt(2)).to_density_matrix()
        out = dephasing_channel(0.5).apply(plus)
        assert np.allclose(out.data, np.eye(2) / 2)

    def test_dephasing_preserves_populations(self):
        rho = DensityMatrix(np.diag([0.3, 0.7]))
        out = dephasing_channel(0.9).apply(rho)
        assert np.allclose(np.diag(out.data), [0.3, 0.7])

    def test_amplitude_damping_full_decay(self):
        out = amplitude_damping_channel(1.0).apply(DensityMatrix("1"))
        assert np.allclose(out.data, np.diag([1.0, 0.0]))

    def test_measure_and_prepare(self):
        # Measure in Z, prepare the flipped state: |0><1| and |1><0| Kraus.
        channel = measure_and_prepare_channel(
            [np.array([1, 0]), np.array([0, 1])],
            [np.array([0, 1]), np.array([1, 0])],
        )
        out = channel.apply(DensityMatrix("0"))
        assert np.allclose(out.data, np.diag([0.0, 1.0]))

    def test_measure_and_prepare_length_mismatch(self):
        with pytest.raises(ChannelError):
            measure_and_prepare_channel([np.array([1, 0])], [])


class TestRepresentations:
    def test_choi_trace_equals_dim_for_tp(self):
        channel = depolarizing_channel(0.25)
        assert np.trace(channel.choi_matrix()).real == pytest.approx(2.0)

    def test_choi_roundtrip(self):
        channel = amplitude_damping_channel(0.35)
        rebuilt = QuantumChannel.from_choi(channel.choi_matrix(), dim_in=2)
        rho = random_density_matrix(1, seed=0)
        assert np.allclose(channel.apply(rho).data, rebuilt.apply(rho).data)

    def test_from_choi_rejects_non_psd(self):
        with pytest.raises(ChannelError):
            QuantumChannel.from_choi(-np.eye(4), dim_in=2)

    def test_superoperator_application(self):
        channel = dephasing_channel(0.2)
        rho = random_density_matrix(1, seed=1)
        via_superop = (channel.superoperator() @ rho.data.reshape(-1)).reshape(2, 2)
        assert np.allclose(via_superop, channel.apply(rho).data)

    def test_unitary_superoperator(self):
        channel = QuantumChannel.from_unitary(X)
        assert np.allclose(channel.superoperator(), np.kron(X, X.conj()))


class TestAlgebra:
    def test_compose(self):
        x_then_z = QuantumChannel.from_unitary(X).compose(QuantumChannel.from_unitary(Z))
        rho = random_density_matrix(1, seed=2)
        expected = Z @ X @ rho.data @ X.conj().T @ Z.conj().T
        assert np.allclose(x_then_z.apply(rho).data, expected)

    def test_compose_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            identity_channel(1).compose(identity_channel(2))

    def test_tensor(self):
        channel = QuantumChannel.from_unitary(X).tensor(identity_channel(1))
        out = channel.apply(DensityMatrix("00"))
        assert np.allclose(out.data, DensityMatrix("10").data)

    def test_scale(self):
        channel = identity_channel(1).scale(0.5)
        out = channel.apply_matrix(np.eye(2) / 2)
        assert np.trace(out).real == pytest.approx(0.5)

    def test_scale_negative_rejected(self):
        with pytest.raises(ChannelError):
            identity_channel(1).scale(-1.0)

    def test_apply_dimension_check(self):
        with pytest.raises(DimensionError):
            identity_channel(1).apply(DensityMatrix.maximally_mixed(2))
