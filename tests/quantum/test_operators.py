"""Unit tests for the Operator wrapper."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.quantum.gates import CX, H, X, Z
from repro.quantum.operators import Operator
from repro.quantum.states import DensityMatrix, Statevector


class TestConstruction:
    def test_identity(self):
        assert np.allclose(Operator.identity(2).data, np.eye(4))

    def test_from_gate(self):
        assert np.allclose(Operator.from_gate("h").data, H)

    def test_from_gate_with_params(self):
        assert Operator.from_gate("rz", (0.3,)).is_unitary()

    def test_rejects_non_square(self):
        with pytest.raises(DimensionError):
            Operator(np.zeros((2, 3)))

    def test_copy_constructor(self):
        original = Operator(X)
        assert Operator(original) == original


class TestAlgebra:
    def test_compose_order(self):
        # compose: other applied after self → matrix is other @ self.
        hx = Operator(X).compose(Operator(H))
        assert np.allclose(hx.data, H @ X)

    def test_compose_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            Operator(X).compose(Operator(CX))

    def test_tensor(self):
        assert np.allclose(Operator(X).tensor(Operator(Z)).data, np.kron(X, Z))

    def test_adjoint(self):
        s = Operator.from_gate("s")
        assert np.allclose(s.adjoint().data, s.data.conj().T)

    def test_power(self):
        assert np.allclose(Operator(X).power(2).data, np.eye(2))

    def test_expand_to(self):
        expanded = Operator(X).expand_to([1], 2)
        assert np.allclose(expanded.data, np.kron(np.eye(2), X))


class TestPredicatesAndAction:
    def test_is_unitary(self):
        assert Operator(H).is_unitary()
        assert not Operator(np.diag([1.0, 2.0])).is_unitary()

    def test_is_hermitian(self):
        assert Operator(Z).is_hermitian()
        assert not Operator.from_gate("s").is_hermitian()

    def test_apply_statevector(self):
        out = Operator(X).apply(Statevector("0"))
        assert isinstance(out, Statevector)
        assert np.allclose(out.data, [0, 1])

    def test_apply_density_matrix(self):
        out = Operator(X).apply(DensityMatrix("0"))
        assert isinstance(out, DensityMatrix)
        assert np.allclose(out.data, np.diag([0, 1]))

    def test_expectation(self):
        plus = Statevector(np.array([1, 1]) / np.sqrt(2))
        assert Operator(X).expectation(plus).real == pytest.approx(1.0)
        assert Operator(Z).expectation(DensityMatrix.maximally_mixed(1)).real == pytest.approx(0.0)
