"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("figure6", "overhead", "protocols", "resources", "ablations"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_cut_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cut"])

    def test_cut_subcommands(self):
        parser = build_parser()
        run_args = parser.parse_args(["cut", "run", "--width", "2", "--workload", "random"])
        assert run_args.command == "cut" and run_args.cut_command == "run"
        assert run_args.width == 2 and run_args.workload == "random"
        demo_args = parser.parse_args(["cut", "demo", "--qubits", "3"])
        assert demo_args.cut_command == "demo" and demo_args.qubits == 3

    def test_figure6_options(self):
        args = build_parser().parse_args(["figure6", "--states", "5", "--seed", "3", "--csv", "x.csv"])
        assert args.states == 5 and args.seed == 3 and args.csv == "x.csv"


class TestCommands:
    def test_overhead_command(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "gamma_theorem1" in out

    def test_protocols_command(self, capsys):
        assert main(["protocols"]) == 0
        assert "teleportation" in capsys.readouterr().out

    def test_resources_command(self, capsys):
        assert main(["resources"]) == 0
        assert "pairs_proportionality_2a" in capsys.readouterr().out

    def test_figure6_small_run(self, capsys, tmp_path):
        csv_path = tmp_path / "fig6.csv"
        assert main(["figure6", "--states", "3", "--seed", "1", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "mean_error" in capsys.readouterr().out

    def test_cut_demo_command(self, capsys):
        assert main(["cut", "demo", "--qubits", "3", "--shots", "500", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "harada" in out and "teleportation" in out

    def test_cut_run_command(self, capsys):
        assert main(
            ["cut", "run", "--qubits", "4", "--width", "2", "--shots", "500", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "plan:" in out and "decomposition:" in out and "reconstruct:" in out

    def test_cut_run_reports_planning_failure(self, capsys):
        assert main(["cut", "run", "--qubits", "3", "--width", "1", "--shots", "100"]) == 1
        assert "planning failed" in capsys.readouterr().out

    def test_overhead_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "overhead.csv"
        assert main(["overhead", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()


class TestDevicesCommands:
    def _write_spec(self, tmp_path):
        import json

        from repro.devices import example_fleet_spec

        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(example_fleet_spec()))
        return path

    def test_devices_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["devices"])

    def test_devices_list_builtin_example(self, capsys):
        assert main(["devices", "list"]) == 0
        out = capsys.readouterr().out
        assert "qpu_clean" in out and "fidelity" in out and "shots" in out

    def test_devices_list_from_spec_with_split_override(self, capsys, tmp_path):
        path = self._write_spec(tmp_path)
        assert main(["devices", "list", "--devices", str(path), "--split", "uniform"]) == 0
        out = capsys.readouterr().out
        assert "uniform split" in out and "qpu_small" in out

    def test_devices_list_rejects_bad_spec(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{")
        assert main(["devices", "list", "--devices", str(path)]) == 1
        assert "invalid device spec" in capsys.readouterr().out

    def test_cut_run_on_device_fleet(self, capsys, tmp_path):
        path = self._write_spec(tmp_path)
        assert (
            main(
                [
                    "cut", "run", "--qubits", "4", "--width", "2", "--shots", "400",
                    "--seed", "2", "--devices", str(path), "--split", "fidelity",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet(3 devices, fidelity split)" in out and "reconstruct:" in out

    def test_cut_run_split_requires_devices(self, capsys):
        assert main(["cut", "run", "--split", "uniform"]) == 1
        assert "--split requires --devices" in capsys.readouterr().out

    def test_cut_run_missing_spec_fails_cleanly(self, capsys, tmp_path):
        assert main(["cut", "run", "--devices", str(tmp_path / "absent.json")]) == 1
        assert "invalid device spec" in capsys.readouterr().out

    def test_cut_run_reports_fleet_rejecting_term_circuits(self, capsys, tmp_path):
        import json

        path = tmp_path / "tiny.json"
        path.write_text(json.dumps({"devices": [{"name": "tiny", "max_qubits": 1}]}))
        # Planning succeeds (width 2), but the cut gadgets widen the term
        # circuits past every device's limit — a clean message, not a traceback.
        assert main(
            ["cut", "run", "--qubits", "4", "--width", "2", "--shots", "100",
             "--devices", str(path)]
        ) == 1
        assert "fleet execution failed" in capsys.readouterr().out

    def test_ablations_rejects_invalid_noise_levels(self, capsys):
        assert main(["ablations", "--noise-levels", "0.1", "1.5"]) == 1
        assert "invalid --noise-levels" in capsys.readouterr().out


class TestBoundaryValidation:
    @pytest.mark.parametrize("shots", ["0", "-5"])
    def test_cut_run_rejects_non_positive_shots(self, capsys, shots):
        assert main(["cut", "run", "--qubits", "4", "--width", "2", "--shots", shots]) == 1
        assert "--shots must be a positive integer" in capsys.readouterr().out

    def test_cut_demo_rejects_zero_shots(self, capsys):
        assert main(["cut", "demo", "--qubits", "3", "--shots", "0"]) == 1
        assert "--shots must be a positive integer" in capsys.readouterr().out

    def test_ablations_rejects_zero_shots(self, capsys):
        assert main(["ablations", "--shots", "0"]) == 1
        assert "--shots must be a positive integer" in capsys.readouterr().out

    @pytest.mark.parametrize("workers", ["0", "-2"])
    def test_serve_rejects_non_positive_workers(self, capsys, workers):
        assert main(["serve", "--workers", workers]) == 1
        assert "--workers must be a positive integer" in capsys.readouterr().out


class TestDedupFlag:
    def test_cut_run_dedup_reports_instance_accounting(self, capsys):
        assert (
            main(
                [
                    "cut", "run", "--qubits", "4", "--width", "2", "--shots", "800",
                    "--seed", "2", "--dedup",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "unique subcircuit instances served" in out
        assert "reconstruct:" in out

    def test_cut_run_dedup_rejects_devices(self, capsys, tmp_path):
        import json

        from repro.devices import example_fleet_spec

        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(example_fleet_spec()))
        assert (
            main(["cut", "run", "--dedup", "--devices", str(path)]) == 1
        )
        assert "--dedup requires an ideal simulator backend" in capsys.readouterr().out

    def test_cut_run_dedup_falls_back_on_nme(self, capsys):
        assert (
            main(
                [
                    "cut", "run", "--qubits", "4", "--width", "2", "--shots", "400",
                    "--seed", "2", "--overlap", "0.8", "--dedup",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "does not factorise" in out

    def test_cut_run_dedup_with_store_round_trips(self, capsys, tmp_path):
        command = [
            "cut", "run", "--qubits", "4", "--width", "3", "--shots", "500",
            "--seed", "3", "--dedup", "--store", str(tmp_path / "store"),
        ]
        assert main(command) == 0
        first = capsys.readouterr().out
        assert "fresh run" in first
        assert main(command) == 0
        second = capsys.readouterr().out
        assert "cache hit (no re-execution)" in second
        assert first.splitlines()[-1] == second.splitlines()[-1]


class TestServiceCommands:
    def test_parser_accepts_serve_and_jobs(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "9000", "--workers", "3"])
        assert args.command == "serve" and args.port == 9000 and args.workers == 3
        args = parser.parse_args(["jobs", "submit", "--shots", "123", "--wait"])
        assert args.jobs_command == "submit" and args.shots == 123 and args.wait
        args = parser.parse_args(["jobs", "status", "abc123"])
        assert args.job_id == "abc123"

    def test_jobs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs"])

    def test_jobs_against_unreachable_service(self, capsys):
        assert main(["jobs", "list", "--url", "http://127.0.0.1:1"]) == 1
        assert "service error" in capsys.readouterr().out

    @pytest.fixture
    def live_service(self, tmp_path):
        import threading

        from repro.service import RunService, RunStore, make_server

        run_service = RunService(store=RunStore(tmp_path / "store"), workers=2)
        server = make_server(host="127.0.0.1", port=0, service=run_service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        try:
            yield f"http://{host}:{port}"
        finally:
            server.shutdown()
            server.server_close()
            run_service.close()
            thread.join(timeout=10)

    @pytest.mark.integration
    def test_jobs_submit_wait_status_list(self, capsys, live_service):
        submit = [
            "jobs", "submit", "--url", live_service, "--qubits", "4", "--width", "3",
            "--shots", "800", "--seed", "5", "--wait",
        ]
        assert main(submit) == 0
        out = capsys.readouterr().out
        assert "submitted job" in out and "result" in out
        job_id = out.split("submitted job ")[1].split()[0]

        assert main(["jobs", "status", job_id, "--url", live_service]) == 0
        assert "done" in capsys.readouterr().out
        assert main(["jobs", "result", job_id, "--url", live_service]) == 0
        assert "result" in capsys.readouterr().out
        assert main(["jobs", "list", "--url", live_service]) == 0
        assert job_id in capsys.readouterr().out

    def test_jobs_submit_rejects_zero_shots(self, capsys):
        assert main(["jobs", "submit", "--shots", "0", "--url", "http://127.0.0.1:1"]) == 1
        assert "--shots must be a positive integer" in capsys.readouterr().out


class TestStoreFlags:
    def test_cut_run_store_caches_second_invocation(self, capsys, tmp_path):
        command = [
            "cut", "run", "--qubits", "4", "--width", "3", "--shots", "500",
            "--seed", "3", "--store", str(tmp_path / "store"),
        ]
        assert main(command) == 0
        first = capsys.readouterr().out
        assert "fresh run" in first
        assert main(command) == 0
        second = capsys.readouterr().out
        assert "cache hit (no re-execution)" in second
        # The reported estimate must be identical on the cache hit.
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_figure6_store_roundtrip(self, capsys, tmp_path):
        command = ["figure6", "--states", "2", "--seed", "4", "--store", str(tmp_path / "s")]
        assert main(command) == 0
        first = capsys.readouterr().out
        assert main(command) == 0
        captured = capsys.readouterr()
        # Cache provenance is progress, logged to stderr; the table stays on stdout.
        assert "served from store" in captured.err
        # Identical table contents (order included) after the cache round trip.
        assert first.strip() in captured.out
