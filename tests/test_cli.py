"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("figure6", "overhead", "protocols", "resources", "ablations"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_cut_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cut"])

    def test_cut_subcommands(self):
        parser = build_parser()
        run_args = parser.parse_args(["cut", "run", "--width", "2", "--workload", "random"])
        assert run_args.command == "cut" and run_args.cut_command == "run"
        assert run_args.width == 2 and run_args.workload == "random"
        demo_args = parser.parse_args(["cut", "demo", "--qubits", "3"])
        assert demo_args.cut_command == "demo" and demo_args.qubits == 3

    def test_figure6_options(self):
        args = build_parser().parse_args(["figure6", "--states", "5", "--seed", "3", "--csv", "x.csv"])
        assert args.states == 5 and args.seed == 3 and args.csv == "x.csv"


class TestCommands:
    def test_overhead_command(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "gamma_theorem1" in out

    def test_protocols_command(self, capsys):
        assert main(["protocols"]) == 0
        assert "teleportation" in capsys.readouterr().out

    def test_resources_command(self, capsys):
        assert main(["resources"]) == 0
        assert "pairs_proportionality_2a" in capsys.readouterr().out

    def test_figure6_small_run(self, capsys, tmp_path):
        csv_path = tmp_path / "fig6.csv"
        assert main(["figure6", "--states", "3", "--seed", "1", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "mean_error" in capsys.readouterr().out

    def test_cut_demo_command(self, capsys):
        assert main(["cut", "demo", "--qubits", "3", "--shots", "500", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "harada" in out and "teleportation" in out

    def test_cut_run_command(self, capsys):
        assert main(
            ["cut", "run", "--qubits", "4", "--width", "2", "--shots", "500", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "plan:" in out and "decomposition:" in out and "reconstruct:" in out

    def test_cut_run_reports_planning_failure(self, capsys):
        assert main(["cut", "run", "--qubits", "3", "--width", "1", "--shots", "100"]) == 1
        assert "planning failed" in capsys.readouterr().out

    def test_overhead_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "overhead.csv"
        assert main(["overhead", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
