"""Tests for DeviceFleet scheduling, policies, specs and determinism."""

import numpy as np
import pytest

from repro.exceptions import DeviceError
from repro.circuits import Counts, DistributionCache, QuantumCircuit, VectorizedBackend
from repro.devices import (
    CapacityWeightedSplit,
    DeviceFleet,
    FidelityWeightedSplit,
    NoiseModel,
    UniformSplit,
    VirtualDevice,
    WeightedCountsMerge,
    apportion_shots,
    example_fleet_spec,
    fleet_from_spec,
    load_fleet,
    resolve_merge_policy,
    resolve_split_policy,
)
from repro.experiments import ghz_circuit


def _measured_ghz(num_qubits: int = 3) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, num_qubits, name="ghz_m")
    circuit.compose(ghz_circuit(num_qubits), inplace=True)
    for qubit in range(num_qubits):
        circuit.measure(qubit, qubit)
    return circuit


class TestApportionment:
    def test_sums_exactly(self):
        for total in (0, 1, 7, 1000):
            shares = apportion_shots([3.0, 2.0, 1.0], total)
            assert shares.sum() == total

    def test_proportionality(self):
        shares = apportion_shots([4.0, 2.0, 1.0], 700)
        assert shares.tolist() == [400, 200, 100]

    def test_largest_remainder_tiebreak_by_index(self):
        shares = apportion_shots([1.0, 1.0, 1.0], 2)
        assert shares.tolist() == [1, 1, 0]

    def test_rejects_bad_weights(self):
        with pytest.raises(DeviceError):
            apportion_shots([], 10)
        with pytest.raises(DeviceError):
            apportion_shots([0.0, 0.0], 10)
        with pytest.raises(DeviceError):
            apportion_shots([-1.0, 2.0], 10)
        with pytest.raises(DeviceError):
            apportion_shots([1.0], -1)


class TestSplitPolicies:
    def _devices(self):
        return [
            VirtualDevice("a", capacity=4.0, noise=NoiseModel(depolarizing_2q=0.1)),
            VirtualDevice("b", capacity=1.0, noise=NoiseModel()),
        ]

    def test_uniform(self):
        assert UniformSplit().weights(self._devices()).tolist() == [1.0, 1.0]

    def test_capacity(self):
        assert CapacityWeightedSplit().weights(self._devices()).tolist() == [4.0, 1.0]

    def test_fidelity_prefers_clean_device(self):
        weights = FidelityWeightedSplit().weights(self._devices())
        assert weights[1] > weights[0]

    def test_resolution_by_name(self):
        assert isinstance(resolve_split_policy("uniform"), UniformSplit)
        assert isinstance(resolve_split_policy("capacity"), CapacityWeightedSplit)
        assert isinstance(resolve_split_policy("fidelity"), FidelityWeightedSplit)
        assert isinstance(resolve_split_policy(None), UniformSplit)
        with pytest.raises(DeviceError):
            resolve_split_policy("round-robin")

    def test_merge_resolution(self):
        assert isinstance(resolve_merge_policy("weighted"), WeightedCountsMerge)
        assert isinstance(resolve_merge_policy(None), WeightedCountsMerge)
        with pytest.raises(DeviceError):
            resolve_merge_policy("majority")


class TestWeightedCountsMerge:
    def test_default_is_exact_histogram_sum(self):
        merge = WeightedCountsMerge()
        merged = merge.merge(
            [Counts({"00": 30, "11": 20}), Counts({"00": 5, "01": 5})],
            [1.0, 1.0],
            num_clbits=2,
        )
        assert merged == Counts({"00": 35, "11": 20, "01": 5})

    def test_split_weight_merge_preserves_total_shots(self):
        merge = WeightedCountsMerge(use_split_weights=True)
        merged = merge.merge(
            [Counts({"0": 90, "1": 10}), Counts({"0": 10, "1": 90})],
            [3.0, 1.0],
            num_clbits=1,
        )
        assert merged.shots == 200
        # Mixture 0.75*(0.9,0.1) + 0.25*(0.1,0.9) = (0.7, 0.3).
        assert merged["0"] == 140 and merged["1"] == 60

    def test_empty_devices_give_empty_counts(self):
        merged = WeightedCountsMerge().merge([Counts({}, num_clbits=2)], [1.0], num_clbits=2)
        assert merged.shots == 0 and merged.num_clbits == 2


class TestVirtualDevice:
    def test_validation(self):
        with pytest.raises(DeviceError):
            VirtualDevice("")
        with pytest.raises(DeviceError):
            VirtualDevice("a", capacity=0.0)
        with pytest.raises(DeviceError):
            VirtualDevice("a", max_qubits=0)

    def test_accepts_width(self):
        device = VirtualDevice("a", max_qubits=3)
        assert device.accepts(_measured_ghz(3))
        assert not device.accepts(_measured_ghz(4))


class TestFleetScheduling:
    def test_needs_devices_and_unique_names(self):
        with pytest.raises(DeviceError):
            DeviceFleet([])
        with pytest.raises(DeviceError):
            DeviceFleet([VirtualDevice("a"), VirtualDevice("a")])

    def test_plan_shares_respects_policy(self):
        fleet = DeviceFleet(
            [VirtualDevice("big", capacity=3.0), VirtualDevice("small", capacity=1.0)],
            split="capacity",
        )
        assert fleet.plan_shares(_measured_ghz(3), 1000) == {"big": 750, "small": 250}

    def test_width_limited_devices_are_routed_around(self):
        fleet = DeviceFleet(
            [VirtualDevice("wide"), VirtualDevice("narrow", max_qubits=2)],
        )
        shares = fleet.plan_shares(_measured_ghz(3), 100)
        assert shares == {"wide": 100}

    def test_no_eligible_device_raises(self):
        fleet = DeviceFleet([VirtualDevice("tiny", max_qubits=1)])
        with pytest.raises(DeviceError, match="accepts"):
            fleet.plan_shares(_measured_ghz(3), 100)

    def test_run_batch_total_shots_conserved(self):
        fleet = fleet_from_spec(example_fleet_spec())
        circuit = _measured_ghz(3)
        (counts,) = fleet.run_batch([circuit], [1234], seed=0)
        assert counts.shots == 1234

    def test_ideal_fleet_exact_distribution_matches_plain_backend(self):
        fleet = DeviceFleet([VirtualDevice("a"), VirtualDevice("b", capacity=2.0)])
        circuit = _measured_ghz(3)
        (fleet_distribution,) = fleet.exact_distributions([circuit])
        (plain,) = VectorizedBackend(cache=DistributionCache()).exact_distributions([circuit])
        for bitstring, probability in plain.items():
            assert fleet_distribution[bitstring] == pytest.approx(probability)

    def test_mixture_distribution_weights_devices(self):
        clean = VirtualDevice("clean")
        broken = VirtualDevice("broken", noise=NoiseModel(readout_p01=1.0, readout_p10=1.0))
        fleet = DeviceFleet([clean, broken], split="uniform")
        circuit = QuantumCircuit(1, 1, name="zero")
        circuit.measure(0, 0)
        (distribution,) = fleet.exact_distributions([circuit])
        assert distribution["0"] == pytest.approx(0.5)
        assert distribution["1"] == pytest.approx(0.5)


class TestFleetDeterminism:
    def test_bitwise_identical_across_inner_backends(self):
        circuit = _measured_ghz(3)
        runs = []
        for inner in ("serial", "vectorized"):
            fleet = fleet_from_spec(example_fleet_spec(), inner=inner)
            runs.append(fleet.run_batch([circuit, circuit], [800, 400], seed=42))
        assert runs[0] == runs[1]

    def test_repeat_runs_identical(self):
        fleet = fleet_from_spec(example_fleet_spec())
        circuit = _measured_ghz(4)
        first = fleet.run_batch([circuit], [500], seed=9)
        second = fleet.run_batch([circuit], [500], seed=9)
        assert first == second

    def test_per_circuit_streams_independent_of_batch_neighbours(self):
        """Circuit i's counts depend only on its own child stream, not the batch."""
        fleet = fleet_from_spec(example_fleet_spec())
        a = _measured_ghz(3)
        b = _measured_ghz(4)
        counts_pair = fleet.run_batch([a, b], [300, 300], seed=5)
        counts_solo = fleet.run_batch([a], [300], seed=5)
        assert counts_pair[0] == counts_solo[0]


class TestFleetIdentity:
    def test_to_spec_round_trips(self):
        fleet = fleet_from_spec(example_fleet_spec())
        rebuilt = fleet_from_spec(fleet.to_spec())
        assert rebuilt.to_spec() == fleet.to_spec()
        assert [d.name for d in rebuilt.devices] == [d.name for d in fleet.devices]

    def test_fingerprint_stable_and_discriminating(self):
        fleet = fleet_from_spec(example_fleet_spec())
        assert fleet.fingerprint() == fleet_from_spec(example_fleet_spec()).fingerprint()
        import copy

        tweaked_spec = copy.deepcopy(example_fleet_spec())
        tweaked_spec["devices"][1]["noise"]["readout_p10"] = 0.31
        assert fleet_from_spec(tweaked_spec).fingerprint() != fleet.fingerprint()
        resplit = fleet_from_spec({**example_fleet_spec(), "split": "uniform"})
        assert resplit.fingerprint() != fleet.fingerprint()

    def test_fingerprint_independent_of_inner_backend(self):
        serial = fleet_from_spec(example_fleet_spec(), inner="serial")
        vectorized = fleet_from_spec(example_fleet_spec(), inner="vectorized")
        assert serial.fingerprint() == vectorized.fingerprint()


class TestFleetSpecs:
    def test_example_spec_round_trips(self):
        fleet = fleet_from_spec(example_fleet_spec())
        assert [device.name for device in fleet.devices] == [
            "qpu_clean",
            "qpu_mid",
            "qpu_small",
        ]
        assert fleet.split_policy.name == "capacity"

    def test_load_fleet_from_file(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(example_fleet_spec()))
        fleet = load_fleet(path, inner="serial")
        assert len(fleet.devices) == 3
        assert fleet.backends[0].inner.name == "serial"

    def test_missing_file_raises_device_error(self, tmp_path):
        with pytest.raises(DeviceError, match="not found"):
            load_fleet(tmp_path / "absent.json")

    def test_invalid_json_raises_device_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DeviceError, match="not valid JSON"):
            load_fleet(path)

    def test_devices_must_be_a_list(self):
        with pytest.raises(DeviceError, match="must be a JSON array"):
            fleet_from_spec({"devices": 5})
        with pytest.raises(DeviceError, match="must be a JSON array"):
            fleet_from_spec({"devices": {"name": "a"}})

    def test_non_numeric_spec_values_raise_device_error(self):
        with pytest.raises(DeviceError, match="capacity must be a number"):
            fleet_from_spec({"devices": [{"name": "a", "capacity": "fast"}]})
        with pytest.raises(DeviceError, match="max_qubits must be a number"):
            fleet_from_spec({"devices": [{"name": "a", "max_qubits": "big"}]})
        with pytest.raises(DeviceError, match="noise depolarizing_2q must be a number"):
            fleet_from_spec({"devices": [{"name": "a", "noise": {"depolarizing_2q": "high"}}]})

    def test_load_fleet_split_override(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(example_fleet_spec()))
        fleet = load_fleet(path, split="fidelity")
        assert fleet.split_policy.name == "fidelity"

    def test_all_zero_fidelity_devices_fail_with_named_schedule_error(self):
        fleet = DeviceFleet(
            [VirtualDevice("dead", noise=NoiseModel(readout_p01=1.0))],
            split="fidelity",
        )
        with pytest.raises(DeviceError, match="zero weight to every"):
            fleet.plan_shares(_measured_ghz(2), 100)

    def test_unknown_keys_rejected(self):
        with pytest.raises(DeviceError, match="unknown fleet spec keys"):
            fleet_from_spec({"devices": [{"name": "a"}], "sharding": "yes"})
        with pytest.raises(DeviceError, match="unknown keys"):
            fleet_from_spec({"devices": [{"name": "a", "qubits": 3}]})
        with pytest.raises(DeviceError, match="unknown noise keys"):
            fleet_from_spec({"devices": [{"name": "a", "noise": {"t1": 80}}]})

    def test_empty_devices_rejected(self):
        with pytest.raises(DeviceError, match="non-empty 'devices'"):
            fleet_from_spec({"devices": []})

    def test_describe_reports_every_device(self):
        fleet = fleet_from_spec(example_fleet_spec())
        rows = fleet.describe()
        assert len(rows) == 3
        assert rows[0]["name"] == "qpu_clean"
        shares = np.array([row["shot_share"] for row in rows])
        assert shares.sum() == pytest.approx(1.0)
