"""DistributionCache under noisy backends: isolation and LRU regressions.

Noisy and ideal execution share one process-wide cache by default, so the
noise-model fingerprint embedded in every noisy cache key is load-bearing:
a noisy run must never overwrite (poison) the exact ideal distribution a
later noiseless sweep would read back.
"""

import pytest

from repro.circuits import (
    DistributionCache,
    QuantumCircuit,
    VectorizedBackend,
    circuit_fingerprint,
)
from repro.devices import NoiseModel, NoisyDeviceBackend, noisy_cache_key
from repro.experiments import ghz_circuit


def _measured_ghz(num_qubits: int = 3) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, num_qubits, name="ghz_m")
    circuit.compose(ghz_circuit(num_qubits), inplace=True)
    for qubit in range(num_qubits):
        circuit.measure(qubit, qubit)
    return circuit


class TestCacheKeySeparation:
    def test_noisy_key_embeds_noise_fingerprint(self):
        circuit = _measured_ghz()
        noise = NoiseModel(depolarizing_2q=0.1)
        key = noisy_cache_key(circuit, noise)
        assert key.startswith(circuit_fingerprint(circuit))
        assert noise.fingerprint() in key
        assert key != circuit_fingerprint(circuit)

    def test_distinct_noise_models_get_distinct_keys(self):
        circuit = _measured_ghz()
        key_a = noisy_cache_key(circuit, NoiseModel(depolarizing_2q=0.1))
        key_b = noisy_cache_key(circuit, NoiseModel(depolarizing_2q=0.2))
        assert key_a != key_b


class TestNoisyRunsDoNotPoisonSharedCache:
    def test_ideal_distribution_survives_noisy_run(self):
        """Gate-noise entries land under noisy keys; ideal entries stay exact."""
        shared = DistributionCache()
        circuit = _measured_ghz()
        ideal_backend = VectorizedBackend(cache=shared)
        (ideal_before,) = ideal_backend.exact_distributions([circuit])

        noisy_backend = NoisyDeviceBackend(
            NoiseModel(depolarizing_2q=0.3), inner=ideal_backend, cache=shared
        )
        (noisy,) = noisy_backend.exact_distributions([circuit])
        assert noisy != ideal_before

        hits_before = shared.hits
        (ideal_after,) = ideal_backend.exact_distributions([circuit])
        assert ideal_after == ideal_before
        assert shared.hits == hits_before + 1, "ideal lookup must still hit its own entry"

    def test_readout_only_runs_do_not_poison_either(self):
        shared = DistributionCache()
        circuit = _measured_ghz()
        ideal_backend = VectorizedBackend(cache=shared)
        noisy_backend = NoisyDeviceBackend(
            NoiseModel(readout_p10=0.2), inner=ideal_backend, cache=shared
        )
        (noisy,) = noisy_backend.exact_distributions([circuit])
        (ideal,) = ideal_backend.exact_distributions([circuit])
        assert sum(noisy.values()) == pytest.approx(1.0)
        assert ideal == {"000": pytest.approx(0.5), "111": pytest.approx(0.5)}

    def test_two_noise_models_coexist_in_one_cache(self):
        shared = DistributionCache()
        circuit = _measured_ghz()
        backend_a = NoisyDeviceBackend(NoiseModel(depolarizing_2q=0.05), cache=shared)
        backend_b = NoisyDeviceBackend(NoiseModel(depolarizing_2q=0.4), cache=shared)
        (dist_a,) = backend_a.exact_distributions([circuit])
        (dist_b,) = backend_b.exact_distributions([circuit])
        # Both cached; a second read hits without resimulation.
        misses = shared.misses
        (again_a,) = backend_a.exact_distributions([circuit])
        (again_b,) = backend_b.exact_distributions([circuit])
        assert shared.misses == misses
        assert again_a == dist_a and again_b == dist_b
        assert dist_a["000"] > dist_b["000"]


class TestLRUEvictionRegressions:
    def test_eviction_order_is_least_recently_used(self):
        cache = DistributionCache(maxsize=2)
        cache.put("a", {"0": 1.0})
        cache.put("b", {"1": 1.0})
        assert cache.get("a") is not None  # refresh a; b is now LRU
        cache.put("c", {"0": 0.5, "1": 0.5})
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_noisy_entries_evict_like_any_other(self):
        """A tiny shared cache cycles noisy entries without corrupting results."""
        cache = DistributionCache(maxsize=1)
        circuit = _measured_ghz(2)
        backend_a = NoisyDeviceBackend(NoiseModel(depolarizing_2q=0.1), cache=cache)
        backend_b = NoisyDeviceBackend(NoiseModel(depolarizing_2q=0.3), cache=cache)
        (first_a,) = backend_a.exact_distributions([circuit])
        (first_b,) = backend_b.exact_distributions([circuit])  # evicts a's entry
        assert len(cache) == 1
        (second_a,) = backend_a.exact_distributions([circuit])  # recomputed, not b's entry
        assert second_a == first_a
        assert second_a != first_b

    def test_zero_size_cache_disables_memoisation_but_stays_correct(self):
        cache = DistributionCache(maxsize=0)
        circuit = _measured_ghz(2)
        backend = NoisyDeviceBackend(NoiseModel(depolarizing_2q=0.2), cache=cache)
        (first,) = backend.exact_distributions([circuit])
        (second,) = backend.exact_distributions([circuit])
        assert first == second
        assert len(cache) == 0

    def test_overwrite_does_not_grow_cache(self):
        cache = DistributionCache(maxsize=4)
        for _ in range(3):
            cache.put("k", {"0": 1.0})
        assert len(cache) == 1
