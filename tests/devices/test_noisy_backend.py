"""Tests for NoisyDeviceBackend: exactness, transparency, determinism."""

import numpy as np
import pytest

from repro.circuits import (
    DistributionCache,
    QuantumCircuit,
    SerialBackend,
    VectorizedBackend,
)
from repro.devices import NoiseModel, NoisyDeviceBackend
from repro.experiments import ghz_circuit
from repro.quantum.channels import depolarizing_channel
from repro.quantum.states import DensityMatrix


def _measured_ghz(num_qubits: int = 3) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, num_qubits, name="ghz_m")
    circuit.compose(ghz_circuit(num_qubits), inplace=True)
    for qubit in range(num_qubits):
        circuit.measure(qubit, qubit)
    return circuit


class TestTransparency:
    def test_noiseless_model_forwards_verbatim(self):
        circuit = _measured_ghz()
        backend = NoisyDeviceBackend(NoiseModel.ideal(), inner="vectorized")
        plain = VectorizedBackend()
        assert backend.run_batch([circuit], [200], seed=5) == plain.run_batch(
            [circuit], [200], seed=5
        )
        assert backend.exact_distributions([circuit]) == plain.exact_distributions([circuit])

    def test_name_reports_inner_backend(self):
        assert NoisyDeviceBackend(NoiseModel.ideal(), inner="serial").name == "noisy(serial)"
        assert NoisyDeviceBackend(NoiseModel.ideal()).name == "noisy(vectorized)"

    def test_rejects_non_noise_model(self):
        with pytest.raises(TypeError):
            NoisyDeviceBackend({"depolarizing_2q": 0.1})


class TestGateNoiseExactness:
    def test_depolarized_bell_distribution_matches_channel(self):
        """The simulated noisy distribution equals the analytic channel output."""
        p = 0.2
        circuit = QuantumCircuit(2, 2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        backend = NoisyDeviceBackend(
            NoiseModel(depolarizing_2q=p), inner="serial", cache=DistributionCache()
        )
        (distribution,) = backend.exact_distributions([circuit])

        # Analytic reference: H (noiseless, 1q) then CX followed by 2q depolarising.
        h = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
        cx = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        rho = np.zeros((4, 4), dtype=complex)
        rho[0, 0] = 1.0
        full_h = np.kron(h, np.eye(2))
        rho = full_h @ rho @ full_h.conj().T
        rho = cx @ rho @ cx.conj().T
        rho = depolarizing_channel(p, num_qubits=2).apply(DensityMatrix(rho, validate=False)).data
        expected = {format(i, "02b"): float(np.real(rho[i, i])) for i in range(4)}
        for bitstring, probability in expected.items():
            assert distribution.get(bitstring, 0.0) == pytest.approx(probability, abs=1e-12)

    def test_noisy_distribution_normalised(self):
        circuit = _measured_ghz(3)
        backend = NoisyDeviceBackend(
            NoiseModel(depolarizing_1q=0.02, depolarizing_2q=0.05, amplitude_damping=0.01),
            cache=DistributionCache(),
        )
        (distribution,) = backend.exact_distributions([circuit])
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_gate_noise_shrinks_z_parity(self):
        circuit = _measured_ghz(3)
        ideal = NoisyDeviceBackend(NoiseModel.ideal())
        noisy = NoisyDeviceBackend(NoiseModel(depolarizing_2q=0.1), cache=DistributionCache())
        # <ZZ> on the first two GHZ qubits is 1 ideally; depolarising shrinks it.
        ideal_value = ideal.average_z_expectation(circuit, [0, 1])
        noisy_value = noisy.average_z_expectation(circuit, [0, 1])
        assert abs(noisy_value) < abs(ideal_value)

    def test_amplitude_damping_is_non_unital(self):
        """Damping pulls |1> toward |0>, a direction depolarising cannot take."""
        circuit = QuantumCircuit(1, 1, name="excited")
        circuit.x(0)
        circuit.measure(0, 0)
        backend = NoisyDeviceBackend(
            NoiseModel(amplitude_damping=0.3), cache=DistributionCache()
        )
        (distribution,) = backend.exact_distributions([circuit])
        assert distribution["0"] == pytest.approx(0.3)
        assert distribution["1"] == pytest.approx(0.7)

    def test_conditioned_gates_stay_noiseless_on_skipped_branches(self):
        """Noise follows the gate: branches that skip a conditioned gate skip its noise."""
        circuit = QuantumCircuit(2, 2, name="feedforward")
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))  # applied only on the |1> branch
        circuit.measure(1, 1)
        backend = NoisyDeviceBackend(
            NoiseModel(depolarizing_1q=0.4), cache=DistributionCache()
        )
        (distribution,) = backend.exact_distributions([circuit])
        # Branch 0x: qubit 1 untouched after the (noisy) H on qubit 0 -> stays |0>.
        assert distribution.get("01", 0.0) == pytest.approx(0.0, abs=1e-12)


class TestReadoutOnlyPath:
    def test_readout_only_uses_inner_backend_distributions(self):
        circuit = _measured_ghz(2)
        cache = DistributionCache()
        inner = VectorizedBackend(cache=DistributionCache())
        backend = NoisyDeviceBackend(NoiseModel(readout_p10=0.1), inner=inner, cache=cache)
        (distribution,) = backend.exact_distributions([circuit])
        assert sum(distribution.values()) == pytest.approx(1.0)
        # A true |11> reads as 01/10/11/00 with the single-bit flip rates.
        assert distribution["01"] == pytest.approx(0.5 * 0.1 * 0.9)

    def test_zero_shots_return_empty_counts(self):
        circuit = _measured_ghz(2)
        backend = NoisyDeviceBackend(NoiseModel(readout_p10=0.1), cache=DistributionCache())
        (counts,) = backend.run_batch([circuit], [0], seed=3)
        assert counts.shots == 0


class TestDeterminism:
    def test_same_seed_same_counts_across_inner_backends(self):
        circuit = _measured_ghz(3)
        noise = NoiseModel(depolarizing_2q=0.05, readout_p10=0.02)
        runs = []
        for inner in (SerialBackend(), VectorizedBackend(cache=DistributionCache())):
            backend = NoisyDeviceBackend(noise, inner=inner, cache=DistributionCache())
            runs.append(backend.run_batch([circuit, circuit], [500, 300], seed=17))
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        circuit = _measured_ghz(3)
        backend = NoisyDeviceBackend(
            NoiseModel(depolarizing_2q=0.05), cache=DistributionCache()
        )
        (a,) = backend.run_batch([circuit], [500], seed=1)
        (b,) = backend.run_batch([circuit], [500], seed=2)
        assert a != b
