"""Fleet ↔ pipeline integration and the noisy-fleet experiments."""

import pytest

from repro.circuits import resolve_backend
from repro.exceptions import CuttingError, SimulationError
from repro.devices import DeviceFleet, NoiseModel, VirtualDevice, fleet_from_spec, example_fleet_spec
from repro.experiments import (
    fleet_bias_vs_bound,
    ghz_circuit,
    noisy_fleet_robustness,
)
from repro.pipeline import CutPipeline


class TestResolveBackendSeam:
    def test_fleet_passes_through_resolve_backend(self):
        fleet = fleet_from_spec(example_fleet_spec())
        assert resolve_backend(fleet) is fleet

    def test_fleet_rejects_trajectory_method(self):
        fleet = fleet_from_spec(example_fleet_spec())
        with pytest.raises(SimulationError, match="serial"):
            resolve_backend(fleet, method="trajectory")


class TestPipelineOnFleet:
    def test_execution_records_fleet_backend_name(self):
        fleet = fleet_from_spec(example_fleet_spec())
        pipeline = CutPipeline(max_fragment_width=2, backend=fleet)
        result = pipeline.run(ghz_circuit(4), "ZZZZ", shots=1500, seed=3)
        assert result.execution.backend_name.startswith("fleet(3 devices")
        assert result.total_shots == 1500

    def test_ideal_fleet_exact_reconstruction_is_unbiased(self):
        fleet = DeviceFleet([VirtualDevice("a"), VirtualDevice("b", capacity=3.0)])
        pipeline = CutPipeline(max_fragment_width=2, backend=fleet)
        plan = pipeline.plan(ghz_circuit(4))
        decomposition = pipeline.decompose(plan)
        value = pipeline.exact_reconstruction(decomposition, "ZZZZ")
        assert value == pytest.approx(1.0, abs=1e-9)

    def test_noisy_fleet_biases_exact_reconstruction(self):
        fleet = DeviceFleet(
            [VirtualDevice("noisy", noise=NoiseModel(depolarizing_2q=0.2))]
        )
        pipeline = CutPipeline(max_fragment_width=2, backend=fleet)
        plan = pipeline.plan(ghz_circuit(4))
        decomposition = pipeline.decompose(plan)
        value = pipeline.exact_reconstruction(decomposition, "ZZZZ")
        assert abs(value - 1.0) > 0.01


class TestNoisyFleetExperiments:
    def test_bias_vs_bound_holds_on_small_sweep(self):
        table = fleet_bias_vs_bound(noise_levels=(0.0, 0.1), num_states=3, num_devices=2)
        assert table.num_rows == 2
        assert all(table.columns["within_bound"])
        assert table.columns["measured_bias"][1] > table.columns["measured_bias"][0]

    def test_bias_sweep_validates_noise_levels_at_boundary(self):
        with pytest.raises(CuttingError, match="noise_levels entry"):
            fleet_bias_vs_bound(noise_levels=(0.1, 2.0))

    def test_robustness_sweep_shape_and_zero_scale_sanity(self):
        table = noisy_fleet_robustness(
            noise_scales=(0.0, 0.1), split_policies=("uniform",), shots=800
        )
        assert table.num_rows == 4  # 2 workloads x 1 policy x 2 scales
        rows = [table.row(i) for i in range(table.num_rows)]
        for row in rows:
            assert row["error"] is not None
        ghz_rows = [row for row in rows if row["workload"] == "ghz"]
        assert ghz_rows[0]["noise_scale"] == 0.0
        assert ghz_rows[0]["exact"] == pytest.approx(1.0)

    def test_robustness_sweep_validates_scales_at_boundary(self):
        with pytest.raises(CuttingError, match="noise_scales entry"):
            noisy_fleet_robustness(noise_scales=(-0.5,))
