"""Unit tests for NoiseModel: validation, fingerprints, readout confusion."""

import numpy as np
import pytest

from repro.exceptions import DeviceError
from repro.devices import NoiseModel


class TestValidation:
    def test_defaults_are_ideal(self):
        assert NoiseModel().is_noiseless
        assert NoiseModel.ideal().is_noiseless

    @pytest.mark.parametrize(
        "field",
        ["depolarizing_1q", "depolarizing_2q", "amplitude_damping", "readout_p01", "readout_p10"],
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_out_of_range_rates_rejected(self, field, value):
        with pytest.raises(DeviceError, match=field):
            NoiseModel(**{field: value})

    def test_classification_flags(self):
        assert NoiseModel(depolarizing_2q=0.1).has_gate_noise
        assert not NoiseModel(depolarizing_2q=0.1).has_readout_error
        assert NoiseModel(readout_p01=0.1).has_readout_error
        assert not NoiseModel(readout_p01=0.1).has_gate_noise


class TestFingerprint:
    def test_stable_for_equal_models(self):
        assert NoiseModel(depolarizing_2q=0.1).fingerprint() == NoiseModel(
            depolarizing_2q=0.1
        ).fingerprint()

    def test_differs_per_parameter(self):
        fingerprints = {
            NoiseModel().fingerprint(),
            NoiseModel(depolarizing_1q=0.1).fingerprint(),
            NoiseModel(depolarizing_2q=0.1).fingerprint(),
            NoiseModel(amplitude_damping=0.1).fingerprint(),
            NoiseModel(readout_p01=0.1).fingerprint(),
            NoiseModel(readout_p10=0.1).fingerprint(),
        }
        assert len(fingerprints) == 6


class TestFidelityWeight:
    def test_ideal_is_one(self):
        assert NoiseModel().fidelity_weight() == 1.0

    def test_orders_devices_by_noise(self):
        clean = NoiseModel(depolarizing_2q=0.01)
        dirty = NoiseModel(depolarizing_2q=0.1, readout_p10=0.05)
        assert 0.0 < dirty.fidelity_weight() < clean.fidelity_weight() < 1.0


class TestGateNoiseHook:
    def test_ideal_model_returns_none(self):
        from repro.circuits import QuantumCircuit

        circuit = QuantumCircuit(2, 0)
        circuit.h(0)
        assert NoiseModel().gate_noise_hook(circuit.instructions[0]) is None

    def test_kraus_form_a_cptp_channel(self):
        from repro.circuits import QuantumCircuit

        circuit = QuantumCircuit(2, 0)
        circuit.cx(0, 1)
        model = NoiseModel(depolarizing_2q=0.1, amplitude_damping=0.05)
        kraus = model.gate_noise_hook(circuit.instructions[0])
        total = sum(np.asarray(k).conj().T @ np.asarray(k) for k in kraus)
        assert np.allclose(total, np.eye(4), atol=1e-12)

    def test_arity_selects_rate(self):
        from repro.circuits import QuantumCircuit

        circuit = QuantumCircuit(2, 0)
        circuit.h(0)
        circuit.cx(0, 1)
        model = NoiseModel(depolarizing_2q=0.1)  # no 1q noise
        assert model.gate_noise_hook(circuit.instructions[0]) is None
        assert model.gate_noise_hook(circuit.instructions[1]) is not None


class TestReadoutConfusion:
    def test_confusion_matrix_columns_are_distributions(self):
        matrix = NoiseModel(readout_p01=0.1, readout_p10=0.2).confusion_matrix()
        assert np.allclose(matrix.sum(axis=0), [1.0, 1.0])

    def test_no_error_returns_input_unchanged(self):
        distribution = {"01": 0.5, "10": 0.5}
        model = NoiseModel(depolarizing_2q=0.3)  # gate noise only
        assert model.apply_readout_error(distribution) is distribution

    def test_single_bit_flip_probabilities(self):
        model = NoiseModel(readout_p10=0.2)
        confused = model.apply_readout_error({"1": 1.0})
        assert confused["0"] == pytest.approx(0.2)
        assert confused["1"] == pytest.approx(0.8)

    def test_multi_bit_confusion_preserves_normalisation(self):
        model = NoiseModel(readout_p01=0.05, readout_p10=0.15)
        confused = model.apply_readout_error({"010": 0.25, "111": 0.75})
        assert sum(confused.values()) == pytest.approx(1.0)
        # Every 3-bit outcome becomes reachable.
        assert len(confused) == 8

    def test_symmetric_full_flip(self):
        model = NoiseModel(readout_p01=1.0, readout_p10=1.0)
        confused = model.apply_readout_error({"01": 1.0})
        assert confused == pytest.approx({"10": 1.0})
