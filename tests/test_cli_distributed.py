"""CLI tests for distributed round execution (`cut run --execution distributed`)."""

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.xdist_group("forkheavy")

ADAPTIVE_ARGS = [
    "cut",
    "run",
    "--qubits",
    "4",
    "--width",
    "3",
    "--mode",
    "adaptive",
    "--target-error",
    "0.05",
    "--max-shots",
    "4000",
    "--seed",
    "11",
]


class TestParser:
    def test_execution_and_workers_flags(self):
        args = build_parser().parse_args(
            ADAPTIVE_ARGS + ["--execution", "distributed", "--workers", "3"]
        )
        assert args.execution == "distributed"
        assert args.workers == 3

    def test_execution_defaults_to_inprocess(self):
        args = build_parser().parse_args(["cut", "run"])
        assert args.execution == "inprocess"
        assert args.workers is None

    def test_unknown_execution_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cut", "run", "--execution", "sideways"])


class TestValidation:
    def test_distributed_requires_adaptive_mode(self, capsys):
        assert main(["cut", "run", "--execution", "distributed"]) == 1
        assert "requires --mode adaptive" in capsys.readouterr().out

    def test_workers_require_distributed_execution(self, capsys):
        assert main(ADAPTIVE_ARGS + ["--workers", "2"]) == 1
        assert "--workers requires --execution distributed" in capsys.readouterr().out

    def test_workers_must_be_positive(self, capsys):
        assert (
            main(ADAPTIVE_ARGS + ["--execution", "distributed", "--workers", "0"]) == 1
        )
        assert "workers" in capsys.readouterr().out

    def test_distributed_rejects_dedup(self, capsys):
        assert (
            main(ADAPTIVE_ARGS + ["--execution", "distributed", "--dedup"]) == 1
        )
        assert "dedup" in capsys.readouterr().out


class TestCutRunDistributed:
    def test_distributed_run_matches_inprocess_output(self, capsys):
        assert main(ADAPTIVE_ARGS) == 0
        in_process = capsys.readouterr().out

        assert main(ADAPTIVE_ARGS + ["--execution", "distributed", "--workers", "2"]) == 0
        distributed = capsys.readouterr().out

        assert "distributed over 2 workers" in distributed

        def estimate_line(out):
            return next(line for line in out.splitlines() if "reconstruct:" in line)

        assert estimate_line(distributed) == estimate_line(in_process)
