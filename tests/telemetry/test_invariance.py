"""The telemetry hard invariant: tracing/metrics/profiling never change results.

Every stage payload (and therefore every fingerprint) must be bitwise
identical with telemetry fully on (active tracer + profiler + metrics) and
fully off, across every execution path: serial, vectorized, process-pool,
and the distributed adaptive engine.
"""

import pytest

from repro.experiments import ghz_circuit
from repro.pipeline import CutPipeline
from repro.telemetry import tracing
from repro.telemetry.profiling import StageProfiler, activate_profiler
from repro.telemetry.tracing import Tracer

SEED = 20240807


def _run_stages(backend, telemetry_on, **execute_kwargs):
    """One full pipeline pass; returns the three stage payloads."""
    circuit = ghz_circuit(4)
    pipeline = CutPipeline(max_fragment_width=3, backend=backend)

    def go():
        plan_result = pipeline.plan(circuit)
        decomposition = pipeline.decompose(plan_result)
        execution = pipeline.execute(
            decomposition, "ZZZZ", shots=800, seed=SEED, **execute_kwargs
        )
        result = pipeline.reconstruct(execution)
        return (
            plan_result.to_payload(),
            execution.to_payload(),
            result.to_payload(),
        )

    if not telemetry_on:
        return go()
    tracer = Tracer(trace_id="invariance")
    profiler = StageProfiler()
    with tracing.activate(tracer):
        with activate_profiler(profiler):
            payloads = go()
    # Telemetry actually ran: the stages were traced and profiled.
    assert {s.name for s in tracer.spans} >= {"plan", "decompose", "execute", "reconstruct"}
    assert set(profiler.to_payload()["stages"]) >= {"plan", "execute"}
    return payloads


class TestStaticInvariance:
    @pytest.mark.parametrize("backend", ["serial", "vectorized", "process-pool"])
    def test_static_run_is_bitwise_identical_with_telemetry(self, backend):
        off = _run_stages(backend, telemetry_on=False)
        on = _run_stages(backend, telemetry_on=True)
        assert on == off


class TestAdaptiveInvariance:
    def test_adaptive_run_is_bitwise_identical_with_telemetry(self):
        kwargs = {"mode": "adaptive", "target_error": 0.05, "rounds": 4}
        off = _run_stages("vectorized", telemetry_on=False, **kwargs)
        on = _run_stages("vectorized", telemetry_on=True, **kwargs)
        assert on == off


@pytest.mark.integration
@pytest.mark.xdist_group("forkheavy")
class TestDistributedInvariance:
    def test_distributed_round_execution_is_bitwise_identical_with_telemetry(self):
        kwargs = {
            "mode": "adaptive",
            "target_error": 0.05,
            "rounds": 3,
            "execution": "distributed",
            "workers": 2,
        }
        off = _run_stages("serial", telemetry_on=False, **kwargs)
        on = _run_stages("serial", telemetry_on=True, **kwargs)
        assert on == off
