"""Unit tests of the metrics registry and its Prometheus text rendering."""

import threading

import pytest

from repro.exceptions import ReproError
from repro.telemetry.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrements(self, registry):
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(ReproError, match="cannot decrease"):
            counter.inc(-1)

    def test_labeled_counter_tracks_samples_independently(self, registry):
        counter = registry.counter("req_total", "help", labelnames=("tenant",))
        counter.inc(tenant="alice")
        counter.inc(tenant="alice")
        counter.inc(tenant="bob")
        assert counter.value(tenant="alice") == 2
        assert counter.value(tenant="bob") == 1
        assert counter.value(tenant="nobody") == 0

    def test_wrong_labels_raise(self, registry):
        counter = registry.counter("l_total", "help", labelnames=("path",))
        with pytest.raises(ReproError, match="takes labels"):
            counter.inc(status="200")
        with pytest.raises(ReproError, match="takes labels"):
            counter.inc()

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("depth", "help")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 3

    def test_histogram_buckets_count_and_sum(self, registry):
        histogram = registry.histogram("lat", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)
        text = histogram.render()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_histogram_rejects_unsorted_buckets(self, registry):
        with pytest.raises(ReproError, match="sorted"):
            registry.histogram("bad", "help", buckets=(1.0, 0.5))


class TestRegistry:
    def test_registration_is_idempotent_per_name(self, registry):
        first = registry.counter("x_total", "help")
        again = registry.counter("x_total", "other help ignored")
        assert again is first

    def test_type_or_label_mismatch_raises(self, registry):
        registry.counter("y_total", "help")
        with pytest.raises(ReproError, match="already registered"):
            registry.gauge("y_total", "help")
        with pytest.raises(ReproError, match="already registered"):
            registry.counter("y_total", "help", labelnames=("tenant",))

    def test_render_is_sorted_with_help_and_type_headers(self, registry):
        registry.counter("b_total", "B things.").inc()
        registry.gauge("a_depth", "A depth.").set(2)
        text = registry.render()
        assert text.index("a_depth") < text.index("b_total")
        assert "# HELP a_depth A depth." in text
        assert "# TYPE a_depth gauge" in text
        assert "# TYPE b_total counter" in text
        assert text.endswith("\n")

    def test_unlabeled_instruments_render_a_zero_sample(self, registry):
        registry.counter("quiet_total", "Never incremented.")
        assert "quiet_total 0" in registry.render()

    def test_label_values_are_escaped(self, registry):
        counter = registry.counter("esc_total", "help", labelnames=("path",))
        counter.inc(path='a"b\\c\nd')
        assert 'esc_total{path="a\\"b\\\\c\\nd"} 1' in registry.render()

    def test_reset_clears_samples_but_keeps_registrations(self, registry):
        counter = registry.counter("r_total", "help")
        counter.inc(5)
        registry.reset()
        assert counter.value() == 0
        # The module-level handle is still the registered instrument.
        assert registry.counter("r_total", "help") is counter
        counter.inc()
        assert counter.value() == 1

    def test_concurrent_increments_do_not_lose_updates(self, registry):
        counter = registry.counter("race_total", "help")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000


class TestGlobalRegistry:
    def test_library_instruments_are_registered_at_import(self):
        # Importing the instrumented modules registers their instruments.
        import repro.pipeline.pipeline  # noqa: F401
        import repro.qpd.adaptive  # noqa: F401
        import repro.distributed.pool  # noqa: F401
        import repro.service.server  # noqa: F401

        for name in (
            "repro_plan_kappa",
            "repro_adaptive_round_shots",
            "repro_distributed_unit_retries_total",
            "repro_submissions_total",
        ):
            assert REGISTRY.get(name) is not None, name

    def test_isinstance_contract_of_registration_helpers(self):
        scratch = MetricsRegistry()
        assert isinstance(scratch.counter("i_total", "h"), Counter)
        assert isinstance(scratch.gauge("i_depth", "h"), Gauge)
        assert isinstance(scratch.histogram("i_lat", "h"), Histogram)
