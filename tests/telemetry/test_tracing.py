"""Unit tests of the span tracer: parenting, propagation, rendering."""

import json
import threading

from repro.telemetry import tracing
from repro.telemetry.tracing import (
    Span,
    TraceContext,
    Tracer,
    find_orphans,
    render_trace,
)


class TestSpanLifecycle:
    def test_nested_spans_parent_under_the_enclosing_span(self):
        tracer = Tracer(trace_id="t1")
        with tracing.activate(tracer):
            with tracing.span("outer") as outer:
                with tracing.span("inner") as inner:
                    pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id == "t1"
        assert tracer.is_connected()

    def test_span_ids_are_unique_and_ordered(self):
        tracer = Tracer()
        ids = [tracer.start_span(f"s{i}").span_id for i in range(5)]
        assert len(set(ids)) == 5
        assert ids == sorted(ids)

    def test_end_span_is_idempotent(self):
        tracer = Tracer()
        record = tracer.start_span("work")
        tracer.end_span(record)
        first_end = record.end
        tracer.end_span(record)
        assert record.end == first_end
        assert record.duration >= 0.0

    def test_set_merges_attributes_after_the_span_closed(self):
        tracer = Tracer()
        with tracing.activate(tracer):
            with tracing.span("stage", kind="demo") as record:
                pass
        record.set(extra=1)
        assert record.attributes == {"kind": "demo", "extra": 1}

    def test_without_active_tracer_everything_is_a_noop(self):
        assert tracing.current_tracer() is None
        with tracing.span("ignored") as record:
            record.set(anything=True)
        tracing.record_span("ignored", duration=1.0)
        assert tracing.current_context() is None
        assert tracing.current_context_tuple() is None


class TestExplicitPropagation:
    def test_activate_carries_the_context_into_a_thread(self):
        tracer = Tracer(trace_id="t2")
        root = tracer.start_span("submit")
        context = TraceContext("t2", root.span_id)
        seen = {}

        def worker():
            with tracing.activate(tracer, context):
                with tracing.span("job") as record:
                    seen["parent"] = record.parent_id

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tracer.end_span(root)
        assert seen["parent"] == root.span_id
        assert tracer.is_connected()

    def test_record_span_accepts_a_pickled_tuple_parent(self):
        tracer = Tracer(trace_id="t3")
        root = tracer.start_span("execute")
        carried = TraceContext("t3", root.span_id).as_tuple()
        assert carried == ("t3", root.span_id)
        with tracing.activate(tracer):
            tracing.record_span("unit", duration=0.25, parent=carried, worker="w0", retry=0)
        tracer.end_span(root)
        unit = [s for s in tracer.spans if s.name == "unit"][0]
        assert unit.parent_id == root.span_id
        assert abs(unit.duration - 0.25) < 1e-6
        assert unit.attributes == {"worker": "w0", "retry": 0}

    def test_record_span_defaults_to_the_current_context(self):
        tracer = Tracer()
        with tracing.activate(tracer):
            with tracing.span("round") as round_span:
                tracing.record_span("unit", duration=0.01)
        unit = [s for s in tracer.spans if s.name == "unit"][0]
        assert unit.parent_id == round_span.span_id


class TestExport:
    def test_payload_roundtrip_preserves_every_field(self):
        tracer = Tracer(trace_id="t4")
        with tracing.activate(tracer):
            with tracing.span("job", mode="static"):
                with tracing.span("plan"):
                    pass
        payload = tracer.to_payload()
        rebuilt = [Span.from_payload(entry) for entry in payload["spans"]]
        assert [s.to_payload() for s in rebuilt] == payload["spans"]
        assert payload["trace_id"] == "t4"

    def test_export_jsonl_is_one_valid_object_per_span(self):
        tracer = Tracer()
        tracer.end_span(tracer.start_span("a"))
        tracer.end_span(tracer.start_span("b"))
        lines = tracer.export_jsonl().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_find_orphans_flags_missing_parents(self):
        payload = {
            "trace_id": "t",
            "spans": [
                {"span_id": "s1", "parent_id": None, "name": "root", "start": 0.0, "end": 1.0},
                {"span_id": "s2", "parent_id": "gone", "name": "lost", "start": 0.0, "end": 1.0},
            ],
        }
        orphans = find_orphans(payload)
        assert [entry["span_id"] for entry in orphans] == ["s2"]

    def test_render_trace_shows_tree_self_times_and_orphans(self):
        payload = {
            "trace_id": "demo",
            "spans": [
                {
                    "span_id": "s1",
                    "parent_id": None,
                    "name": "job",
                    "start": 0.0,
                    "end": 1.0,
                    "attributes": {"mode": "static"},
                },
                {
                    "span_id": "s2",
                    "parent_id": "s1",
                    "name": "plan",
                    "start": 0.1,
                    "end": 0.4,
                    "attributes": {},
                },
                {
                    "span_id": "s3",
                    "parent_id": "missing",
                    "name": "stray",
                    "start": 0.0,
                    "end": 0.1,
                    "attributes": {},
                },
            ],
        }
        text = render_trace(payload)
        assert "trace demo" in text
        assert "job  wall=1000.0ms self=700.0ms  [mode=static]" in text
        assert "    plan  wall=300.0ms" in text
        assert "orphan spans" in text and "stray" in text
