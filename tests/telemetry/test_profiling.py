"""Unit tests of the opt-in per-stage cProfile capture."""

from repro.telemetry.profiling import (
    StageProfiler,
    activate_profiler,
    current_profiler,
    profile_stage,
    render_profile,
)


def _busy(n=2000):
    return sum(i * i for i in range(n))


class TestStageProfiler:
    def test_stage_capture_produces_a_condensed_payload(self):
        profiler = StageProfiler(top=5)
        with profiler.stage("plan"):
            _busy()
        payload = profiler.to_payload()
        stage = payload["stages"]["plan"]
        assert stage["total_calls"] > 0
        assert stage["total_time"] >= 0.0
        assert 0 < len(stage["top"]) <= 5
        row = stage["top"][0]
        assert set(row) == {"function", "calls", "primitive_calls", "tottime", "cumtime"}
        # Rows are sorted by cumulative time, descending.
        cumtimes = [entry["cumtime"] for entry in stage["top"]]
        assert cumtimes == sorted(cumtimes, reverse=True)

    def test_repeated_stages_accumulate_under_one_key(self):
        profiler = StageProfiler()
        with profiler.stage("round"):
            _busy()
        once = profiler.to_payload()["stages"]["round"]["total_calls"]
        with profiler.stage("round"):
            _busy()
        twice = profiler.to_payload()["stages"]["round"]["total_calls"]
        assert twice > once
        assert list(profiler.to_payload()["stages"]) == ["round"]

    def test_render_matches_render_profile_of_the_payload(self):
        profiler = StageProfiler()
        with profiler.stage("execute"):
            _busy()
        assert profiler.render() == render_profile(profiler.to_payload())
        text = profiler.render(lines_per_stage=2)
        assert text.startswith("stage execute:")
        # Header plus at most two function rows.
        assert len(text.splitlines()) <= 3

    def test_render_profile_of_an_empty_payload_is_empty(self):
        assert render_profile({"stages": {}}) == ""
        assert render_profile({}) == ""


class TestAmbientActivation:
    def test_profile_stage_is_a_noop_without_an_active_profiler(self):
        assert current_profiler() is None
        with profile_stage("ignored"):
            _busy(100)
        assert current_profiler() is None

    def test_activate_routes_profile_stage_to_the_profiler(self):
        profiler = StageProfiler()
        with activate_profiler(profiler):
            assert current_profiler() is profiler
            with profile_stage("stage_a"):
                _busy(100)
        assert current_profiler() is None
        assert "stage_a" in profiler.to_payload()["stages"]

    def test_activating_none_suppresses_an_outer_profiler(self):
        outer = StageProfiler()
        with activate_profiler(outer):
            with activate_profiler(None):
                with profile_stage("hidden"):
                    _busy(100)
        assert outer.to_payload()["stages"] == {}
