"""A fault-injecting simulator backend for resilience tests.

``FaultyBackend`` wraps any real backend and raises on configurable
``run_batch`` calls — the Nth call, a set of calls, or every call from the
Nth on.  It is shared test infrastructure: the distributed suite uses it to
exercise worker retry paths, and the service/scheduler suites use it (via
``JobSpec.build_pipeline`` monkeypatching) to drive jobs into their failure
and re-submission paths.

The call counter is instance state, so each worker process in a distributed
pool counts its *own* calls on its pickled copy — failing a worker's first
call injects one fault per worker, which the coordinator's retry budget
must absorb.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.circuits.backends import resolve_backend
from repro.exceptions import SimulationError


class FaultyBackend:
    """A simulator backend that fails on chosen ``run_batch`` calls.

    Parameters
    ----------
    inner:
        The real backend (name or instance) serving non-failing calls;
        ``None`` selects the serial backend.
    fail_on:
        1-based ``run_batch`` call numbers that raise.
    fail_from:
        When given, every call numbered ``>= fail_from`` raises (combined
        with ``fail_on`` by union).
    """

    def __init__(
        self,
        inner=None,
        fail_on: Iterable[int] = (1,),
        fail_from: int | None = None,
    ) -> None:
        self._inner = resolve_backend(inner)
        self._fail_on = {int(n) for n in fail_on}
        self._fail_from = None if fail_from is None else int(fail_from)
        self.calls = 0
        self.name = f"faulty({self._inner.name})"

    def _should_fail(self) -> bool:
        if self.calls in self._fail_on:
            return True
        return self._fail_from is not None and self.calls >= self._fail_from

    def run_batch(self, circuits, shots, seed=None):
        """Delegate to the inner backend, raising on the configured calls."""
        self.calls += 1
        if self._should_fail():
            raise SimulationError(
                f"injected fault on run_batch call {self.calls} of {self.name}"
            )
        return self._inner.run_batch(circuits, shots, seed=seed)

    def exact_distributions(self, circuits):
        """Delegate exact distributions to the inner backend (never faulted)."""
        return self._inner.exact_distributions(circuits)
