"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_seed_sequence(self):
        sequence = np.random.SeedSequence(7)
        a = as_generator(sequence).random(3)
        b = as_generator(np.random.SeedSequence(7)).random(3)
        assert np.allclose(a, b)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_deterministic(self):
        a = [g.random() for g in spawn_generators(3, 4)]
        b = [g.random() for g in spawn_generators(3, 4)]
        assert np.allclose(a, b)

    def test_children_are_independent(self):
        children = spawn_generators(3, 2)
        assert not np.isclose(children[0].random(), children[1].random())

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_spawn_from_generator(self):
        children = spawn_generators(np.random.default_rng(5), 3)
        assert len(children) == 3
