"""Tests of the shared CLI/tools logging setup."""

import io
import json
import logging

import pytest

from repro.utils.logging import LOG_LEVELS, configure_logging, get_logger


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    """Leave the shared ``repro`` logger as this test found it."""
    logger = logging.getLogger("repro")
    state = (logger.level, list(logger.handlers), logger.propagate)
    yield
    logger.level, logger.handlers[:], logger.propagate = state


class TestConfigureLogging:
    def test_human_format_writes_level_and_logger_name(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        get_logger("cli").info("hello %s", "world")
        line = stream.getvalue()
        assert "INFO" in line and "repro.cli" in line and "hello world" in line

    def test_json_logs_emit_one_object_per_record(self):
        stream = io.StringIO()
        configure_logging(level="debug", json_logs=True, stream=stream)
        get_logger("svc").warning("shots=%d", 7)
        entry = json.loads(stream.getvalue())
        assert entry["level"] == "warning"
        assert entry["logger"] == "repro.svc"
        assert entry["message"] == "shots=7"
        assert "ts" in entry

    def test_level_filters_lower_severities(self):
        stream = io.StringIO()
        configure_logging(level="warning", stream=stream)
        get_logger().info("dropped")
        get_logger().warning("kept")
        assert "dropped" not in stream.getvalue()
        assert "kept" in stream.getvalue()

    def test_reconfiguration_reuses_the_handler(self):
        logger = configure_logging(level="info", stream=io.StringIO())
        count = len(logger.handlers)
        rebound = io.StringIO()
        configure_logging(level="debug", json_logs=True, stream=rebound)
        assert len(logger.handlers) == count
        get_logger().debug("after rebind")
        assert "after rebind" in rebound.getvalue()

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="loud")
        assert "info" in LOG_LEVELS


class TestGetLogger:
    def test_names_are_rooted_under_repro(self):
        assert get_logger().name == "repro"
        assert get_logger("cli").name == "repro.cli"
        assert get_logger("repro.service").name == "repro.service"
