"""Unit tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.quantum.gates import CX, H, X
from repro.utils.linalg import (
    basis_state,
    bra,
    dagger,
    expand_operator,
    is_density_matrix,
    is_hermitian,
    is_power_of_two,
    is_projector,
    is_psd,
    is_statevector,
    is_unitary,
    ket,
    kron_all,
    normalize_vector,
    num_qubits_from_dim,
    outer,
    projector,
)


class TestDagger:
    def test_matrix(self):
        matrix = np.array([[1, 2j], [3, 4]], dtype=complex)
        assert np.allclose(dagger(matrix), matrix.conj().T)

    def test_vector(self):
        vector = np.array([1j, 2], dtype=complex)
        assert np.allclose(dagger(vector), vector.conj())

    def test_involution(self):
        matrix = np.array([[1, 2j], [3, 4]], dtype=complex)
        assert np.allclose(dagger(dagger(matrix)), matrix)


class TestKets:
    def test_ket_from_string(self):
        assert np.allclose(ket("0"), [1, 0])
        assert np.allclose(ket("1"), [0, 1])
        assert np.allclose(ket("10"), [0, 0, 1, 0])

    def test_ket_from_integer(self):
        assert np.allclose(ket(2, num_qubits=2), [0, 0, 1, 0])

    def test_ket_integer_requires_num_qubits(self):
        with pytest.raises(ValueError):
            ket(1)

    def test_ket_invalid_characters(self):
        with pytest.raises(ValueError):
            ket("01a")

    def test_ket_index_out_of_range(self):
        with pytest.raises(DimensionError):
            ket(4, num_qubits=2)

    def test_bra_is_conjugate(self):
        assert np.allclose(bra("1"), ket("1").conj())

    def test_basis_state(self):
        assert np.allclose(basis_state(1, 3), [0, 1, 0])

    def test_basis_state_out_of_range(self):
        with pytest.raises(DimensionError):
            basis_state(3, 3)


class TestOuterAndProjector:
    def test_outer_default_projector(self):
        plus = np.array([1, 1]) / np.sqrt(2)
        assert np.allclose(outer(plus), np.full((2, 2), 0.5))

    def test_outer_two_vectors(self):
        result = outer(ket("0"), ket("1"))
        expected = np.zeros((2, 2))
        expected[0, 1] = 1
        assert np.allclose(result, expected)

    def test_projector_idempotent(self):
        p = projector(np.array([1, 1j]) / np.sqrt(2))
        assert np.allclose(p @ p, p)


class TestKronAll:
    def test_empty(self):
        assert np.allclose(kron_all([]), [[1]])

    def test_single(self):
        assert np.allclose(kron_all([X]), X)

    def test_order_matters(self):
        a = np.diag([1, 2])
        b = np.diag([3, 4])
        assert np.allclose(kron_all([a, b]), np.kron(a, b))
        assert not np.allclose(kron_all([a, b]), np.kron(b, a))


class TestPredicates:
    def test_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(8)
        assert not is_power_of_two(0)
        assert not is_power_of_two(6)

    def test_num_qubits_from_dim(self):
        assert num_qubits_from_dim(8) == 3

    def test_num_qubits_from_dim_invalid(self):
        with pytest.raises(DimensionError):
            num_qubits_from_dim(6)

    def test_is_hermitian(self):
        assert is_hermitian(np.array([[1, 1j], [-1j, 2]]))
        assert not is_hermitian(np.array([[1, 1], [2, 1]]))

    def test_is_unitary(self):
        assert is_unitary(H)
        assert is_unitary(CX)
        assert not is_unitary(np.array([[1, 0], [0, 2]]))

    def test_is_psd(self):
        assert is_psd(np.diag([0.0, 1.0]))
        assert not is_psd(np.diag([-0.1, 1.0]))

    def test_is_projector(self):
        assert is_projector(np.diag([1.0, 0.0]))
        assert not is_projector(np.diag([0.5, 0.5]))

    def test_is_statevector(self):
        assert is_statevector(np.array([1, 0], dtype=complex))
        assert not is_statevector(np.array([1, 1], dtype=complex))
        assert not is_statevector(np.array([1, 0, 0], dtype=complex))

    def test_is_density_matrix(self):
        assert is_density_matrix(np.diag([0.5, 0.5]))
        assert not is_density_matrix(np.diag([0.5, 0.6]))
        assert not is_density_matrix(np.array([[0.5, 0.6], [0.6, 0.5]]))


class TestNormalize:
    def test_normalize(self):
        assert np.allclose(np.linalg.norm(normalize_vector([3, 4])), 1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(DimensionError):
            normalize_vector([0, 0])


class TestExpandOperator:
    def test_single_qubit_on_first(self):
        expanded = expand_operator(X, [0], 2)
        assert np.allclose(expanded, np.kron(X, np.eye(2)))

    def test_single_qubit_on_second(self):
        expanded = expand_operator(X, [1], 2)
        assert np.allclose(expanded, np.kron(np.eye(2), X))

    def test_two_qubit_ordering(self):
        # CX with control on qubit 1 and target on qubit 0 flips qubit 0 when qubit 1 is 1.
        expanded = expand_operator(CX, [1, 0], 2)
        state = ket("01")  # qubit0=0, qubit1=1
        assert np.allclose(expanded @ state, ket("11"))

    def test_identity_embedding_is_identity(self):
        assert np.allclose(expand_operator(np.eye(2), [2], 3), np.eye(8))

    def test_wrong_shape_raises(self):
        with pytest.raises(DimensionError):
            expand_operator(X, [0, 1], 2)

    def test_duplicate_qubits_raises(self):
        with pytest.raises(DimensionError):
            expand_operator(CX, [0, 0], 2)

    def test_out_of_range_raises(self):
        with pytest.raises(DimensionError):
            expand_operator(X, [3], 2)

    def test_matches_kron_composition(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        expanded = expand_operator(matrix, [1], 3)
        expected = np.kron(np.kron(np.eye(2), matrix), np.eye(2))
        assert np.allclose(expanded, expected)
