"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.utils.validation import (
    check_integer_in_range,
    check_probability,
    check_square_matrix,
    check_vector,
)


class TestCheckSquareMatrix:
    def test_accepts_square(self):
        result = check_square_matrix([[1, 0], [0, 1]])
        assert result.dtype == complex

    def test_rejects_rectangular(self):
        with pytest.raises(DimensionError):
            check_square_matrix(np.zeros((2, 3)))

    def test_rejects_vector(self):
        with pytest.raises(DimensionError):
            check_square_matrix(np.zeros(4))


class TestCheckVector:
    def test_accepts_vector(self):
        assert check_vector([1, 2, 3]).shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(DimensionError):
            check_vector(np.zeros((2, 2)))


class TestCheckProbability:
    def test_accepts_valid(self):
        assert check_probability(0.5) == 0.5

    def test_clamps_tiny_negative(self):
        assert check_probability(-1e-12) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability(1.5)
        with pytest.raises(ValueError):
            check_probability(-0.1)


class TestCheckIntegerInRange:
    def test_accepts_in_range(self):
        assert check_integer_in_range(3, low=0, high=5) == 3

    def test_rejects_below(self):
        with pytest.raises(ValueError):
            check_integer_in_range(-1, low=0)

    def test_rejects_above(self):
        with pytest.raises(ValueError):
            check_integer_in_range(10, high=5)

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError):
            check_integer_in_range(1.5)

    def test_accepts_numpy_integer(self):
        assert check_integer_in_range(np.int64(4), low=0) == 4
