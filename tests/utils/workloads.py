"""Shared cut workloads for the distributed and adaptive test suites.

The distributed suite repeatedly needs the raw ingredients of an adaptive
estimation — the measured term-circuit batch, the selected classical bits
and the QPD coefficients — without going through the full pipeline.  This
module builds them once, the same way ``estimate_cut_expectation`` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cutting import CutLocation, NMEWireCut
from repro.cutting.cutter import build_cut_circuits
from repro.cutting.executor import _as_pauli, _measured_term_circuit
from repro.experiments import ghz_circuit


@dataclass(frozen=True)
class CutWorkload:
    """The executable ingredients of one single-cut adaptive estimation."""

    measured_circuits: list
    selected_clbits: list
    coefficients: list
    labels: list


def ghz_cut_workload(num_qubits: int = 3, overlap: float = 0.8) -> CutWorkload:
    """Build the measured batch of a GHZ(n) circuit cut once at qubit 1.

    Returns the exact batch ``estimate_cut_expectation`` would execute, so
    engine-level distributed tests exercise the real term structure (sign
    bits, unmeasured identity terms and all).
    """
    circuit = ghz_circuit(num_qubits)
    location = CutLocation(qubit=1, position=2)
    protocol = NMEWireCut.from_overlap(overlap)
    pauli = _as_pauli("Z" * num_qubits, num_qubits)
    term_circuits = build_cut_circuits(circuit, location, protocol)
    measured_circuits = []
    selected_clbits = []
    coefficients = []
    labels = []
    for term_circuit in term_circuits:
        measured, observable_clbits = _measured_term_circuit(term_circuit, pauli)
        measured_circuits.append(measured)
        selected_clbits.append(list(observable_clbits) + list(term_circuit.sign_clbits))
        coefficients.append(term_circuit.coefficient)
        labels.append(term_circuit.term.label)
    return CutWorkload(measured_circuits, selected_clbits, coefficients, labels)
