"""Unit tests for gate cutting (ZZ rotations and CZ)."""

import numpy as np
import pytest

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import exact_expectation
from repro.cutting.gate_cutting import (
    CZGateCut,
    ZZGateCut,
    build_gate_cut_circuits,
    estimate_gate_cut_expectation,
)
from repro.qpd.superop import apply_superoperator
from repro.quantum.paulis import PauliString
from repro.quantum.random import random_density_matrix


class TestZZGateCut:
    @pytest.mark.parametrize("theta", [0.0, 0.2, np.pi / 4, np.pi / 2, 1.3])
    def test_reconstructs_target_channel(self, theta):
        protocol = ZZGateCut(theta)
        target = protocol.target_unitary()
        total = sum(t.coefficient * t.superoperator() for t in protocol.terms)
        rho = random_density_matrix(2, seed=1).data
        assert np.allclose(
            apply_superoperator(total, rho), target @ rho @ target.conj().T, atol=1e-9
        )

    @pytest.mark.parametrize("theta", [0.0, 0.3, np.pi / 4, 1.0])
    def test_kappa_formula(self, theta):
        protocol = ZZGateCut(theta)
        assert protocol.kappa == pytest.approx(protocol.theoretical_overhead())
        assert protocol.theoretical_overhead() == pytest.approx(1 + 2 * abs(np.sin(2 * theta)))

    def test_theta_zero_is_trivial(self):
        protocol = ZZGateCut(0.0)
        assert protocol.kappa == pytest.approx(1.0)

    def test_coefficients_sum_to_one(self):
        protocol = ZZGateCut(0.9)
        assert sum(t.coefficient for t in protocol.terms) == pytest.approx(1.0)

    def test_cross_terms_have_sign_bits(self):
        protocol = ZZGateCut(np.pi / 4)
        cross = [t for t in protocol.terms if t.num_gadget_clbits == 1]
        assert len(cross) == 4
        assert all(t.sign_clbits == (0,) for t in cross)


class TestCZGateCut:
    def test_reconstructs_cz_channel(self):
        protocol = CZGateCut()
        cz = np.diag([1, 1, 1, -1]).astype(complex)
        total = sum(t.coefficient * t.superoperator() for t in protocol.terms)
        rho = random_density_matrix(2, seed=2).data
        assert np.allclose(apply_superoperator(total, rho), cz @ rho @ cz, atol=1e-9)

    def test_kappa_is_three(self):
        assert CZGateCut().kappa == pytest.approx(3.0)

    def test_six_terms(self):
        assert len(CZGateCut().terms) == 6


class TestGateCutCircuits:
    def _circuit(self) -> QuantumCircuit:
        circuit = QuantumCircuit(2, 0, name="two_qubit")
        circuit.ry(0.6, 0)
        circuit.ry(1.1, 1)
        circuit.cz(0, 1)
        circuit.h(0)
        return circuit

    def test_one_circuit_per_term(self):
        circuits = build_gate_cut_circuits(self._circuit(), 2, CZGateCut())
        assert len(circuits) == 6

    def test_gate_replaced(self):
        circuits = build_gate_cut_circuits(self._circuit(), 2, CZGateCut())
        for term_circuit in circuits:
            assert "cz" not in term_circuit.circuit.count_ops()

    def test_qubit_count_unchanged(self):
        circuits = build_gate_cut_circuits(self._circuit(), 2, CZGateCut())
        assert all(c.circuit.num_qubits == 2 for c in circuits)

    def test_index_out_of_range(self):
        with pytest.raises(CuttingError):
            build_gate_cut_circuits(self._circuit(), 10, CZGateCut())

    def test_requires_two_qubit_gate(self):
        with pytest.raises(CuttingError):
            build_gate_cut_circuits(self._circuit(), 0, CZGateCut())

    def test_exact_estimate_matches_uncut(self):
        circuit = self._circuit()
        exact = exact_expectation(circuit, PauliString("ZZ"))
        result = estimate_gate_cut_expectation(
            circuit, 2, CZGateCut(), "ZZ", shots=60_000, seed=0
        )
        assert result.exact_value == pytest.approx(exact)
        assert result.value == pytest.approx(exact, abs=0.06)

    def test_rzz_gate_cut(self):
        theta = 0.8
        circuit = QuantumCircuit(2, 0)
        circuit.h(0).h(1).rzz(theta, 0, 1)
        exact = exact_expectation(circuit, PauliString("XX"))
        # rzz(θ) = exp(-iθ/2 Z⊗Z), so the matching protocol is ZZGateCut(-θ/2).
        result = estimate_gate_cut_expectation(
            circuit, 2, ZZGateCut(-theta / 2), "XX", shots=60_000, seed=1
        )
        assert result.value == pytest.approx(exact, abs=0.06)

    def test_observable_mismatch(self):
        with pytest.raises(CuttingError):
            estimate_gate_cut_expectation(self._circuit(), 2, CZGateCut(), "Z", shots=10)

    def test_shot_accounting(self):
        result = estimate_gate_cut_expectation(
            self._circuit(), 2, CZGateCut(), "ZZ", shots=500, seed=2
        )
        assert sum(result.shots_per_term) == 500
        assert result.kappa == pytest.approx(3.0)
