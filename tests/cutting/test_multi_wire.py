"""Unit tests for cutting several wires of one circuit."""

import pytest

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import exact_expectation
from repro.cutting.cutter import CutLocation
from repro.cutting.multi_wire import (
    build_multi_cut_circuits,
    estimate_multi_cut_expectation,
    independent_cuts_decomposition,
)
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.standard_cut import HaradaWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.quantum.paulis import PauliString


def _three_qubit_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3, 0, name="chain")
    circuit.ry(0.7, 0)
    circuit.cx(0, 1)
    circuit.ry(0.4, 1)
    circuit.cx(1, 2)
    circuit.rz(0.9, 2)
    return circuit


class TestBuildMultiCut:
    def test_term_count_is_product(self):
        circuits = build_multi_cut_circuits(
            _three_qubit_circuit(),
            [CutLocation(0, 1), CutLocation(1, 3)],
            [HaradaWireCut(), HaradaWireCut()],
        )
        assert len(circuits) == 9

    def test_coefficient_products(self):
        circuits = build_multi_cut_circuits(
            _three_qubit_circuit(),
            [CutLocation(0, 1), CutLocation(1, 3)],
            [HaradaWireCut(), NMEWireCut(0.5)],
        )
        total_kappa = sum(abs(c.coefficient) for c in circuits)
        assert total_kappa == pytest.approx(HaradaWireCut().kappa * NMEWireCut(0.5).kappa)

    def test_length_mismatch(self):
        with pytest.raises(CuttingError):
            build_multi_cut_circuits(
                _three_qubit_circuit(), [CutLocation(0, 1)], [HaradaWireCut(), HaradaWireCut()]
            )

    def test_duplicate_locations(self):
        with pytest.raises(CuttingError):
            build_multi_cut_circuits(
                _three_qubit_circuit(),
                [CutLocation(0, 1), CutLocation(0, 1)],
                [HaradaWireCut(), HaradaWireCut()],
            )

    def test_empty_locations(self):
        with pytest.raises(CuttingError):
            build_multi_cut_circuits(_three_qubit_circuit(), [], [])

    def test_qubit_map_tracks_both_cuts(self):
        circuits = build_multi_cut_circuits(
            _three_qubit_circuit(),
            [CutLocation(0, 1), CutLocation(1, 3)],
            [HaradaWireCut(), HaradaWireCut()],
        )
        for term_circuit in circuits:
            # Both cut wires moved onto fresh receiver qubits.
            assert term_circuit.qubit_map[0] >= 3
            assert term_circuit.qubit_map[1] >= 3
            assert term_circuit.qubit_map[2] == 2


class TestEstimateMultiCut:
    def test_exact_reconstruction_two_cuts(self):
        circuit = _three_qubit_circuit()
        observable = PauliString("ZZZ")
        exact = exact_expectation(circuit, observable)
        result = estimate_multi_cut_expectation(
            circuit,
            [CutLocation(0, 1), CutLocation(1, 3)],
            [TeleportationWireCut(), TeleportationWireCut()],
            observable,
            shots=30_000,
            seed=0,
        )
        # Teleportation cuts have κ=1, so even moderate budgets are accurate.
        assert result.value == pytest.approx(exact, abs=0.05)
        assert result.kappa == pytest.approx(1.0)

    def test_kappa_product_and_shot_accounting(self):
        circuit = _three_qubit_circuit()
        result = estimate_multi_cut_expectation(
            circuit,
            [CutLocation(0, 1), CutLocation(1, 3)],
            [HaradaWireCut(), NMEWireCut(0.8)],
            PauliString("ZZZ"),
            shots=2000,
            seed=1,
        )
        assert result.kappa == pytest.approx(3.0 * NMEWireCut(0.8).kappa)
        assert sum(result.shots_per_term) == 2000

    def test_finite_shot_estimate_reasonable(self):
        circuit = _three_qubit_circuit()
        observable = PauliString("IZZ")
        exact = exact_expectation(circuit, observable)
        result = estimate_multi_cut_expectation(
            circuit,
            [CutLocation(1, 3)],
            [NMEWireCut(0.9)],
            observable,
            shots=20_000,
            seed=2,
        )
        assert result.value == pytest.approx(exact, abs=0.08)

    def test_observable_size_check(self):
        with pytest.raises(CuttingError):
            estimate_multi_cut_expectation(
                _three_qubit_circuit(),
                [CutLocation(0, 1)],
                [HaradaWireCut()],
                PauliString("Z"),
                shots=10,
            )


class TestIndependentDecomposition:
    def test_kappa_product(self):
        decomposition = independent_cuts_decomposition([HaradaWireCut(), HaradaWireCut()])
        assert decomposition.kappa == pytest.approx(9.0)

    def test_identity_on_two_qubits(self):
        decomposition = independent_cuts_decomposition([HaradaWireCut(), NMEWireCut(0.7)])
        assert decomposition.matches_identity()

    def test_exponential_growth(self):
        protocols = [HaradaWireCut()] * 3
        decomposition = independent_cuts_decomposition(protocols)
        assert decomposition.kappa == pytest.approx(27.0)
        assert len(decomposition) == 27

    def test_requires_protocols(self):
        with pytest.raises(CuttingError):
            independent_cuts_decomposition([])


class TestMultiCutBackends:
    def test_backends_agree_bitwise(self):
        from repro.experiments import ghz_circuit

        circuit = ghz_circuit(4)
        locations = [CutLocation(1, 2), CutLocation(2, 3)]
        protocols = [HaradaWireCut(), HaradaWireCut()]
        results = [
            estimate_multi_cut_expectation(
                circuit, locations, protocols, "ZZZZ", shots=2000, seed=17, backend=backend
            )
            for backend in ("serial", "vectorized")
        ]
        assert results[0].value == results[1].value
        assert results[0].shots_per_term == results[1].shots_per_term

    def test_same_wire_two_positions_supported(self):
        circuit = QuantumCircuit(3)
        circuit.ry(0.9, 0)
        circuit.cx(0, 1)
        circuit.cx(0, 2)
        locations = [CutLocation(0, 1), CutLocation(0, 2)]
        result = estimate_multi_cut_expectation(
            circuit,
            locations,
            [HaradaWireCut(), HaradaWireCut()],
            "ZZZ",
            shots=40_000,
            seed=23,
            backend="vectorized",
        )
        assert result.exact_value == pytest.approx(result.value, abs=0.25)
