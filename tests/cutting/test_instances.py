"""Unit tests for the subcircuit-instance dedup layer (gadget splitting,
instance enumeration, memoized evaluation and chain contraction)."""

import numpy as np
import pytest

from repro.exceptions import CuttingError
from repro.circuits.backends import DistributionCache, VectorizedBackend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import exact_expectation
from repro.cutting import (
    InstanceStats,
    build_instance_table,
    execute_instances,
    execute_instances_adaptive,
    instance_support_reason,
    plan_from_locations,
    plan_from_positions,
    split_wire_cut_term,
    supports_instance_dedup,
)
from repro.cutting.cutter import CutLocation
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.peng_cut import PengWireCut
from repro.cutting.standard_cut import HaradaWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.devices import NoiseModel, NoisyDeviceBackend
from repro.experiments import ghz_circuit
from repro.qpd import AdaptiveConfig, combine_term_estimates
from repro.quantum.paulis import PauliString


def chain_circuit(num_qubits: int) -> QuantumCircuit:
    """Entangling chain with per-wire rotations: one crossing wire per slice."""
    circuit = QuantumCircuit(num_qubits, name=f"chain{num_qubits}")
    circuit.gate("h", 0)
    for qubit in range(num_qubits - 1):
        circuit.gate("rz", qubit, (0.3 + 0.1 * qubit,))
        circuit.gate("cx", (qubit, qubit + 1))
        circuit.gate("rx", qubit + 1, (0.5 + 0.05 * qubit,))
    return circuit


def _chain_table(num_qubits=5, positions=(4, 7), observable=None, protocol=None):
    circuit = chain_circuit(num_qubits)
    plan = plan_from_positions(circuit, positions)
    protocols = [protocol or HaradaWireCut()] * plan.num_cuts
    observable = observable or "Z" * num_qubits
    return circuit, plan, build_instance_table(circuit, plan, protocols, observable)


class TestSplitGadget:
    def test_harada_terms_all_split_with_one_message_bit(self):
        for term in HaradaWireCut().terms:
            gadget = split_wire_cut_term(term)
            assert gadget is not None
            assert gadget.num_message_bits == 1
            assert all(inst.qubits == (1,) for inst in gadget.receiver_instructions)

    def test_peng_terms_all_split_without_message_bits(self):
        for term in PengWireCut().terms:
            gadget = split_wire_cut_term(term)
            assert gadget is not None
            assert gadget.num_message_bits == 0

    def test_nme_teleport_terms_do_not_split(self):
        # The entangled-pair terms prepare |phi_k> across the cut, so their
        # gadgets cannot factorise into sender/receiver halves.
        unsplittable = [
            term for term in NMEWireCut(0.5).terms if split_wire_cut_term(term) is None
        ]
        assert [term.label for term in unsplittable] == [
            "teleport-U1(H)",
            "teleport-U2(SH)",
        ]

    def test_teleport_terms_do_not_split(self):
        assert all(
            split_wire_cut_term(t) is None for t in TeleportationWireCut().terms
        )


class TestSupportReason:
    def test_full_slice_harada_plan_is_supported(self):
        circuit = chain_circuit(4)
        plan = plan_from_positions(circuit, (4,))
        assert instance_support_reason(circuit, plan, [HaradaWireCut()]) is None
        assert supports_instance_dedup(circuit, plan, [HaradaWireCut()])

    def test_no_cuts(self):
        from repro.cutting.cut_finding import MultiCutPlan

        circuit = chain_circuit(3)
        full = plan_from_positions(circuit, (4,))
        empty = MultiCutPlan(
            positions=(), locations=(), fragments=full.fragments, sampling_overhead=1.0
        )
        assert "no cuts" in instance_support_reason(circuit, empty, [])

    def test_protocol_count_mismatch(self):
        circuit = chain_circuit(4)
        plan = plan_from_positions(circuit, (4,))
        reason = instance_support_reason(circuit, plan, [])
        assert "protocols" in reason

    def test_classical_bits_in_base_circuit(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0).cx(0, 1)
        circuit.measure(0, 0)
        plan = plan_from_locations(circuit, (CutLocation(0, 1),))
        reason = instance_support_reason(circuit, plan, [HaradaWireCut()])
        assert "classical bits" in reason

    def test_end_of_circuit_cut_is_not_full_slice(self):
        circuit = chain_circuit(3)
        plan = plan_from_locations(circuit, (CutLocation(0, len(circuit)),))
        reason = instance_support_reason(circuit, plan, [HaradaWireCut()])
        assert reason is not None

    def test_unsplittable_protocol_names_the_gadget(self):
        circuit = chain_circuit(4)
        plan = plan_from_positions(circuit, (4,))
        reason = instance_support_reason(circuit, plan, [NMEWireCut(0.5)])
        assert "gadget" in reason and "nme" in reason

    def test_build_instance_table_raises_with_reason(self):
        circuit = chain_circuit(4)
        plan = plan_from_positions(circuit, (4,))
        with pytest.raises(CuttingError, match="gadget"):
            build_instance_table(circuit, plan, [NMEWireCut(0.5)], "ZZZZ")


class TestEnumeration:
    def test_chain_counts(self):
        _, plan, table = _chain_table()
        assert plan.num_cuts == 2
        assert table.num_fragments == 3
        assert table.num_terms == 9
        # Harada: 3 terms x 1 message bit -> 6 in-configs, 3 out-configs.
        # frag0: 3 out; frag1: 6 in x 3 out = 18; frag2: 6 in.
        assert table.num_instances == 27
        # Per term the chain materializes 1 + 2 + 2 instances -> 9 * 5.
        assert table.num_references == 45
        stats = table.evaluate("serial")
        assert stats.dedup_ratio == pytest.approx(45 / 27)

    def test_instances_are_narrow(self):
        _, plan, table = _chain_table()
        widths = {instance.circuit.num_qubits for instance in table.instances}
        # Fragments span at most 2 wires plus the Harada ancilla.
        assert max(widths) <= 3

    def test_identical_fragments_shared_across_terms(self):
        # Every middle-fragment instance is referenced by all 3 choices of the
        # *other* cut's term, so each unique instance serves multiple terms.
        _, plan, table = _chain_table()
        references_per_instance = table.num_references / table.num_instances
        assert references_per_instance > 1.0

    def test_stats_payload_round_trip(self):
        _, _, table = _chain_table()
        stats = table.evaluate("serial")
        rebuilt = InstanceStats.from_payload(stats.to_payload())
        assert rebuilt == stats
        assert rebuilt.cache_hits == stats.num_references - stats.num_instances


class TestEvaluation:
    def test_memoized_matches_materialized_bitwise(self):
        _, _, table = _chain_table(observable="ZZZZI")
        table.evaluate("serial")
        for assignment in table.term_assignments():
            memoized = table.term_probability_plus(assignment)
            materialized = table.materialized_term_probability_plus(assignment, "serial")
            assert memoized == materialized

    def test_contraction_matches_summation_and_uncut_value(self):
        circuit, _, table = _chain_table(observable="ZZZZI")
        table.evaluate("vectorized")
        contracted = table.contract_exact_value()
        summed = table.summed_exact_value()
        truth = float(exact_expectation(circuit, PauliString("ZZZZI").to_matrix()))
        assert contracted == pytest.approx(summed, abs=1e-9)
        assert contracted == pytest.approx(truth, abs=1e-9)

    def test_peng_protocol_contracts_to_uncut_value(self):
        circuit, _, table = _chain_table(
            positions=(4,), observable="ZZIII", protocol=PengWireCut()
        )
        table.evaluate("serial")
        truth = float(exact_expectation(circuit, PauliString("ZZIII").to_matrix()))
        assert table.contract_exact_value() == pytest.approx(truth, abs=1e-9)

    def test_cross_backend_bitwise_identity(self):
        values = {}
        for backend in ("serial", "vectorized", "process-pool"):
            _, _, table = _chain_table(num_qubits=4, positions=(4,), observable="ZZZI")
            table.evaluate(backend)
            values[backend] = (
                table.contract_exact_value(),
                tuple(table.term_probability_plus(a) for a in table.term_assignments()),
            )
        assert values["vectorized"] == values["serial"]
        assert values["process-pool"] == values["serial"]

    def test_evaluate_is_idempotent(self):
        _, _, table = _chain_table()
        first = table.evaluate("serial")
        second = table.evaluate("serial")
        assert second == first


class TestCacheAccounting:
    def test_fresh_cache_counts_all_misses(self):
        _, _, table = _chain_table()
        backend = VectorizedBackend(cache=DistributionCache())
        stats = table.evaluate(backend)
        assert stats.distribution_cache_misses == table.num_instances
        assert stats.distribution_cache_hits == 0

    def test_warm_cache_counts_all_hits(self):
        cache = DistributionCache()
        _, _, table = _chain_table()
        table.evaluate(VectorizedBackend(cache=cache))
        _, _, rebuilt = _chain_table()
        stats = rebuilt.evaluate(VectorizedBackend(cache=cache))
        assert stats.distribution_cache_hits == rebuilt.num_instances
        assert stats.distribution_cache_misses == 0

    def test_noisy_device_fingerprints_do_not_poison_instance_entries(self):
        # A noisy device sharing the LRU keys its distributions by the noise
        # fingerprint, so instance evaluation must miss them and recompute
        # ideal distributions -- values bitwise equal to a fresh cache.
        shared = DistributionCache()
        _, _, reference = _chain_table()
        reference.evaluate(VectorizedBackend(cache=DistributionCache()))

        _, _, table = _chain_table()
        noisy = NoisyDeviceBackend(
            NoiseModel(depolarizing_2q=0.2),
            inner=VectorizedBackend(cache=shared),
            cache=shared,
        )
        # Populate the shared LRU with *noisy* distributions of the very same
        # instance circuits.
        circuits = [instance.circuit for instance in table.instances]
        noisy.run_batch(circuits, [64] * len(circuits), seed=3)
        stats = table.evaluate(VectorizedBackend(cache=shared))
        assert stats.distribution_cache_misses == table.num_instances
        for assignment in table.term_assignments():
            assert table.term_probability_plus(assignment) == (
                reference.term_probability_plus(assignment)
            )


class TestExecuteInstances:
    def test_static_execution_is_seed_reproducible(self):
        _, _, table = _chain_table(observable="ZZZZI")
        first, shots_first, stats = execute_instances(table, 2000, seed=11)
        _, _, rebuilt = _chain_table(observable="ZZZZI")
        second, shots_second, _ = execute_instances(rebuilt, 2000, seed=11)
        assert [e.mean for e in first] == [e.mean for e in second]
        assert shots_first == shots_second
        assert sum(shots_first) <= 2000
        assert stats.num_terms == len(first) == 9

    def test_static_estimate_converges_to_exact(self):
        circuit, _, table = _chain_table(observable="ZZZZI")
        estimates, _, _ = execute_instances(table, 400_000, seed=5, backend="vectorized")
        estimate = combine_term_estimates(estimates)
        truth = float(exact_expectation(circuit, PauliString("ZZZZI").to_matrix()))
        assert estimate.value == pytest.approx(truth, abs=0.05)

    def test_adaptive_execution_respects_budget(self):
        _, _, table = _chain_table(observable="ZZZZI")
        config = AdaptiveConfig(target_error=0.01, max_shots=4000, max_rounds=6)
        estimates, shots, result, stats = execute_instances_adaptive(
            table, config, seed=13, backend="vectorized"
        )
        assert len(estimates) == table.num_terms
        assert sum(shots) <= 4000
        assert len(result.rounds) <= 6
        assert stats.num_instances == table.num_instances

    def test_estimates_are_bitwise_identical_across_backends(self):
        means = {}
        for backend in ("serial", "vectorized"):
            _, _, table = _chain_table(observable="ZZZZI")
            estimates, _, _ = execute_instances(table, 3000, seed=17, backend=backend)
            means[backend] = tuple(e.mean for e in estimates)
        assert means["serial"] == means["vectorized"]


class TestGhzPlannerPlans:
    def test_planner_produced_ghz_plan_is_supported(self):
        # The GHZ chain is the paper's running example; planner slices are
        # full slices, so store-backed GHZ jobs dedup out of the box.
        circuit = ghz_circuit(4)
        plan = plan_from_positions(circuit, (2, 3))
        assert supports_instance_dedup(circuit, plan, [HaradaWireCut()] * 2)
        table = build_instance_table(circuit, plan, [HaradaWireCut()] * 2, "ZZZZ")
        table.evaluate("vectorized")
        assert table.contract_exact_value() == pytest.approx(1.0, abs=1e-9)
