"""Cross-backend determinism of the cut executor.

The backend contract (see :mod:`repro.circuits.backends`) promises that the
same seed produces the *same* :class:`CutExpectationResult` from every
backend.  These tests pin that guarantee end-to-end through
:func:`estimate_cut_expectation` and the sampling-model builders.
"""

import numpy as np
import pytest

from repro.circuits import DistributionCache, ProcessPoolBackend, VectorizedBackend
from repro.circuits.circuit import QuantumCircuit
from repro.cutting.cutter import CutLocation
from repro.cutting.executor import (
    build_sampling_model,
    build_sampling_models,
    estimate_cut_expectation,
)
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.peng_cut import PengWireCut
from repro.cutting.standard_cut import HaradaWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.quantum.random import random_statevector

# Fork-heavy suite (process-pool backends): keep on one xdist worker
# under ``pytest -n auto --dist loadgroup``.
pytestmark = pytest.mark.xdist_group("forkheavy")

PROTOCOLS = [HaradaWireCut(), PengWireCut(), NMEWireCut(0.5), TeleportationWireCut()]


def _state_circuit(seed: int) -> QuantumCircuit:
    state = random_statevector(1, seed=seed)
    circuit = QuantumCircuit(1, 0)
    circuit.initialize(state.data, 0)
    return circuit


def _assert_identical(a, b):
    assert a.value == b.value
    assert a.standard_error == b.standard_error
    assert a.total_shots == b.total_shots
    assert a.shots_per_term == b.shots_per_term
    assert a.protocol_name == b.protocol_name
    for term_a, term_b in zip(a.term_estimates, b.term_estimates):
        assert term_a.mean == term_b.mean
        assert term_a.shots == term_b.shots


class TestSerialVectorizedIdentical:
    @pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda p: p.name)
    def test_estimate_identical(self, protocol):
        circuit = _state_circuit(17)
        location = CutLocation(0, len(circuit))
        serial = estimate_cut_expectation(
            circuit, location, protocol, "Z", shots=1500, seed=42, backend="serial"
        )
        vectorized = estimate_cut_expectation(
            circuit,
            location,
            protocol,
            "Z",
            shots=1500,
            seed=42,
            backend=VectorizedBackend(cache=DistributionCache()),
        )
        _assert_identical(serial, vectorized)

    @pytest.mark.parametrize("observable", ["X", "Y", "Z"])
    def test_observables_identical(self, observable):
        circuit = _state_circuit(23)
        location = CutLocation(0, len(circuit))
        serial = estimate_cut_expectation(
            circuit, location, NMEWireCut(0.8), observable, shots=900, seed=5, backend="serial"
        )
        vectorized = estimate_cut_expectation(
            circuit,
            location,
            NMEWireCut(0.8),
            observable,
            shots=900,
            seed=5,
            backend=VectorizedBackend(cache=DistributionCache()),
        )
        _assert_identical(serial, vectorized)

    def test_budget_smaller_than_terms_identical(self):
        """Tiny budgets (< number of QPD terms) survive the round trip too."""
        circuit = _state_circuit(29)
        location = CutLocation(0, len(circuit))
        for shots in (1, 2):
            serial = estimate_cut_expectation(
                circuit, location, PengWireCut(), "Z", shots=shots, seed=8, backend="serial"
            )
            vectorized = estimate_cut_expectation(
                circuit,
                location,
                PengWireCut(),
                "Z",
                shots=shots,
                seed=8,
                backend=VectorizedBackend(cache=DistributionCache()),
            )
            assert sum(serial.shots_per_term) == shots
            _assert_identical(serial, vectorized)

    def test_sampling_models_identical(self):
        circuits = [_state_circuit(seed) for seed in range(6)]
        locations = [CutLocation(0, len(c)) for c in circuits]
        serial = build_sampling_models(circuits, locations, NMEWireCut(0.6), "Z", backend="serial")
        vectorized = build_sampling_models(
            circuits,
            locations,
            NMEWireCut(0.6),
            "Z",
            backend=VectorizedBackend(cache=DistributionCache()),
        )
        for model_s, model_v in zip(serial, vectorized):
            assert model_s.exact_value == model_v.exact_value
            for term_s, term_v in zip(model_s.terms, model_v.terms):
                assert term_s.probability_plus == term_v.probability_plus


@pytest.mark.integration
class TestProcessPoolAgreement:
    """Process-pool execution agrees with the in-process backends."""

    @pytest.mark.slow
    def test_run_batch_agrees_with_serial(self):
        circuit = _state_circuit(31)
        location = CutLocation(0, len(circuit))
        pool = estimate_cut_expectation(
            circuit,
            location,
            HaradaWireCut(),
            "Z",
            shots=600,
            seed=13,
            backend=ProcessPoolBackend(max_workers=2, chunk_size=1),
        )
        serial = estimate_cut_expectation(
            circuit, location, HaradaWireCut(), "Z", shots=600, seed=13, backend="serial"
        )
        # The per-circuit stream contract makes even the pool exact, but the
        # required guarantee is statistical agreement within the error bars.
        _assert_identical(pool, serial)
        assert abs(pool.value - pool.exact_value) < 5 * max(pool.standard_error, 0.05)

    def test_sampling_models_statistical_agreement(self):
        circuits = [_state_circuit(seed) for seed in (41, 43)]
        locations = [CutLocation(0, len(c)) for c in circuits]
        pool_models = build_sampling_models(
            circuits,
            locations,
            NMEWireCut(0.9),
            "Z",
            backend=ProcessPoolBackend(max_workers=2, chunk_size=4),
        )
        for model in pool_models:
            estimate = model.estimate(40_000, seed=3)
            assert estimate.value == pytest.approx(model.exact_value, abs=0.05)

    def test_estimate_sweep_matches_pointwise_statistics(self):
        circuit = _state_circuit(47)
        model = build_sampling_model(
            circuit, CutLocation(0, len(circuit)), HaradaWireCut(), "Z", backend="vectorized"
        )
        values, errors = model.estimate_sweep((500, 2000, 50_000), seed=9)
        assert values.shape == (3,) and errors.shape == (3,)
        assert values[-1] == pytest.approx(model.exact_value, abs=0.1)
        assert np.all(errors >= 0)
