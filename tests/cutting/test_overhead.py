"""Unit tests for the overhead formulas (Theorem 1 / Corollary 1 and baselines)."""

import numpy as np
import pytest

from repro.exceptions import CuttingError
from repro.cutting.overhead import (
    expected_pairs_per_shot,
    harada_overhead,
    k_for_target_overhead,
    multi_wire_independent_overhead,
    multi_wire_joint_overhead,
    nme_overhead,
    optimal_overhead,
    optimal_overhead_for_state,
    overhead_reduction_factor,
    overlap_for_target_overhead,
    pairs_proportionality_constant,
    peng_overhead,
    shots_multiplier,
    teleportation_overhead,
)
from repro.quantum.bell import k_from_overlap, overlap_from_k, phi_k_state, werner_state


class TestTheorem1:
    def test_endpoints(self):
        assert optimal_overhead(0.5) == pytest.approx(3.0)
        assert optimal_overhead(1.0) == pytest.approx(1.0)

    def test_formula(self):
        assert optimal_overhead(0.8) == pytest.approx(2 / 0.8 - 1)

    def test_monotone_decreasing(self):
        values = [optimal_overhead(f) for f in np.linspace(0.5, 1.0, 20)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_out_of_range(self):
        with pytest.raises(CuttingError):
            optimal_overhead(0.4)
        with pytest.raises(CuttingError):
            optimal_overhead(1.2)

    def test_for_explicit_state(self):
        assert optimal_overhead_for_state(phi_k_state(0.5)) == pytest.approx(
            nme_overhead(0.5)
        )
        assert optimal_overhead_for_state(werner_state(1.0)) == pytest.approx(1.0)


class TestCorollary1:
    def test_endpoints(self):
        assert nme_overhead(0.0) == pytest.approx(3.0)
        assert nme_overhead(1.0) == pytest.approx(1.0)

    def test_formula(self):
        k = 0.37
        assert nme_overhead(k) == pytest.approx(4 * (k * k + 1) / (k + 1) ** 2 - 1)

    def test_consistent_with_theorem1(self):
        for k in (0.0, 0.2, 0.5, 0.8, 1.0, 2.0):
            assert nme_overhead(k) == pytest.approx(optimal_overhead(overlap_from_k(k)))

    def test_symmetric_in_k_inverse(self):
        assert nme_overhead(0.25) == pytest.approx(nme_overhead(4.0))

    def test_negative_k(self):
        with pytest.raises(CuttingError):
            nme_overhead(-0.5)


class TestBaselines:
    def test_constants(self):
        assert harada_overhead() == 3.0
        assert peng_overhead() == 4.0
        assert teleportation_overhead() == 1.0

    def test_shots_multiplier(self):
        assert shots_multiplier(3.0) == pytest.approx(9.0)
        with pytest.raises(CuttingError):
            shots_multiplier(0.5)

    def test_reduction_factor(self):
        assert overhead_reduction_factor(1.0) == pytest.approx(9.0)
        assert overhead_reduction_factor(0.0) == pytest.approx(1.0)


class TestInverses:
    def test_k_for_target_overhead_roundtrip(self):
        for kappa in (1.0, 1.5, 2.0, 3.0):
            assert nme_overhead(k_for_target_overhead(kappa)) == pytest.approx(kappa)

    def test_k_for_target_out_of_range(self):
        with pytest.raises(CuttingError):
            k_for_target_overhead(3.5)
        with pytest.raises(CuttingError):
            k_for_target_overhead(0.9)

    def test_overlap_for_target_overhead(self):
        assert overlap_for_target_overhead(3.0) == pytest.approx(0.5)
        assert overlap_for_target_overhead(1.0) == pytest.approx(1.0)
        with pytest.raises(CuttingError):
            overlap_for_target_overhead(0.5)
        with pytest.raises(CuttingError):
            overlap_for_target_overhead(5.0)


class TestResourceAccounting:
    def test_pairs_proportionality_is_inverse_overlap(self):
        for k in (0.0, 0.3, 0.8, 1.0):
            assert pairs_proportionality_constant(k) == pytest.approx(1.0 / overlap_from_k(k))

    def test_pairs_per_shot_bounds(self):
        for k in (0.0, 0.5, 1.0):
            assert 0.0 < expected_pairs_per_shot(k) <= 1.0

    def test_pairs_per_shot_maximal_entanglement(self):
        assert expected_pairs_per_shot(1.0) == pytest.approx(1.0)

    def test_pairs_proportionality_negative_k(self):
        with pytest.raises(CuttingError):
            pairs_proportionality_constant(-1.0)


class TestMultiWire:
    def test_joint_vs_independent(self):
        for n in (1, 2, 3, 4):
            joint = multi_wire_joint_overhead(n)
            independent = multi_wire_independent_overhead(n)
            assert joint <= independent

    def test_single_wire_equal(self):
        assert multi_wire_joint_overhead(1) == multi_wire_independent_overhead(1) == 3.0

    def test_formulas(self):
        assert multi_wire_joint_overhead(3) == 15.0
        assert multi_wire_independent_overhead(3) == 27.0
        assert multi_wire_independent_overhead(2, single_wire_kappa=1.5) == pytest.approx(2.25)

    def test_invalid_count(self):
        with pytest.raises(CuttingError):
            multi_wire_joint_overhead(0)
        with pytest.raises(CuttingError):
            multi_wire_independent_overhead(0)

    def test_inverse_consistency_with_bell(self):
        assert k_from_overlap(overlap_for_target_overhead(2.0)) == pytest.approx(
            k_for_target_overhead(2.0)
        )
