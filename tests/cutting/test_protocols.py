"""Unit tests for the wire-cut protocol classes (channel-level properties).

Covers HaradaWireCut (Eq. 20), PengWireCut, NMEWireCut (Theorem 2) and
TeleportationWireCut: coefficients, κ, exact identity reconstruction and the
structural metadata the cutter relies on.
"""

import numpy as np
import pytest

from repro.exceptions import CuttingError
from repro.cutting.base import WireCutProtocol, WireCutTerm, superoperator_from_map
from repro.cutting.nme_cut import NMEWireCut, nme_coefficients
from repro.cutting.peng_cut import PengWireCut
from repro.cutting.standard_cut import HaradaWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.quantum.bell import k_from_overlap, overlap_from_k
from repro.quantum.channels import QuantumChannel
from repro.quantum.random import random_density_matrix

ALL_PROTOCOLS = [
    HaradaWireCut(),
    PengWireCut(),
    TeleportationWireCut(),
    NMEWireCut(0.0),
    NMEWireCut(0.3),
    NMEWireCut(0.5),
    NMEWireCut(0.8),
    NMEWireCut(1.0),
    NMEWireCut(2.0),
]


class TestAllProtocolsShareInvariants:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: f"{p.name}-{getattr(p, 'k', '')}")
    def test_reconstructs_identity_channel(self, protocol):
        assert protocol.decomposition().matches_identity()

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: f"{p.name}-{getattr(p, 'k', '')}")
    def test_coefficients_sum_to_one(self, protocol):
        assert protocol.decomposition().coefficient_sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: f"{p.name}-{getattr(p, 'k', '')}")
    def test_kappa_matches_theory(self, protocol):
        assert protocol.kappa == pytest.approx(protocol.theoretical_overhead())

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: f"{p.name}-{getattr(p, 'k', '')}")
    def test_verify_passes(self, protocol):
        protocol.verify()

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: f"{p.name}-{getattr(p, 'k', '')}")
    def test_exact_action_preserves_states(self, protocol):
        rho = random_density_matrix(1, seed=13).data
        assert np.allclose(protocol.decomposition().apply_exact(rho), rho)

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: f"{p.name}-{getattr(p, 'k', '')}")
    def test_terms_cached(self, protocol):
        assert protocol.terms is protocol.terms


class TestHarada:
    def test_three_terms(self):
        assert len(HaradaWireCut().terms) == 3

    def test_kappa_three(self):
        assert HaradaWireCut().kappa == pytest.approx(3.0)

    def test_negative_term_is_flip(self):
        negative = [t for t in HaradaWireCut().terms if t.coefficient < 0]
        assert len(negative) == 1
        assert negative[0].metadata.get("flip") is True

    def test_term_channels_are_trace_preserving(self):
        for term in HaradaWireCut().terms:
            assert term.channel.is_trace_preserving()

    def test_no_entanglement_consumed(self):
        assert not any(t.consumes_entangled_pair for t in HaradaWireCut().terms)

    def test_single_clbit_gadgets(self):
        assert all(t.num_gadget_clbits == 1 for t in HaradaWireCut().terms)


class TestPeng:
    def test_eight_terms(self):
        assert len(PengWireCut().terms) == 8

    def test_kappa_four(self):
        assert PengWireCut().kappa == pytest.approx(4.0)

    def test_coefficients_are_half(self):
        assert all(abs(t.coefficient) == pytest.approx(0.5) for t in PengWireCut().terms)

    def test_identity_observable_terms_have_no_sign_bits(self):
        for term in PengWireCut().terms:
            if term.metadata["observable"] == "I":
                assert term.sign_clbits == ()
            else:
                assert term.sign_clbits == (0,)

    def test_no_entanglement_consumed(self):
        assert not any(t.consumes_entangled_pair for t in PengWireCut().terms)


class TestTeleportationCut:
    def test_single_term(self):
        protocol = TeleportationWireCut()
        assert len(protocol.terms) == 1
        assert protocol.kappa == pytest.approx(1.0)

    def test_consumes_pair(self):
        assert TeleportationWireCut().terms[0].consumes_entangled_pair

    def test_term_is_identity_channel(self):
        term = TeleportationWireCut().terms[0]
        assert np.allclose(term.superoperator(), np.eye(4))


class TestNME:
    def test_coefficients_formula(self):
        for k in (0.0, 0.4, 1.0, 3.0):
            a, b = nme_coefficients(k)
            assert a == pytest.approx((k * k + 1) / (k + 1) ** 2)
            assert b == pytest.approx((k - 1) ** 2 / (k + 1) ** 2)

    def test_coefficients_negative_k(self):
        with pytest.raises(CuttingError):
            nme_coefficients(-0.1)

    def test_kappa_matches_corollary1(self):
        for k in (0.0, 0.25, 0.6, 1.0, 1.7):
            assert NMEWireCut(k).kappa == pytest.approx(4 * (k * k + 1) / (k + 1) ** 2 - 1)

    def test_three_terms_generic(self):
        assert len(NMEWireCut(0.5).terms) == 3

    def test_two_terms_at_maximal_entanglement(self):
        # The correction term vanishes at k = 1.
        assert len(NMEWireCut(1.0).terms) == 2

    def test_teleport_terms_consume_pairs(self):
        terms = NMEWireCut(0.5).terms
        assert terms[0].consumes_entangled_pair and terms[1].consumes_entangled_pair
        assert not terms[2].consumes_entangled_pair

    def test_from_overlap(self):
        protocol = NMEWireCut.from_overlap(0.9)
        assert protocol.overlap == pytest.approx(0.9)
        assert protocol.k == pytest.approx(k_from_overlap(0.9))

    def test_overlap_property(self):
        assert NMEWireCut(0.3).overlap == pytest.approx(overlap_from_k(0.3))

    def test_negative_k_rejected(self):
        with pytest.raises(CuttingError):
            NMEWireCut(-1.0)

    def test_expected_pairs_per_shot(self):
        protocol = NMEWireCut(0.5)
        a, _ = protocol.coefficients_ab
        assert protocol.expected_pairs_per_shot() == pytest.approx(2 * a / protocol.kappa)

    def test_reduces_to_entanglement_free_overhead_at_k0(self):
        assert NMEWireCut(0.0).kappa == pytest.approx(HaradaWireCut().kappa)

    def test_teleport_term_channels_are_pauli_channels(self):
        for term in NMEWireCut(0.4).terms[:2]:
            assert term.channel.is_trace_preserving()
            assert term.channel.is_unital()


class TestBaseHelpers:
    def test_superoperator_from_map(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        superop = superoperator_from_map(lambda rho: x @ rho @ x)
        assert np.allclose(superop, np.kron(x, x.conj()))

    def test_term_gadget_requires_builder(self):
        term = WireCutTerm(coefficient=1.0, channel=QuantumChannel.from_unitary(np.eye(2)))
        from repro.cutting.base import GadgetWiring
        from repro.circuits.circuit import QuantumCircuit

        with pytest.raises(CuttingError):
            term.build_gadget(QuantumCircuit(2, 1), GadgetWiring(0, 1))

    def test_term_gadget_checks_ancilla_count(self):
        protocol = NMEWireCut(0.5)
        term = protocol.terms[0]  # needs one ancilla
        from repro.cutting.base import GadgetWiring
        from repro.circuits.circuit import QuantumCircuit

        with pytest.raises(CuttingError):
            term.build_gadget(QuantumCircuit(3, 2), GadgetWiring(0, 1, ancilla_qubits=()))

    def test_protocol_requires_terms(self):
        class Empty(WireCutProtocol):
            name = "empty"

            def build_terms(self):
                return ()

            def theoretical_overhead(self):
                return 1.0

        with pytest.raises(CuttingError):
            _ = Empty().terms
