"""Unit tests for the circuit cutter (building per-term circuits)."""

import pytest

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.cutting.cutter import CutLocation, build_cut_circuits, cut_wire
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.peng_cut import PengWireCut
from repro.cutting.standard_cut import HaradaWireCut
from repro.cutting.teleport_cut import TeleportationWireCut


def _two_qubit_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(2, 0, name="workload")
    circuit.ry(0.4, 0)
    circuit.cx(0, 1)
    circuit.rz(0.7, 1)
    return circuit


class TestValidation:
    def test_qubit_out_of_range(self):
        with pytest.raises(CuttingError):
            build_cut_circuits(_two_qubit_circuit(), CutLocation(5, 1), HaradaWireCut())

    def test_position_out_of_range(self):
        with pytest.raises(CuttingError):
            build_cut_circuits(_two_qubit_circuit(), CutLocation(0, 10), HaradaWireCut())

    def test_cut_before_measurement_of_wire_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        with pytest.raises(CuttingError):
            build_cut_circuits(circuit, CutLocation(0, 1), HaradaWireCut())

    def test_cut_at_circuit_end_allowed(self):
        circuit = _two_qubit_circuit()
        results = build_cut_circuits(circuit, CutLocation(1, len(circuit)), HaradaWireCut())
        assert len(results) == 3


class TestStructure:
    def test_one_circuit_per_term(self):
        for protocol in (HaradaWireCut(), PengWireCut(), NMEWireCut(0.5), TeleportationWireCut()):
            results = build_cut_circuits(_two_qubit_circuit(), CutLocation(0, 1), protocol)
            assert len(results) == len(protocol.terms)

    def test_register_sizes_harada(self):
        results = build_cut_circuits(_two_qubit_circuit(), CutLocation(0, 1), HaradaWireCut())
        for term_circuit in results:
            # 2 original + 1 receiver qubit; 1 gadget clbit.
            assert term_circuit.circuit.num_qubits == 3
            assert term_circuit.circuit.num_clbits == 1

    def test_register_sizes_nme(self):
        results = build_cut_circuits(_two_qubit_circuit(), CutLocation(0, 1), NMEWireCut(0.5))
        teleport_terms = results[:2]
        for term_circuit in teleport_terms:
            # 2 original + 1 receiver + 1 ancilla; 2 gadget clbits.
            assert term_circuit.circuit.num_qubits == 4
            assert term_circuit.circuit.num_clbits == 2
        flip_term = results[2]
        assert flip_term.circuit.num_qubits == 3
        assert flip_term.circuit.num_clbits == 1

    def test_qubit_map_redirects_cut_wire(self):
        results = build_cut_circuits(_two_qubit_circuit(), CutLocation(0, 1), HaradaWireCut())
        for term_circuit in results:
            assert term_circuit.qubit_map[0] == 2  # receiver qubit
            assert term_circuit.qubit_map[1] == 1

    def test_receiver_fragment_remapped(self):
        circuit = _two_qubit_circuit()
        results = build_cut_circuits(circuit, CutLocation(0, 1), HaradaWireCut())
        # The cx(0, 1) after the cut must now act on (receiver, 1) = (2, 1).
        for term_circuit in results:
            cx_instructions = [i for i in term_circuit.circuit.instructions if i.name == "cx"]
            assert cx_instructions[-1].qubits == (2, 1)

    def test_sender_fragment_unchanged(self):
        circuit = _two_qubit_circuit()
        results = build_cut_circuits(circuit, CutLocation(0, 1), HaradaWireCut())
        for term_circuit in results:
            first = term_circuit.circuit.instructions[0]
            assert first.name == "ry" and first.qubits == (0,)

    def test_sign_clbits_absolute_indices(self):
        circuit = QuantumCircuit(1, 2, name="with_clbits")
        circuit.h(0)
        results = build_cut_circuits(circuit, CutLocation(0, 1), PengWireCut())
        # Gadget clbits start after the circuit's own 2 clbits.
        x_term = next(r for r in results if r.term.metadata["observable"] == "X")
        assert x_term.gadget_clbits == (2,)
        assert x_term.sign_clbits == (2,)

    def test_coefficient_passthrough(self):
        results = build_cut_circuits(_two_qubit_circuit(), CutLocation(0, 1), NMEWireCut(0.5))
        a, b = NMEWireCut(0.5).coefficients_ab
        assert results[0].coefficient == pytest.approx(a)
        assert results[2].coefficient == pytest.approx(-b)

    def test_original_circuit_untouched(self):
        circuit = _two_qubit_circuit()
        before = len(circuit)
        build_cut_circuits(circuit, CutLocation(0, 1), HaradaWireCut())
        assert len(circuit) == before
        assert circuit.num_qubits == 2

    def test_partition_metadata(self):
        results = build_cut_circuits(_two_qubit_circuit(), CutLocation(0, 1), NMEWireCut(0.5))
        term_circuit = results[0]
        assert term_circuit.receiver_qubits == (2,)
        assert set(term_circuit.sender_qubits) == {0, 1, 3}

    def test_cut_wire_convenience(self):
        results = cut_wire(_two_qubit_circuit(), 0, 1, HaradaWireCut())
        assert len(results) == 3
