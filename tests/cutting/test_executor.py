"""Unit tests for the cut executor (sampling and recombination)."""

import numpy as np
import pytest

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import exact_expectation
from repro.cutting.cutter import CutLocation
from repro.cutting.executor import (
    build_sampling_model,
    cut_expectation_value,
    estimate_cut_expectation,
    exact_cut_expectation,
)
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.peng_cut import PengWireCut
from repro.cutting.standard_cut import HaradaWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.quantum.paulis import PauliString
from repro.quantum.random import random_statevector

PROTOCOLS = [HaradaWireCut(), PengWireCut(), NMEWireCut(0.5), TeleportationWireCut()]


def _state_circuit(seed: int) -> tuple[QuantumCircuit, float]:
    state = random_statevector(1, seed=seed)
    circuit = QuantumCircuit(1, 0)
    circuit.initialize(state.data, 0)
    z = np.diag([1.0, -1.0]).astype(complex)
    return circuit, float(np.real(state.expectation_value(z)))


class TestExactReconstruction:
    @pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda p: p.name)
    def test_single_qubit_z(self, protocol):
        circuit, exact = _state_circuit(3)
        value = exact_cut_expectation(circuit, CutLocation(0, len(circuit)), protocol, "Z")
        assert value == pytest.approx(exact, abs=1e-9)

    @pytest.mark.parametrize("observable", ["X", "Y", "Z"])
    def test_all_single_qubit_paulis(self, observable):
        circuit, _ = _state_circuit(5)
        exact = exact_expectation(circuit, PauliString(observable))
        value = exact_cut_expectation(
            circuit, CutLocation(0, len(circuit)), NMEWireCut(0.4), observable
        )
        assert value == pytest.approx(exact, abs=1e-9)

    def test_two_qubit_circuit_cut_in_middle(self):
        circuit = QuantumCircuit(2, 0)
        circuit.ry(1.0, 0).cx(0, 1).rz(0.3, 1).h(0)
        exact = exact_expectation(circuit, PauliString("ZZ"))
        for protocol in (HaradaWireCut(), NMEWireCut(0.7)):
            value = exact_cut_expectation(circuit, CutLocation(0, 2), protocol, "ZZ")
            assert value == pytest.approx(exact, abs=1e-9)

    def test_cut_on_second_qubit(self):
        circuit = QuantumCircuit(2, 0)
        circuit.h(0).cx(0, 1).ry(0.8, 1)
        exact = exact_expectation(circuit, PauliString("IZ"))
        value = exact_cut_expectation(circuit, CutLocation(1, 2), HaradaWireCut(), "IZ")
        assert value == pytest.approx(exact, abs=1e-9)


class TestSamplingModel:
    def test_probabilities_sum_to_one(self):
        circuit, _ = _state_circuit(1)
        model = build_sampling_model(circuit, CutLocation(0, 1), NMEWireCut(0.5), "Z")
        assert model.probabilities.sum() == pytest.approx(1.0)

    def test_kappa(self):
        circuit, _ = _state_circuit(1)
        model = build_sampling_model(circuit, CutLocation(0, 1), NMEWireCut(0.5), "Z")
        assert model.kappa == pytest.approx(NMEWireCut(0.5).kappa)

    def test_estimate_reproducible(self):
        circuit, _ = _state_circuit(2)
        model = build_sampling_model(circuit, CutLocation(0, 1), HaradaWireCut(), "Z")
        a = model.estimate(1000, seed=7)
        b = model.estimate(1000, seed=7)
        assert a.value == b.value

    def test_estimate_converges(self):
        circuit, exact = _state_circuit(4)
        model = build_sampling_model(circuit, CutLocation(0, 1), HaradaWireCut(), "Z")
        result = model.estimate(200_000, seed=5)
        assert result.value == pytest.approx(exact, abs=0.02)

    def test_error_decreases_with_shots_on_average(self):
        circuit, _ = _state_circuit(6)
        model = build_sampling_model(circuit, CutLocation(0, 1), HaradaWireCut(), "Z")
        rng = np.random.default_rng(0)
        small = np.mean([abs(model.estimate(100, seed=rng).value - model.exact_value) for _ in range(40)])
        large = np.mean([abs(model.estimate(4000, seed=rng).value - model.exact_value) for _ in range(40)])
        assert large < small

    def test_expected_pairs(self):
        circuit, _ = _state_circuit(1)
        model = build_sampling_model(circuit, CutLocation(0, 1), NMEWireCut(1.0), "Z")
        assert model.expected_pairs(100) == pytest.approx(100)
        model_harada = build_sampling_model(circuit, CutLocation(0, 1), HaradaWireCut(), "Z")
        assert model_harada.expected_pairs(100) == 0.0

    def test_zero_shot_estimate(self):
        circuit, _ = _state_circuit(1)
        model = build_sampling_model(circuit, CutLocation(0, 1), HaradaWireCut(), "Z")
        result = model.estimate(0)
        assert result.total_shots == 0
        assert result.value == 0.0


class TestEstimateCutExpectation:
    def test_finite_shot_accuracy(self):
        circuit, exact = _state_circuit(8)
        result = estimate_cut_expectation(
            circuit, CutLocation(0, 1), NMEWireCut(0.8), "Z", shots=40_000, seed=3
        )
        assert result.value == pytest.approx(exact, abs=0.05)
        assert result.exact_value == pytest.approx(exact)
        assert result.error == pytest.approx(abs(result.value - exact))

    def test_shot_accounting(self):
        circuit, _ = _state_circuit(9)
        result = estimate_cut_expectation(
            circuit, CutLocation(0, 1), HaradaWireCut(), "Z", shots=999, seed=1
        )
        assert sum(result.shots_per_term) == 999
        assert result.total_shots == 999
        assert len(result.shots_per_term) == 3

    def test_allocation_strategies(self):
        circuit, _ = _state_circuit(10)
        for strategy in ("proportional", "multinomial", "uniform"):
            result = estimate_cut_expectation(
                circuit,
                CutLocation(0, 1),
                NMEWireCut(0.5),
                "Z",
                shots=600,
                allocation=strategy,
                seed=2,
            )
            assert sum(result.shots_per_term) == 600

    def test_protocol_name_recorded(self):
        circuit, _ = _state_circuit(11)
        result = estimate_cut_expectation(
            circuit, CutLocation(0, 1), PengWireCut(), "Z", shots=100, seed=0
        )
        assert result.protocol_name == "peng"

    def test_skip_exact_computation(self):
        circuit, _ = _state_circuit(12)
        result = estimate_cut_expectation(
            circuit, CutLocation(0, 1), HaradaWireCut(), "Z", shots=100, seed=0, compute_exact=False
        )
        assert result.exact_value is None
        assert result.error is None

    def test_observable_size_mismatch(self):
        circuit = QuantumCircuit(2, 0)
        circuit.h(0)
        with pytest.raises(CuttingError):
            estimate_cut_expectation(
                circuit, CutLocation(0, 1), HaradaWireCut(), "ZZZ", shots=10
            )

    def test_phased_observable_rejected(self):
        circuit, _ = _state_circuit(13)
        with pytest.raises(CuttingError):
            estimate_cut_expectation(
                circuit, CutLocation(0, 1), HaradaWireCut(), PauliString("Z", phase=-1), shots=10
            )


class TestCutExpectationValueConvenience:
    def test_accepts_statevector(self):
        state = random_statevector(1, seed=20)
        result = cut_expectation_value(state, TeleportationWireCut(), shots=2000, seed=4)
        z = np.diag([1.0, -1.0]).astype(complex)
        assert result.exact_value == pytest.approx(float(np.real(state.expectation_value(z))))

    def test_accepts_raw_vector(self):
        result = cut_expectation_value(np.array([1.0, 0.0]), HaradaWireCut(), shots=3000, seed=5)
        assert result.value == pytest.approx(1.0, abs=0.15)

    def test_rejects_multi_qubit_state(self):
        with pytest.raises(CuttingError):
            cut_expectation_value(random_statevector(2, seed=0), HaradaWireCut(), shots=10)

    def test_x_observable(self):
        plus = np.array([1.0, 1.0]) / np.sqrt(2)
        result = cut_expectation_value(plus, NMEWireCut(0.9), shots=4000, observable="X", seed=6)
        assert result.value == pytest.approx(1.0, abs=0.15)
