"""Unit tests for virtual entanglement distillation and the Appendix-B wire cut."""

import numpy as np
import pytest

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.cutting.cutter import CutLocation
from repro.cutting.executor import build_sampling_model
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.overhead import nme_overhead, optimal_overhead
from repro.cutting.virtual_distillation import DistilledTeleportWireCut, virtual_bell_decomposition
from repro.quantum.bell import bell_state, overlap_from_k, phi_k_density
from repro.quantum.random import random_statevector


class TestVirtualBellDecomposition:
    @pytest.mark.parametrize("k", [0.0, 0.2, 0.5, 0.8, 1.0, 2.0])
    def test_reconstructs_maximally_entangled_state(self, k):
        decomposition = virtual_bell_decomposition(k)
        phi = bell_state("I").to_density_matrix().data
        assert np.allclose(decomposition.apply_exact(phi_k_density(k).data), phi, atol=1e-9)

    @pytest.mark.parametrize("k", [0.0, 0.4, 1.0])
    def test_attains_eq17_overhead(self, k):
        decomposition = virtual_bell_decomposition(k)
        assert decomposition.kappa == pytest.approx(2.0 / overlap_from_k(k) - 1.0)
        assert decomposition.kappa == pytest.approx(optimal_overhead(overlap_from_k(k)))

    def test_terms_are_trace_preserving(self):
        for term in virtual_bell_decomposition(0.5).terms:
            assert term.channel.is_trace_preserving()

    def test_maximal_entanglement_has_two_terms(self):
        assert len(virtual_bell_decomposition(1.0)) == 2

    def test_coefficients_sum_to_one(self):
        assert virtual_bell_decomposition(0.3).coefficient_sum() == pytest.approx(1.0)

    def test_negative_k(self):
        with pytest.raises(CuttingError):
            virtual_bell_decomposition(-0.1)


class TestDistilledTeleportWireCut:
    @pytest.mark.parametrize("k", [0.0, 0.5, 1.0])
    def test_valid_identity_qpd(self, k):
        DistilledTeleportWireCut(k).verify()

    @pytest.mark.parametrize("k", [0.0, 0.5, 1.0])
    def test_same_kappa_as_nme_cut(self, k):
        assert DistilledTeleportWireCut(k).kappa == pytest.approx(NMEWireCut(k).kappa)
        assert DistilledTeleportWireCut(k).kappa == pytest.approx(nme_overhead(k))

    def test_circuit_level_exactness(self):
        state = random_statevector(1, seed=2)
        circuit = QuantumCircuit(1, 0)
        circuit.initialize(state.data, 0)
        model = build_sampling_model(
            circuit, CutLocation(0, 1), DistilledTeleportWireCut(0.6), "Z"
        )
        assert model.exact_cut_value() == pytest.approx(model.exact_value, abs=1e-9)

    def test_matches_nme_cut_term_distributions(self):
        # The two formulations sample identical per-term outcome distributions.
        state = random_statevector(1, seed=5)
        circuit = QuantumCircuit(1, 0)
        circuit.initialize(state.data, 0)
        location = CutLocation(0, 1)
        model_nme = build_sampling_model(circuit, location, NMEWireCut(0.7), "Z")
        model_distilled = build_sampling_model(circuit, location, DistilledTeleportWireCut(0.7), "Z")
        for a, b in zip(model_nme.terms, model_distilled.terms):
            assert a.coefficient == pytest.approx(b.coefficient)
            assert a.probability_plus == pytest.approx(b.probability_plus, abs=1e-9)

    def test_negative_k(self):
        with pytest.raises(CuttingError):
            DistilledTeleportWireCut(-0.2)
