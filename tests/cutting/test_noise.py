"""Unit tests for the noisy-resource extension."""

import numpy as np
import pytest

from repro.exceptions import CuttingError
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.noise import (
    effective_cut_channel,
    effective_cut_superoperator,
    noisy_phi_k,
    noisy_resource_overhead,
    reconstruction_bias,
    worst_case_z_bias,
)
from repro.quantum.bell import phi_k_density
from repro.quantum.entanglement import maximal_overlap
from repro.quantum.random import random_density_matrix


class TestNoisyPhiK:
    def test_no_noise_is_pure(self):
        assert noisy_phi_k(0.5, 0.0).is_pure()

    def test_full_noise_is_maximally_mixed(self):
        rho = noisy_phi_k(0.5, 1.0)
        assert np.allclose(rho.data, np.eye(4) / 4)

    def test_noise_reduces_entanglement(self):
        clean = maximal_overlap(phi_k_density(0.8))
        noisy = maximal_overlap(noisy_phi_k(0.8, 0.2))
        assert noisy < clean

    def test_invalid_noise_level(self):
        with pytest.raises(CuttingError):
            noisy_phi_k(0.5, 1.5)


class TestOverheadWithNoise:
    def test_matches_pure_without_noise(self):
        for k in (0.2, 0.6, 1.0):
            assert noisy_resource_overhead(noisy_phi_k(k, 0.0)) == pytest.approx(
                NMEWireCut(k).kappa
            )

    def test_increases_with_noise(self):
        overheads = [noisy_resource_overhead(noisy_phi_k(0.7, p)) for p in (0.0, 0.1, 0.3)]
        assert overheads[0] < overheads[1] < overheads[2]

    def test_capped_at_three(self):
        assert noisy_resource_overhead(noisy_phi_k(0.7, 1.0)) == pytest.approx(3.0)


class TestEffectiveChannel:
    def test_identity_without_noise(self):
        superop = effective_cut_superoperator(0.6, phi_k_density(0.6))
        assert np.allclose(superop, np.eye(4), atol=1e-9)

    def test_bias_zero_without_noise(self):
        assert reconstruction_bias(0.6, phi_k_density(0.6)) == pytest.approx(0.0, abs=1e-9)

    def test_bias_grows_with_noise(self):
        biases = [reconstruction_bias(0.5, noisy_phi_k(0.5, p)) for p in (0.0, 0.05, 0.2)]
        assert biases[0] < biases[1] < biases[2]

    def test_effective_channel_cp_for_mild_noise(self):
        channel = effective_cut_channel(0.5, noisy_phi_k(0.5, 0.02))
        assert channel.is_completely_positive(atol=1e-7)

    def test_worst_case_z_bias_bounded_by_norm(self):
        resource = noisy_phi_k(0.5, 0.1)
        z_bias = worst_case_z_bias(0.5, resource, samples=50)
        norm_bias = reconstruction_bias(0.5, resource)
        assert z_bias <= 2 * norm_bias + 1e-9

    def test_worst_case_z_bias_zero_without_noise(self):
        assert worst_case_z_bias(0.7, phi_k_density(0.7), samples=20) == pytest.approx(0.0, abs=1e-9)

    def test_superoperator_trace_preserving_structure(self):
        # Even with noise the effective map stays trace preserving (all QPD
        # terms are TP channels).
        superop = effective_cut_superoperator(0.4, noisy_phi_k(0.4, 0.3))
        rho = random_density_matrix(1, seed=0).data
        out = (superop @ rho.reshape(-1)).reshape(2, 2)
        assert np.trace(out).real == pytest.approx(1.0)
