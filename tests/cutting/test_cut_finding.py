"""Unit tests for automatic cut finding."""

import pytest

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import exact_expectation
from repro.cutting.cut_finding import find_time_slice_cuts, fragment_widths
from repro.cutting.multi_wire import estimate_multi_cut_expectation
from repro.cutting.standard_cut import HaradaWireCut
from repro.experiments import ghz_circuit
from repro.quantum.paulis import PauliString


class TestFragmentWidths:
    def test_ghz_middle_slice(self):
        circuit = ghz_circuit(4)  # h, cx01, cx12, cx23
        front, back = fragment_widths(circuit, 2, {1})
        assert front == 2  # qubits 0, 1
        assert back == 3  # qubits 1, 2, 3

    def test_empty_front(self):
        circuit = ghz_circuit(3)
        front, back = fragment_widths(circuit, 0, set())
        assert front == 0
        assert back == 3


class TestFindTimeSliceCuts:
    def test_ghz_single_cut_found(self):
        circuit = ghz_circuit(4)
        plans = find_time_slice_cuts(circuit, max_fragment_width=3)
        assert plans, "expected at least one valid plan"
        best = plans[0]
        assert best.num_cuts == 1
        assert best.sampling_overhead == pytest.approx(3.0)
        assert best.front_width <= 3 and best.back_width <= 3

    def test_width_constraint_filters_plans(self):
        circuit = ghz_circuit(4)
        assert find_time_slice_cuts(circuit, max_fragment_width=1) == []

    def test_entanglement_lowers_reported_overhead(self):
        circuit = ghz_circuit(4)
        plain = find_time_slice_cuts(circuit, max_fragment_width=3)[0]
        assisted = find_time_slice_cuts(circuit, max_fragment_width=3, entanglement_overlap=0.9)[0]
        assert assisted.sampling_overhead < plain.sampling_overhead

    def test_max_cuts_filter(self):
        # A fully parallel two-qubit entangler layer needs 2 simultaneous cuts.
        circuit = QuantumCircuit(4)
        circuit.h(0).h(1).h(2).h(3)
        circuit.cx(0, 2).cx(1, 3)
        plans_all = find_time_slice_cuts(circuit, max_fragment_width=4)
        plans_restricted = find_time_slice_cuts(circuit, max_fragment_width=4, max_cuts=1)
        assert any(p.num_cuts >= 2 for p in plans_all)
        assert all(p.num_cuts <= 1 for p in plans_restricted)

    def test_invalid_width(self):
        with pytest.raises(CuttingError):
            find_time_slice_cuts(ghz_circuit(3), max_fragment_width=0)

    def test_plans_sorted_by_overhead(self):
        circuit = ghz_circuit(5)
        plans = find_time_slice_cuts(circuit, max_fragment_width=4)
        overheads = [p.sampling_overhead for p in plans]
        assert overheads == sorted(overheads)

    def test_best_plan_is_executable(self):
        # The found plan, executed with the multi-cut estimator, reproduces the
        # exact stabiliser expectation value.
        circuit = ghz_circuit(4)
        observable = PauliString("ZZII")
        exact = exact_expectation(circuit, observable)
        best = find_time_slice_cuts(circuit, max_fragment_width=3)[0]
        result = estimate_multi_cut_expectation(
            circuit,
            list(best.locations),
            [HaradaWireCut()] * best.num_cuts,
            observable,
            shots=20_000,
            seed=3,
        )
        assert result.exact_value == pytest.approx(exact)
        assert result.value == pytest.approx(exact, abs=0.1)
