"""Unit tests for automatic cut finding (single- and multi-slice planners)."""

import pytest

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import exact_expectation
from repro.cutting.cut_finding import (
    find_time_slice_cuts,
    fragment_widths,
    plan_cuts,
    plan_from_locations,
    plan_from_positions,
)
from repro.cutting.cutter import CutLocation
from repro.cutting.multi_wire import estimate_multi_cut_expectation
from repro.cutting.standard_cut import HaradaWireCut
from repro.experiments import ghz_circuit
from repro.quantum.paulis import PauliString


class TestFragmentWidths:
    def test_ghz_middle_slice(self):
        circuit = ghz_circuit(4)  # h, cx01, cx12, cx23
        front, back = fragment_widths(circuit, 2, {1})
        assert front == 2  # qubits 0, 1
        assert back == 3  # qubits 1, 2, 3

    def test_empty_front(self):
        circuit = ghz_circuit(3)
        front, back = fragment_widths(circuit, 0, set())
        assert front == 0
        assert back == 3


class TestFindTimeSliceCuts:
    def test_ghz_single_cut_found(self):
        circuit = ghz_circuit(4)
        plans = find_time_slice_cuts(circuit, max_fragment_width=3)
        assert plans, "expected at least one valid plan"
        best = plans[0]
        assert best.num_cuts == 1
        assert best.sampling_overhead == pytest.approx(3.0)
        assert best.front_width <= 3 and best.back_width <= 3

    def test_width_constraint_filters_plans(self):
        circuit = ghz_circuit(4)
        assert find_time_slice_cuts(circuit, max_fragment_width=1) == []

    def test_entanglement_lowers_reported_overhead(self):
        circuit = ghz_circuit(4)
        plain = find_time_slice_cuts(circuit, max_fragment_width=3)[0]
        assisted = find_time_slice_cuts(circuit, max_fragment_width=3, entanglement_overlap=0.9)[0]
        assert assisted.sampling_overhead < plain.sampling_overhead

    def test_max_cuts_filter(self):
        # A fully parallel two-qubit entangler layer needs 2 simultaneous cuts.
        circuit = QuantumCircuit(4)
        circuit.h(0).h(1).h(2).h(3)
        circuit.cx(0, 2).cx(1, 3)
        plans_all = find_time_slice_cuts(circuit, max_fragment_width=4)
        plans_restricted = find_time_slice_cuts(circuit, max_fragment_width=4, max_cuts=1)
        assert any(p.num_cuts >= 2 for p in plans_all)
        assert all(p.num_cuts <= 1 for p in plans_restricted)

    def test_invalid_width(self):
        with pytest.raises(CuttingError):
            find_time_slice_cuts(ghz_circuit(3), max_fragment_width=0)

    def test_plans_sorted_by_overhead(self):
        circuit = ghz_circuit(5)
        plans = find_time_slice_cuts(circuit, max_fragment_width=4)
        overheads = [p.sampling_overhead for p in plans]
        assert overheads == sorted(overheads)

    def test_best_plan_is_executable(self):
        # The found plan, executed with the multi-cut estimator, reproduces the
        # exact stabiliser expectation value.
        circuit = ghz_circuit(4)
        observable = PauliString("ZZII")
        exact = exact_expectation(circuit, observable)
        best = find_time_slice_cuts(circuit, max_fragment_width=3)[0]
        result = estimate_multi_cut_expectation(
            circuit,
            list(best.locations),
            [HaradaWireCut()] * best.num_cuts,
            observable,
            shots=20_000,
            seed=3,
        )
        assert result.exact_value == pytest.approx(exact)
        assert result.value == pytest.approx(exact, abs=0.1)


class TestPlanFromPositions:
    def test_single_slice_matches_single_slice_finder(self):
        circuit = ghz_circuit(4)
        best = find_time_slice_cuts(circuit, max_fragment_width=3)[0]
        plan = plan_from_positions(circuit, (best.locations[0].position,))
        assert plan.locations == best.locations
        assert plan.sampling_overhead == pytest.approx(best.sampling_overhead)
        assert plan.num_fragments == 2

    def test_wire_crossing_two_slices_is_cut_twice(self):
        # q0 is used at instructions 0, 1 and 3 — it crosses both slices and
        # passes idle through the middle fragment.
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).x(1).cx(0, 2)
        plan = plan_from_positions(circuit, (2, 3))
        cut_keys = [(loc.qubit, loc.position) for loc in plan.locations]
        assert (0, 2) in cut_keys and (0, 3) in cut_keys
        # The through-wire still occupies a qubit in the middle fragment.
        middle = plan.fragments[1]
        assert 0 in middle.qubits

    def test_rejects_unsorted_or_out_of_range_positions(self):
        circuit = ghz_circuit(4)
        with pytest.raises(CuttingError):
            plan_from_positions(circuit, (3, 2))
        with pytest.raises(CuttingError):
            plan_from_positions(circuit, (0,))
        with pytest.raises(CuttingError):
            plan_from_positions(circuit, (len(circuit),))
        with pytest.raises(CuttingError):
            plan_from_positions(circuit, ())


class TestPlanFromLocations:
    def test_end_of_circuit_cut(self):
        # The paper's single-qubit workload cuts after the last instruction,
        # which the slice model cannot express.
        circuit = QuantumCircuit(1)
        circuit.h(0)
        plan = plan_from_locations(circuit, [CutLocation(0, len(circuit))])
        assert plan.num_cuts == 1
        assert plan.positions == ()
        assert plan.num_fragments == 1

    def test_rejects_empty_and_out_of_range(self):
        circuit = ghz_circuit(3)
        with pytest.raises(CuttingError):
            plan_from_locations(circuit, [])
        with pytest.raises(CuttingError):
            plan_from_locations(circuit, [CutLocation(5, 1)])


class TestPlanCuts:
    def test_two_cut_three_fragment_plan(self):
        plans = plan_cuts(ghz_circuit(6), max_fragment_width=3)
        assert plans
        best = plans[0]
        assert best.num_cuts == 2
        assert best.num_fragments == 3
        assert best.max_width <= 3
        assert best.sampling_overhead == pytest.approx(9.0)

    def test_no_plan_when_no_cut_set_fits_device(self):
        # Width 1 can never hold a two-qubit gate.
        assert plan_cuts(ghz_circuit(4), max_fragment_width=1) == []

    def test_width_one_fragments_are_allowed(self):
        # GHZ(2) under width 2: besides the trivial no-cut plan, the cut
        # plan puts the leading h(0) into its own single-wire fragment.
        plans = plan_cuts(ghz_circuit(2), max_fragment_width=2)
        assert plans
        assert plans[0].num_cuts == 0  # the trivial plan ranks first
        assert all(plan.max_width <= 2 for plan in plans)
        assert any(
            min(fragment.width for fragment in plan.fragments) == 1 for plan in plans
        ), "expected a plan with a width-1 fragment"

    def test_idle_wire_never_forces_a_cut(self):
        # q2 exists but is never touched: it must not appear in any fragment
        # or cut location.
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1)
        plans = plan_cuts(circuit, max_fragment_width=2)
        assert plans, "a width-2 split of h(0); cx(0,1) must exist"
        for plan in plans:
            assert all(loc.qubit != 2 for loc in plan.locations)
            assert all(2 not in fragment.qubits for fragment in plan.fragments)

    def test_zero_cut_plan_when_circuit_factorises(self):
        # Two independent blocks fit two devices with no cut at all; the
        # free-split plan ranks first with overhead 1.
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3)
        plans = plan_cuts(circuit, max_fragment_width=2)
        assert plans
        best = plans[0]
        assert best.num_cuts == 0
        assert best.num_fragments == 2
        assert best.sampling_overhead == pytest.approx(1.0)

    def test_infeasible_width_returns_immediately(self):
        # An instruction wider than the device makes every plan invalid; the
        # arity pre-check must bail out without enumerating candidates.
        circuit = QuantumCircuit(6)
        for layer in range(5):
            for qubit in range(6):
                circuit.h(qubit)
            for qubit in range(0, 5):
                circuit.cx(qubit, qubit + 1)
        import time

        start = time.perf_counter()
        assert plan_cuts(circuit, max_fragment_width=1) == []
        assert time.perf_counter() - start < 1.0

    def test_idle_at_slice_wire_is_cut_at_each_crossing(self):
        # A wire idle exactly at a slice (used before and after) must still
        # be cut there; every location in a plan cuts a genuinely crossing
        # wire.
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).x(1).cx(0, 2)
        plans = plan_cuts(circuit, max_fragment_width=2)
        assert plans
        usage = {0: (0, 3), 1: (1, 2), 2: (3, 3)}
        for plan in plans:
            for location in plan.locations:
                first, last = usage[location.qubit]
                assert first < location.position <= last

    def test_overhead_ranks_entanglement_assisted_plans_lower(self):
        plain = plan_cuts(ghz_circuit(6), max_fragment_width=3)[0]
        assisted = plan_cuts(
            ghz_circuit(6), max_fragment_width=3, entanglement_overlap=0.9
        )[0]
        assert assisted.sampling_overhead < plain.sampling_overhead

    def test_max_cuts_and_max_fragments_bounds(self):
        circuit = ghz_circuit(6)
        assert plan_cuts(circuit, 3, max_cuts=1) == []
        bounded = plan_cuts(circuit, 3, max_fragments=3)
        assert bounded and all(p.num_fragments <= 3 for p in bounded)

    def test_invalid_width(self):
        with pytest.raises(CuttingError):
            plan_cuts(ghz_circuit(3), max_fragment_width=0)

    def test_multi_cut_plan_is_executable(self):
        # The 2-cut plan executes end to end and reproduces the exact value.
        circuit = ghz_circuit(4)
        observable = PauliString("ZZZZ")
        exact = exact_expectation(circuit, observable)
        best = plan_cuts(circuit, max_fragment_width=2)[0]
        assert best.num_cuts == 2
        result = estimate_multi_cut_expectation(
            circuit,
            list(best.locations),
            [HaradaWireCut()] * best.num_cuts,
            observable,
            shots=40_000,
            seed=3,
            backend="vectorized",
        )
        assert result.exact_value == pytest.approx(exact)
        assert result.value == pytest.approx(exact, abs=0.25)
