"""Unit tests for the Instruction dataclass."""

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.circuits.instruction import BARRIER, GATE, INITIALIZE, MEASURE, RESET, Instruction
from repro.quantum.gates import CX, H, X


class TestConstruction:
    def test_gate(self):
        instruction = Instruction(kind=GATE, name="h", qubits=(0,), matrix=H)
        assert instruction.num_qubits == 1
        assert not instruction.is_conditional

    def test_gate_requires_matrix(self):
        with pytest.raises(CircuitError):
            Instruction(kind=GATE, name="h", qubits=(0,))

    def test_gate_matrix_shape_check(self):
        with pytest.raises(CircuitError):
            Instruction(kind=GATE, name="cx", qubits=(0,), matrix=CX)

    def test_measure_arity(self):
        Instruction(kind=MEASURE, name="measure", qubits=(0,), clbits=(0,))
        with pytest.raises(CircuitError):
            Instruction(kind=MEASURE, name="measure", qubits=(0, 1), clbits=(0,))
        with pytest.raises(CircuitError):
            Instruction(kind=MEASURE, name="measure", qubits=(0,), clbits=())

    def test_reset_arity(self):
        with pytest.raises(CircuitError):
            Instruction(kind=RESET, name="reset", qubits=(0, 1))

    def test_initialize_requires_state(self):
        with pytest.raises(CircuitError):
            Instruction(kind=INITIALIZE, name="initialize", qubits=(0,))

    def test_unknown_kind(self):
        with pytest.raises(CircuitError):
            Instruction(kind="noop", name="noop", qubits=(0,))

    def test_condition_validation(self):
        with pytest.raises(CircuitError):
            Instruction(kind=GATE, name="x", qubits=(0,), matrix=X, condition=(0, 2))
        with pytest.raises(CircuitError):
            Instruction(kind=GATE, name="x", qubits=(0,), matrix=X, condition=(-1, 1))


class TestTransformations:
    def test_with_condition(self):
        conditioned = Instruction(kind=GATE, name="x", qubits=(1,), matrix=X).with_condition(2, 1)
        assert conditioned.condition == (2, 1)
        assert conditioned.is_conditional

    def test_with_condition_rejected_for_measure(self):
        measure = Instruction(kind=MEASURE, name="measure", qubits=(0,), clbits=(0,))
        with pytest.raises(CircuitError):
            measure.with_condition(0)

    def test_remap_qubits(self):
        instruction = Instruction(kind=GATE, name="cx", qubits=(0, 1), matrix=CX)
        remapped = instruction.remap({0: 2, 1: 3})
        assert remapped.qubits == (2, 3)
        assert np.allclose(remapped.matrix, CX)

    def test_remap_clbits_and_condition(self):
        instruction = Instruction(
            kind=GATE, name="x", qubits=(0,), matrix=X, condition=(0, 1)
        )
        remapped = instruction.remap({}, {0: 5})
        assert remapped.condition == (5, 1)

    def test_remap_partial_map_keeps_others(self):
        instruction = Instruction(kind=GATE, name="cx", qubits=(0, 1), matrix=CX)
        assert instruction.remap({0: 4}).qubits == (4, 1)

    def test_barrier(self):
        barrier = Instruction(kind=BARRIER, name="barrier", qubits=(0, 1))
        assert barrier.num_qubits == 2
