"""Unit tests for the QuantumCircuit builder."""

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.circuits.circuit import QuantumCircuit
from repro.quantum.gates import CX, H, X, Z


class TestBuilder:
    def test_chaining(self):
        circuit = QuantumCircuit(2, 1)
        result = circuit.h(0).cx(0, 1).measure(1, 0)
        assert result is circuit
        assert len(circuit) == 3

    def test_named_gates_record_matrices(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        assert np.allclose(circuit.instructions[0].matrix, X)

    def test_parametric_gates(self):
        circuit = QuantumCircuit(1)
        circuit.ry(0.7, 0).rz(0.2, 0).u(0.1, 0.2, 0.3, 0)
        assert circuit.count_ops() == {"ry": 1, "rz": 1, "u": 1}

    def test_two_qubit_gates(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cz(1, 2).swap(0, 2).ccx(0, 1, 2)
        assert len(circuit) == 4

    def test_unitary_append(self):
        circuit = QuantumCircuit(1)
        circuit.unitary(H, 0, name="my_h")
        assert circuit.instructions[0].name == "my_h"

    def test_unitary_rejects_non_unitary(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1).unitary(np.diag([1.0, 2.0]), 0)

    def test_qubit_range_check(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1).x(1)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).cx(0, 0)

    def test_clbit_range_check(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1, 1).measure(0, 1)

    def test_negative_register_sizes(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(-1)

    def test_conditional_gate(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0, condition=(0, 1))
        assert circuit.instructions[0].condition == (0, 1)
        assert circuit.has_conditionals()

    def test_measure_all(self):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0).measure_all()
        assert circuit.count_ops()["measure"] == 3

    def test_measure_all_requires_clbits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2, 1).measure_all()

    def test_initialize_validation(self):
        circuit = QuantumCircuit(2)
        circuit.initialize(np.array([0, 1]), 0)
        with pytest.raises(CircuitError):
            circuit.initialize(np.array([1, 1]), 0)  # not normalised
        with pytest.raises(CircuitError):
            circuit.initialize(np.array([1, 0]), (0, 1))  # wrong dimension

    def test_barrier_defaults_to_all_qubits(self):
        circuit = QuantumCircuit(3)
        circuit.barrier()
        assert circuit.instructions[0].qubits == (0, 1, 2)


class TestAnalysis:
    def test_is_unitary_only(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0).cx(0, 1)
        assert circuit.is_unitary_only()
        circuit.measure(0, 0)
        assert not circuit.is_unitary_only()

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1)
        assert circuit.depth() == 1

    def test_depth_serial_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).h(1)
        assert circuit.depth() == 3

    def test_depth_ignores_barriers(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).barrier().h(0)
        assert circuit.depth() == 2

    def test_depth_counts_classical_dependencies(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        assert circuit.depth() == 2

    def test_count_ops(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).cx(0, 1)
        assert circuit.count_ops() == {"h": 2, "cx": 1}

    def test_to_matrix_bell_circuit(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        expected = CX @ np.kron(H, np.eye(2))
        assert np.allclose(circuit.to_matrix(), expected)

    def test_to_matrix_respects_qubit_targets(self):
        circuit = QuantumCircuit(2)
        circuit.z(1)
        assert np.allclose(circuit.to_matrix(), np.kron(np.eye(2), Z))

    def test_to_matrix_rejects_measurement(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(CircuitError):
            circuit.to_matrix()


class TestComposition:
    def test_compose_identity_mapping(self):
        inner = QuantumCircuit(1)
        inner.x(0)
        outer = QuantumCircuit(2)
        combined = outer.compose(inner)
        assert combined.count_ops() == {"x": 1}
        assert len(outer) == 0  # not in place by default

    def test_compose_inplace(self):
        inner = QuantumCircuit(1)
        inner.x(0)
        outer = QuantumCircuit(2)
        outer.compose(inner, qubits=[1], inplace=True)
        assert outer.instructions[0].qubits == (1,)

    def test_compose_remaps_clbits(self):
        inner = QuantumCircuit(1, 1)
        inner.measure(0, 0)
        outer = QuantumCircuit(2, 2)
        outer.compose(inner, qubits=[1], clbits=[1], inplace=True)
        assert outer.instructions[0].clbits == (1,)

    def test_compose_wrong_mapping_length(self):
        inner = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            QuantumCircuit(3).compose(inner, qubits=[0])

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        clone = circuit.copy()
        clone.x(0)
        assert len(circuit) == 1 and len(clone) == 2

    def test_inverse(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).s(0)
        inverse = circuit.inverse()
        combined = circuit.copy().compose(inverse)
        assert np.allclose(combined.to_matrix(), np.eye(2))

    def test_inverse_rejects_measurement(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(CircuitError):
            circuit.inverse()
