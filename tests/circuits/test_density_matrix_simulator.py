"""Unit tests for the branching density-matrix simulator."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.density_matrix_simulator import simulate_density_matrix
from repro.quantum.measures import state_fidelity
from repro.quantum.random import random_statevector
from repro.quantum.states import DensityMatrix, Statevector


class TestBasicExecution:
    def test_unitary_only_matches_statevector(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        result = simulate_density_matrix(circuit)
        assert len(result.branches) == 1
        expected = Statevector(np.array([1, 0, 0, 1]) / np.sqrt(2)).to_density_matrix()
        assert np.allclose(result.average_state().data, expected.data)

    def test_initial_state(self):
        initial = random_statevector(1, seed=0)
        circuit = QuantumCircuit(1)
        circuit.z(0)
        result = simulate_density_matrix(circuit, initial_state=initial)
        expected = initial.evolve(np.diag([1, -1]).astype(complex))
        assert state_fidelity(expected, result.average_state()) == pytest.approx(1.0)

    def test_initial_state_dimension_check(self):
        with pytest.raises(SimulationError):
            simulate_density_matrix(QuantumCircuit(2), initial_state=Statevector("0"))


class TestMeasurement:
    def test_single_measurement_branches(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        result = simulate_density_matrix(circuit)
        distribution = result.classical_distribution()
        assert distribution["0"] == pytest.approx(0.5)
        assert distribution["1"] == pytest.approx(0.5)

    def test_deterministic_measurement_single_branch(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0).measure(0, 0)
        result = simulate_density_matrix(circuit)
        assert result.classical_distribution() == {"1": pytest.approx(1.0)}

    def test_conditional_state(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0).cx(0, 1).measure(0, 0)
        result = simulate_density_matrix(circuit)
        conditioned = result.conditional_state("1")
        # Given outcome 1 on qubit 0, qubit 1 is |1>.
        assert np.allclose(conditioned.partial_trace([0]).data, np.diag([0.0, 1.0]))

    def test_conditional_state_missing_outcome(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        result = simulate_density_matrix(circuit)
        with pytest.raises(SimulationError):
            result.conditional_state("1")

    def test_measurement_correlations_ghz(self):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0).cx(0, 1).cx(1, 2).measure_all()
        distribution = simulate_density_matrix(circuit).classical_distribution()
        assert set(distribution) == {"000", "111"}

    def test_expectation_value(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        result = simulate_density_matrix(circuit)
        z = np.diag([1.0, -1.0]).astype(complex)
        assert result.expectation_value(z).real == pytest.approx(0.0)


class TestClassicalControl:
    def test_feedforward_x(self):
        circuit = QuantumCircuit(2, 1)
        circuit.x(0).measure(0, 0)
        circuit.x(1, condition=(0, 1))
        result = simulate_density_matrix(circuit)
        reduced = result.average_state().partial_trace([0])
        assert np.allclose(reduced.data, np.diag([0.0, 1.0]))

    def test_feedforward_not_triggered(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        result = simulate_density_matrix(circuit)
        reduced = result.average_state().partial_trace([0])
        assert np.allclose(reduced.data, np.diag([1.0, 0.0]))

    def test_condition_on_zero_value(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 0))
        result = simulate_density_matrix(circuit)
        reduced = result.average_state().partial_trace([0])
        assert np.allclose(reduced.data, np.diag([0.0, 1.0]))

    def test_teleportation_with_feedforward(self):
        message = random_statevector(1, seed=3)
        circuit = QuantumCircuit(3, 2)
        circuit.initialize(message.data, 0)
        circuit.h(1).cx(1, 2)
        circuit.cx(0, 1).h(0)
        circuit.measure(0, 0).measure(1, 1)
        circuit.x(2, condition=(1, 1))
        circuit.z(2, condition=(0, 1))
        result = simulate_density_matrix(circuit)
        output = result.average_state().partial_trace([0, 1])
        assert state_fidelity(message, output) == pytest.approx(1.0)

    def test_teleportation_without_corrections_fails(self):
        message = random_statevector(1, seed=4)
        circuit = QuantumCircuit(3, 2)
        circuit.initialize(message.data, 0)
        circuit.h(1).cx(1, 2)
        circuit.cx(0, 1).h(0)
        circuit.measure(0, 0).measure(1, 1)
        result = simulate_density_matrix(circuit)
        output = result.average_state().partial_trace([0, 1])
        assert state_fidelity(message, output) < 0.99


class TestResetAndInitialize:
    def test_reset(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).reset(0)
        result = simulate_density_matrix(circuit)
        assert np.allclose(result.average_state().data, np.diag([1.0, 0.0]))

    def test_initialize_overwrites(self):
        target = random_statevector(1, seed=6)
        circuit = QuantumCircuit(1)
        circuit.h(0).initialize(target.data, 0)
        result = simulate_density_matrix(circuit)
        assert state_fidelity(target, result.average_state()) == pytest.approx(1.0)

    def test_initialize_subset_of_qubits(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.initialize(np.array([0, 1]), 1)
        result = simulate_density_matrix(circuit)
        assert np.allclose(result.average_state().data, DensityMatrix("11").data)

    def test_initialize_decouples_from_entangled_partner(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        circuit.initialize(np.array([1, 0]), 1)
        result = simulate_density_matrix(circuit)
        # Qubit 1 is now |0> and qubit 0 is maximally mixed.
        state = result.average_state()
        assert np.allclose(state.partial_trace([0]).data, np.diag([1.0, 0.0]))
        assert np.allclose(state.partial_trace([1]).data, np.eye(2) / 2)

    def test_branch_probabilities_sum_to_one(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0).h(1).measure_all()
        result = simulate_density_matrix(circuit)
        assert sum(b.probability for b in result.branches) == pytest.approx(1.0)
