"""Tests for the DensityMatrixSimulator gate-noise hook."""

import pytest

from repro.circuits import DensityMatrixSimulator, QuantumCircuit
from repro.quantum.channels import dephasing_channel


def _dephase_all(instruction):
    """Hook: full dephasing after every single-qubit gate, nothing on 2q gates."""
    if len(instruction.qubits) != 1:
        return None
    return tuple(dephasing_channel(0.5).kraus_operators)


class TestGateNoiseHook:
    def test_none_hook_matches_default(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        default = DensityMatrixSimulator().run(circuit).classical_distribution()
        hooked = DensityMatrixSimulator(gate_noise=lambda instruction: None).run(
            circuit
        ).classical_distribution()
        assert hooked == default

    def test_full_dephasing_kills_coherence(self):
        """p=0.5 dephasing after H leaves the qubit maximally mixed in X basis."""
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.h(0)  # ideally returns to |0>
        circuit.measure(0, 0)
        distribution = (
            DensityMatrixSimulator(gate_noise=_dephase_all)
            .run(circuit)
            .classical_distribution()
        )
        # After the first H the state is |+>; full dephasing makes it I/2, the
        # second (also noisy) H keeps I/2: a coin flip instead of certainty.
        assert distribution["0"] == pytest.approx(0.5)
        assert distribution["1"] == pytest.approx(0.5)

    def test_hook_receives_instruction_and_selects_by_arity(self):
        seen = []

        def spy(instruction):
            seen.append((instruction.name, len(instruction.qubits)))
            return None

        circuit = QuantumCircuit(2, 0)
        circuit.h(0)
        circuit.cx(0, 1)
        DensityMatrixSimulator(gate_noise=spy).run(circuit)
        assert seen == [("h", 1), ("cx", 2)]

    def test_conditioned_gate_noise_only_on_taken_branch(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(1, condition=(0, 1))
        circuit.measure(1, 1)

        def noise(instruction):
            if instruction.name == "x":
                return tuple(dephasing_channel(1.0).kraus_operators)
            return None

        distribution = (
            DensityMatrixSimulator(gate_noise=noise).run(circuit).classical_distribution()
        )
        # Dephasing commutes with the X-branch computational outcome here, so
        # the skipped branch must remain exactly |0> with probability 1/2.
        assert distribution["00"] == pytest.approx(0.5)
        assert distribution["11"] == pytest.approx(0.5)

    def test_trace_preserved_under_cptp_hook(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)

        def noise(instruction):
            return tuple(dephasing_channel(0.3).kraus_operators) if len(
                instruction.qubits
            ) == 1 else None

        distribution = (
            DensityMatrixSimulator(gate_noise=noise).run(circuit).classical_distribution()
        )
        assert sum(distribution.values()) == pytest.approx(1.0)
