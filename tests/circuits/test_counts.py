"""Unit tests for the Counts container."""

import numpy as np
import pytest

from repro.circuits.counts import Counts


class TestConstruction:
    def test_basic(self):
        counts = Counts({"00": 3, "11": 7})
        assert counts.shots == 10
        assert counts.num_clbits == 2

    def test_zero_entries_dropped(self):
        counts = Counts({"0": 5, "1": 0})
        assert "1" not in counts
        assert counts["1"] == 0  # missing keys read as zero

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counts({"0": -1})

    def test_rejects_non_bitstring(self):
        with pytest.raises(ValueError):
            Counts({"0a": 1})

    def test_rejects_inconsistent_lengths(self):
        with pytest.raises(ValueError):
            Counts({"0": 1, "00": 1})

    def test_num_clbits_mismatch(self):
        with pytest.raises(ValueError):
            Counts({"00": 1}, num_clbits=3)

    def test_empty(self):
        counts = Counts({}, num_clbits=2)
        assert counts.shots == 0
        assert len(counts) == 0

    def test_equality_with_dict(self):
        assert Counts({"0": 2}) == {"0": 2}


class TestAggregation:
    def test_probabilities(self):
        probabilities = Counts({"0": 25, "1": 75}).probabilities()
        assert probabilities["1"] == pytest.approx(0.75)

    def test_most_frequent(self):
        assert Counts({"01": 5, "10": 9}).most_frequent() == "10"

    def test_most_frequent_empty_raises(self):
        with pytest.raises(ValueError):
            Counts({}).most_frequent()

    def test_marginal(self):
        counts = Counts({"01": 4, "11": 6})
        assert dict(counts.marginal([1])) == {"1": 10}
        assert dict(counts.marginal([0])) == {"0": 4, "1": 6}

    def test_marginal_reorders(self):
        counts = Counts({"01": 3})
        assert dict(counts.marginal([1, 0])) == {"10": 3}

    def test_add(self):
        total = Counts({"0": 1}).add(Counts({"0": 2, "1": 3}))
        assert dict(total) == {"0": 3, "1": 3}

    def test_expectation_z_full_register(self):
        counts = Counts({"00": 50, "11": 50})
        assert counts.expectation_z() == pytest.approx(1.0)

    def test_expectation_z_single_bit(self):
        counts = Counts({"01": 30, "00": 70})
        assert counts.expectation_z([1]) == pytest.approx(0.4)

    def test_expectation_z_empty_raises(self):
        with pytest.raises(ValueError):
            Counts({}).expectation_z()


class TestFromProbabilities:
    def test_from_dict(self):
        counts = Counts.from_probabilities({"0": 0.5, "1": 0.5}, shots=1000, seed=0)
        assert counts.shots == 1000
        assert abs(counts["0"] - 500) < 100

    def test_from_vector(self):
        counts = Counts.from_probabilities(np.array([1.0, 0.0, 0.0, 0.0]), shots=10, seed=1)
        assert dict(counts) == {"00": 10}

    def test_deterministic_with_seed(self):
        a = Counts.from_probabilities({"0": 0.3, "1": 0.7}, shots=100, seed=5)
        b = Counts.from_probabilities({"0": 0.3, "1": 0.7}, shots=100, seed=5)
        assert a == b

    def test_zero_shots(self):
        assert Counts.from_probabilities({"0": 1.0}, shots=0).shots == 0

    def test_unnormalised_distribution_is_renormalised(self):
        counts = Counts.from_probabilities({"0": 2.0, "1": 2.0}, shots=500, seed=2)
        assert counts.shots == 500

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            Counts.from_probabilities({"0": 0.0}, shots=10)

    def test_rejects_negative_shots(self):
        with pytest.raises(ValueError):
            Counts.from_probabilities({"0": 1.0}, shots=-1)
