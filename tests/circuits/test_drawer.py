"""Unit tests for the ASCII circuit drawer."""

from repro.circuits import QuantumCircuit, draw
from repro.teleport import teleportation_circuit


class TestDraw:
    def test_row_count(self):
        circuit = QuantumCircuit(3, 2)
        text = draw(circuit)
        assert len(text.splitlines()) == 5

    def test_gate_labels_present(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0).cx(0, 1).measure(1, 0)
        text = draw(circuit)
        assert "[h]" in text
        assert "⊕" in text
        assert "[M0]" in text

    def test_parametric_gate_shows_angle(self):
        circuit = QuantumCircuit(1)
        circuit.ry(0.5, 0)
        assert "ry(0.5)" in draw(circuit)

    def test_conditional_marker_on_classical_row(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0, condition=(0, 1))
        assert "?=1" in draw(circuit)

    def test_reset_and_initialize_and_barrier(self):
        circuit = QuantumCircuit(1)
        circuit.reset(0)
        circuit.initialize([0, 1], 0)
        circuit.barrier()
        text = draw(circuit)
        assert "[|0>]" in text
        assert "[init]" in text
        assert "░" in text

    def test_column_alignment(self):
        circuit = teleportation_circuit(resource=0.5)
        lines = draw(circuit).splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_empty_circuit(self):
        assert draw(QuantumCircuit(1)) == "q0: "
