"""Unit tests for expectation-value helpers."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import (
    exact_expectation,
    measurement_basis_change,
    sampled_pauli_expectation,
)
from repro.quantum.paulis import PauliString


class TestExactExpectation:
    def test_unitary_circuit(self):
        circuit = QuantumCircuit(1)
        circuit.ry(1.1, 0)
        z = np.diag([1.0, -1.0]).astype(complex)
        assert exact_expectation(circuit, z) == pytest.approx(np.cos(1.1))

    def test_accepts_pauli_string(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        assert exact_expectation(circuit, PauliString("ZZ")) == pytest.approx(1.0)
        assert exact_expectation(circuit, PauliString("XX")) == pytest.approx(1.0)
        assert exact_expectation(circuit, PauliString("ZI")) == pytest.approx(0.0)

    def test_non_unitary_circuit_uses_density_path(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        z = np.diag([1.0, -1.0]).astype(complex)
        assert exact_expectation(circuit, z) == pytest.approx(0.0)


class TestBasisChange:
    def test_z_basis_is_empty(self):
        circuit = measurement_basis_change("Z", 0, 1, 0)
        assert len(circuit) == 0

    def test_x_basis_is_h(self):
        circuit = measurement_basis_change("X", 0, 1, 0)
        assert circuit.count_ops() == {"h": 1}

    def test_y_basis(self):
        circuit = measurement_basis_change("Y", 0, 1, 0)
        assert circuit.count_ops() == {"sdg": 1, "h": 1}

    def test_unknown_basis(self):
        with pytest.raises(SimulationError):
            measurement_basis_change("Q", 0, 1, 0)


class TestSampledExpectation:
    def test_z_observable(self):
        circuit = QuantumCircuit(1)
        circuit.ry(0.9, 0)
        value = sampled_pauli_expectation(circuit, "Z", shots=40_000, seed=0)
        assert value == pytest.approx(np.cos(0.9), abs=0.02)

    def test_x_observable(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        value = sampled_pauli_expectation(circuit, "X", shots=5000, seed=1)
        assert value == pytest.approx(1.0)

    def test_y_observable(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).s(0)
        value = sampled_pauli_expectation(circuit, "Y", shots=5000, seed=2)
        assert value == pytest.approx(1.0)

    def test_two_qubit_parity(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        value = sampled_pauli_expectation(circuit, "ZZ", shots=3000, seed=3)
        assert value == pytest.approx(1.0)

    def test_identity_observable(self):
        circuit = QuantumCircuit(1)
        assert sampled_pauli_expectation(circuit, "I", shots=10, seed=0) == 1.0

    def test_subset_of_qubits(self):
        circuit = QuantumCircuit(2)
        circuit.x(1)
        value = sampled_pauli_expectation(circuit, "Z", shots=1000, qubits=[1], seed=4)
        assert value == pytest.approx(-1.0)

    def test_label_count_mismatch(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(SimulationError):
            sampled_pauli_expectation(circuit, "Z", shots=10, qubits=[0, 1])

    def test_matches_exact_within_statistics(self):
        circuit = QuantumCircuit(2)
        circuit.ry(0.6, 0).cx(0, 1).rz(0.3, 1)
        exact = exact_expectation(circuit, PauliString("ZZ"))
        sampled = sampled_pauli_expectation(circuit, "ZZ", shots=40_000, seed=5)
        assert sampled == pytest.approx(exact, abs=0.02)
