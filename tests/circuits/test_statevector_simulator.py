"""Unit tests for the statevector simulator."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.statevector_simulator import StatevectorSimulator, simulate_statevector
from repro.quantum.random import random_statevector, random_unitary
from repro.quantum.states import Statevector


class TestStatevectorSimulator:
    def test_empty_circuit(self):
        state = simulate_statevector(QuantumCircuit(2))
        assert np.allclose(state.data, Statevector.zero_state(2).data)

    def test_bell_circuit(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        state = simulate_statevector(circuit)
        assert np.allclose(state.data, np.array([1, 0, 0, 1]) / np.sqrt(2))

    def test_ghz_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2)
        state = simulate_statevector(circuit)
        expected = np.zeros(8)
        expected[0] = expected[7] = 1 / np.sqrt(2)
        assert np.allclose(state.data, expected)

    def test_matches_dense_matrix_product(self):
        circuit = QuantumCircuit(3)
        rng = np.random.default_rng(0)
        for _ in range(6):
            qubit = int(rng.integers(3))
            circuit.unitary(random_unitary(2, seed=rng), qubit)
        for _ in range(3):
            a, b = rng.choice(3, size=2, replace=False)
            circuit.cx(int(a), int(b))
        state = simulate_statevector(circuit)
        expected = circuit.to_matrix() @ Statevector.zero_state(3).data
        assert np.allclose(state.data, expected)

    def test_initial_state(self):
        initial = random_statevector(2, seed=1)
        circuit = QuantumCircuit(2)
        circuit.x(0)
        state = simulate_statevector(circuit, initial_state=initial)
        expected = np.kron(np.array([[0, 1], [1, 0]]), np.eye(2)) @ initial.data
        assert np.allclose(state.data, expected)

    def test_initial_state_dimension_mismatch(self):
        with pytest.raises(SimulationError):
            simulate_statevector(QuantumCircuit(2), initial_state=Statevector("0"))

    def test_barriers_ignored(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).barrier().h(0)
        assert np.allclose(simulate_statevector(circuit).data, [1, 0])

    def test_trailing_measurements_tolerated(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        state = simulate_statevector(circuit)
        assert np.allclose(np.abs(state.data) ** 2, [0.5, 0.5])

    def test_gate_after_measurement_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0).x(0)
        with pytest.raises(SimulationError):
            simulate_statevector(circuit)

    def test_reset_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.reset(0)
        with pytest.raises(SimulationError):
            simulate_statevector(circuit)

    def test_conditional_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0, condition=(0, 1))
        with pytest.raises(SimulationError):
            StatevectorSimulator().run(circuit)

    def test_norm_preserved_on_random_circuits(self):
        rng = np.random.default_rng(5)
        for _ in range(5):
            circuit = QuantumCircuit(4)
            for _ in range(10):
                qubit = int(rng.integers(4))
                theta, phi, lam = rng.uniform(0, 2 * np.pi, 3)
                circuit.u(theta, phi, lam, qubit)
            state = simulate_statevector(circuit)
            assert np.linalg.norm(state.data) == pytest.approx(1.0)
