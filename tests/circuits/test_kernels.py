"""Unit tests for the axis-local simulation kernels."""

import numpy as np
import pytest

from repro.circuits import kernels
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.density_matrix_simulator import (
    DensityMatrixSimulator,
    expanded_projectors,
    expanded_reset_kraus,
    _local_initialize_kraus,
)
from repro.circuits.kernels import (
    DEFAULT_KERNEL,
    KERNEL_NAMES,
    PreparedOperator,
    apply_initialize,
    apply_kraus,
    apply_reset,
    apply_unitary,
    apply_unitary_statevector,
    clear_prepared_cache,
    matrix_fingerprint,
    prepare_operator,
    prepared_cache_info,
    project_qubit,
    resolve_kernel,
)
from repro.exceptions import SimulationError
from repro.quantum.states import Statevector
from repro.telemetry.metrics import REGISTRY
from repro.utils.linalg import expand_operator


def random_density(num_qubits: int, seed: int = 0) -> np.ndarray:
    """A full-rank valid density matrix."""
    rng = np.random.default_rng(seed)
    dim = 2**num_qubits
    a = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    rho = a @ a.conj().T
    return rho / np.trace(rho)


def random_unitary(k: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dim = 2**k
    a = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, _ = np.linalg.qr(a)
    return q


class TestResolveKernel:
    def test_default(self):
        assert resolve_kernel(None) == DEFAULT_KERNEL == "einsum"

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_valid_names(self, name):
        assert resolve_kernel(name) == name
        assert resolve_kernel(name.upper()) == name

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError, match="unknown kernel"):
            resolve_kernel("sparse")


class TestPreparedOperatorCache:
    def setup_method(self):
        clear_prepared_cache()

    def test_prepare_returns_matrix_and_dagger(self):
        u = random_unitary(2, seed=1)
        prepared = prepare_operator(u)
        assert isinstance(prepared, PreparedOperator)
        assert prepared.num_qubits == 2
        np.testing.assert_array_equal(prepared.matrix, u)
        np.testing.assert_array_equal(prepared.dagger, u.conj().T)

    def test_cache_hit_returns_same_object(self):
        u = random_unitary(1, seed=2)
        first = prepare_operator(u)
        second = prepare_operator(u.copy())  # equal payload, distinct array
        assert second is first
        info = prepared_cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["size"] == 1

    def test_distinct_payloads_are_distinct_entries(self):
        prepare_operator(random_unitary(1, seed=3))
        prepare_operator(random_unitary(1, seed=4))
        assert prepared_cache_info()["size"] == 2

    def test_fingerprint_covers_shape_and_content(self):
        a = np.eye(2, dtype=complex)
        b = np.eye(4, dtype=complex)
        assert matrix_fingerprint(a) != matrix_fingerprint(b)
        assert matrix_fingerprint(a) == matrix_fingerprint(np.eye(2))

    def test_non_square_rejected(self):
        with pytest.raises(SimulationError, match="square"):
            prepare_operator(np.ones((2, 3)))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(SimulationError, match="power of two"):
            prepare_operator(np.eye(3))

    def test_noise_kraus_share_the_cache(self):
        """Gate unitaries and Kraus operators hit the same LRU entries."""
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        prepare_operator(x)
        before = prepared_cache_info()
        prepare_operator(x)  # the "noise layer" preparing the same payload
        after = prepared_cache_info()
        assert after["hits"] == before["hits"] + 1
        assert after["size"] == before["size"]


class TestApplyUnitary:
    @pytest.mark.parametrize(
        "num_qubits,qubits",
        [(1, [0]), (3, [0]), (3, [2]), (3, [0, 1]), (3, [1, 0]), (4, [0, 3]), (4, [3, 1])],
    )
    def test_matches_dense_sandwich(self, num_qubits, qubits):
        rho = random_density(num_qubits, seed=5)
        u = random_unitary(len(qubits), seed=6)
        full = expand_operator(u, qubits, num_qubits)
        expected = full @ rho @ full.conj().T
        result = apply_unitary(rho, prepare_operator(u), qubits, num_qubits)
        np.testing.assert_allclose(result, expected, atol=1e-12)

    def test_batched_slices_match_serial(self):
        """Each batch slice is bitwise identical to the serial application."""
        num_qubits, qubits = 3, [0, 2]
        u = prepare_operator(random_unitary(2, seed=7))
        stack = np.stack([random_density(num_qubits, seed=s) for s in range(4)])
        batched = apply_unitary(stack, u, qubits, num_qubits)
        for index in range(stack.shape[0]):
            serial = apply_unitary(stack[index], u, qubits, num_qubits)
            np.testing.assert_array_equal(batched[index], serial)

    def test_per_slice_operator_stack(self):
        num_qubits, qubits = 2, [1]
        stack = np.stack([random_density(num_qubits, seed=s) for s in range(3)])
        operators = np.stack([random_unitary(1, seed=10 + s) for s in range(3)])
        batched = apply_unitary(stack, operators, qubits, num_qubits)
        for index in range(3):
            full = expand_operator(operators[index], qubits, num_qubits)
            expected = full @ stack[index] @ full.conj().T
            np.testing.assert_allclose(batched[index], expected, atol=1e-12)

    def test_rejects_bad_rank(self):
        with pytest.raises(SimulationError, match="batch axis"):
            apply_unitary(np.zeros((2, 2, 2, 2)), prepare_operator(np.eye(2)), [0], 1)


class TestApplyKraus:
    def test_matches_dense_accumulation(self):
        num_qubits, qubits = 3, [1, 2]
        rho = random_density(num_qubits, seed=8)
        p = 0.1
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        kraus = [np.sqrt(1 - p) * np.eye(4, dtype=complex), np.sqrt(p) * np.kron(x, x)]
        expected = sum(
            expand_operator(k, qubits, num_qubits) @ rho @ expand_operator(k, qubits, num_qubits).conj().T
            for k in kraus
        )
        result = apply_kraus(rho, [prepare_operator(k) for k in kraus], qubits, num_qubits)
        np.testing.assert_allclose(result, expected, atol=1e-12)

    def test_empty_kraus_rejected(self):
        with pytest.raises(SimulationError, match="at least one"):
            apply_kraus(random_density(1), [], [0], 1)


class TestProjectAndReset:
    @pytest.mark.parametrize("num_qubits,qubit", [(1, 0), (3, 0), (3, 1), (3, 2)])
    def test_project_bitwise_matches_dense(self, num_qubits, qubit):
        rho = random_density(num_qubits, seed=9)
        p0, p1 = expanded_projectors(qubit, num_qubits)
        piece0, piece1 = project_qubit(rho, qubit, num_qubits)
        np.testing.assert_array_equal(piece0, p0 @ rho @ p0)
        np.testing.assert_array_equal(piece1, p1 @ rho @ p1)

    @pytest.mark.parametrize("num_qubits,qubit", [(1, 0), (3, 0), (3, 1), (3, 2)])
    def test_reset_bitwise_matches_dense(self, num_qubits, qubit):
        rho = random_density(num_qubits, seed=10)
        k0, k1 = expanded_reset_kraus(qubit, num_qubits)
        expected = k0 @ rho @ k0.conj().T + k1 @ rho @ k1.conj().T
        np.testing.assert_array_equal(apply_reset(rho, qubit, num_qubits), expected)

    def test_batched_project_matches_serial(self):
        stack = np.stack([random_density(2, seed=s) for s in range(3)])
        batched0, batched1 = project_qubit(stack, 1, 2)
        for index in range(3):
            serial0, serial1 = project_qubit(stack[index], 1, 2)
            np.testing.assert_array_equal(batched0[index], serial0)
            np.testing.assert_array_equal(batched1[index], serial1)


class TestApplyInitialize:
    @pytest.mark.parametrize(
        "num_qubits,qubits", [(1, [0]), (3, [1]), (3, [0, 2]), (3, [2, 0]), (2, [0, 1])]
    )
    def test_matches_dense_channel(self, num_qubits, qubits):
        rng = np.random.default_rng(11)
        rho = random_density(num_qubits, seed=12)
        target = rng.normal(size=2 ** len(qubits)) + 1j * rng.normal(size=2 ** len(qubits))
        target = target / np.linalg.norm(target)
        kraus_full = [
            expand_operator(k, qubits, num_qubits) for k in _local_initialize_kraus(target)
        ]
        expected = sum(k @ rho @ k.conj().T for k in kraus_full)
        result = apply_initialize(rho, target, qubits, num_qubits)
        np.testing.assert_allclose(result, expected, atol=1e-12)
        # The channel output is the target pure state on the initialised
        # qubits, tensored with the marginal of the rest.
        assert np.isclose(np.trace(result).real, 1.0)

    def test_batched_targets(self):
        stack = np.stack([random_density(2, seed=s) for s in range(3)])
        rng = np.random.default_rng(13)
        targets = rng.normal(size=(3, 2)) + 1j * rng.normal(size=(3, 2))
        targets /= np.linalg.norm(targets, axis=1, keepdims=True)
        batched = apply_initialize(stack, targets, [0], 2)
        for index in range(3):
            serial = apply_initialize(stack[index], targets[index], [0], 2)
            np.testing.assert_array_equal(batched[index], serial)


class TestStatevectorKernel:
    @pytest.mark.parametrize("num_qubits,qubits", [(1, [0]), (3, [1]), (3, [2, 0]), (4, [1, 3])])
    def test_matches_evolve_bitwise(self, num_qubits, qubits):
        """The kernel is arithmetically identical to Statevector.evolve."""
        rng = np.random.default_rng(14)
        state = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
        state = state / np.linalg.norm(state)
        u = random_unitary(len(qubits), seed=15)
        expected = Statevector(state).evolve(u, qubits).data
        result = apply_unitary_statevector(state, prepare_operator(u), qubits, num_qubits)
        np.testing.assert_array_equal(result, expected)


class TestMeasurementExpansionCache:
    """Regression: repeated mid-circuit measurement must not re-expand."""

    def test_repeated_measurement_hits_projector_cache(self):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        for _ in range(8):
            circuit.measure(0, 0)
            circuit.measure(1, 1)
        before = expanded_projectors.cache_info()
        DensityMatrixSimulator(kernel="dense").run(circuit)
        after = expanded_projectors.cache_info()
        # 16 measure instructions touched only two (qubit, num_qubits) pairs.
        assert after.misses - before.misses <= 2
        assert after.hits > before.hits

    def test_repeated_reset_hits_kraus_cache(self):
        circuit = QuantumCircuit(2, 0)
        circuit.h(0)
        for _ in range(6):
            circuit.reset(0)
        before = expanded_reset_kraus.cache_info()
        DensityMatrixSimulator(kernel="dense").run(circuit)
        after = expanded_reset_kraus.cache_info()
        assert after.misses - before.misses <= 1

    def test_einsum_measurement_builds_no_projectors(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        before = expanded_projectors.cache_info()
        DensityMatrixSimulator(kernel="einsum").run(circuit)
        after = expanded_projectors.cache_info()
        assert after.misses == before.misses
        assert after.hits == before.hits


class TestLocalInitializeKraus:
    def test_matches_outer_product_construction(self):
        rng = np.random.default_rng(16)
        target = rng.normal(size=4) + 1j * rng.normal(size=4)
        target = target / np.linalg.norm(target)
        basis = np.eye(4)
        for j, kraus in enumerate(_local_initialize_kraus(target)):
            np.testing.assert_array_equal(kraus, np.outer(target, basis[j]))


class TestKernelTelemetry:
    def test_gate_application_instruments_recorded(self):
        circuit = QuantumCircuit(2, 0)
        circuit.h(0)
        circuit.cx(0, 1)
        for kernel in KERNEL_NAMES:
            DensityMatrixSimulator(kernel=kernel).run(circuit)
        text = REGISTRY.render()
        assert 'repro_kernel_gate_applications_total{kernel="einsum",arity="1"}' in text
        assert 'repro_kernel_gate_applications_total{kernel="einsum",arity="2"}' in text
        assert 'repro_kernel_gate_applications_total{kernel="dense",arity="1"}' in text
        assert "repro_kernel_gate_seconds_bucket" in text
        assert 'repro_kernel_gate_seconds_count{kernel="einsum"}' in text
