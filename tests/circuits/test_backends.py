"""Unit tests for the execution-backend layer (serial / vectorized / process-pool)."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.circuits import (
    BACKEND_NAMES,
    BatchedDensityMatrixSimulator,
    DensityMatrixSimulator,
    DistributionCache,
    ProcessPoolBackend,
    QuantumCircuit,
    SerialBackend,
    SimulatorBackend,
    VectorizedBackend,
    circuit_fingerprint,
    resolve_backend,
    structure_signature,
)

# Fork-heavy suite (process-pool backends): keep on one xdist worker
# under ``pytest -n auto --dist loadgroup``.
pytestmark = pytest.mark.xdist_group("forkheavy")


def _measured_rotation(theta: float) -> QuantumCircuit:
    circuit = QuantumCircuit(2, 2, name=f"rot_{theta}")
    circuit.ry(theta, 0).cx(0, 1).measure(0, 0).measure(1, 1)
    return circuit


def _teleport_style(theta: float) -> QuantumCircuit:
    """A mid-circuit-measurement circuit with feed-forward corrections."""
    circuit = QuantumCircuit(2, 2, name=f"tele_{theta}")
    circuit.ry(theta, 0).h(1).cx(1, 0)
    circuit.measure(0, 0)
    circuit.x(1, condition=(0, 1))
    circuit.h(1).measure(1, 1)
    return circuit


BATCH = [_measured_rotation(t) for t in (0.1, 0.8, 1.7, 2.9)]


class TestCircuitFingerprint:
    def test_identical_circuits_share_fingerprint(self):
        assert circuit_fingerprint(_measured_rotation(0.3)) == circuit_fingerprint(
            _measured_rotation(0.3)
        )

    def test_name_is_cosmetic(self):
        a = _measured_rotation(0.3)
        b = _measured_rotation(0.3)
        b.name = "renamed"
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_matrix_payload_matters(self):
        assert circuit_fingerprint(_measured_rotation(0.3)) != circuit_fingerprint(
            _measured_rotation(0.4)
        )

    def test_condition_matters(self):
        a = QuantumCircuit(1, 1).measure(0, 0)
        a.x(0)
        b = QuantumCircuit(1, 1).measure(0, 0)
        b.x(0, condition=(0, 1))
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_barriers_ignored(self):
        a = _measured_rotation(0.3)
        b = QuantumCircuit(2, 2)
        b.ry(0.3, 0).barrier().cx(0, 1).measure(0, 0).measure(1, 1)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)


class TestStructureSignature:
    def test_same_structure_different_payload(self):
        assert structure_signature(_measured_rotation(0.1)) == structure_signature(
            _measured_rotation(2.2)
        )

    def test_different_targets_differ(self):
        a = QuantumCircuit(2, 1).h(0).measure(0, 0)
        b = QuantumCircuit(2, 1).h(1).measure(1, 0)
        assert structure_signature(a) != structure_signature(b)


class TestBatchedSimulator:
    def test_matches_serial_per_circuit(self):
        batched = BatchedDensityMatrixSimulator().run_group(BATCH)
        serial = DensityMatrixSimulator()
        for circuit, distribution in zip(BATCH, batched):
            expected = serial.run(circuit).classical_distribution()
            assert list(distribution.keys()) == list(expected.keys())
            for key in expected:
                assert distribution[key] == expected[key]

    def test_feed_forward_matches_serial(self):
        circuits = [_teleport_style(t) for t in (0.2, 1.1, 2.6)]
        batched = BatchedDensityMatrixSimulator().run_group(circuits)
        serial = DensityMatrixSimulator()
        for circuit, distribution in zip(circuits, batched):
            expected = serial.run(circuit).classical_distribution()
            assert distribution.keys() == expected.keys()
            for key in expected:
                assert distribution[key] == pytest.approx(expected[key], abs=1e-12)

    def test_initialize_and_reset_match_serial(self):
        circuits = []
        for seed in (0, 1, 2):
            rng = np.random.default_rng(seed)
            vector = rng.normal(size=2) + 1j * rng.normal(size=2)
            vector /= np.linalg.norm(vector)
            circuit = QuantumCircuit(2, 1, name=f"init_{seed}")
            circuit.initialize(vector, 0)
            circuit.cx(0, 1).reset(0).measure(1, 0)
            circuits.append(circuit)
        batched = BatchedDensityMatrixSimulator().run_group(circuits)
        serial = DensityMatrixSimulator()
        for circuit, distribution in zip(circuits, batched):
            expected = serial.run(circuit).classical_distribution()
            assert distribution.keys() == expected.keys()
            for key in expected:
                assert distribution[key] == expected[key]

    def test_threshold_pruning_matches_serial(self):
        """Regression: measurement pieces below the serial pruning threshold
        must be zeroed per circuit, not kept alive because another batch
        member is above threshold (the merged branch would otherwise differ
        from the serial simulator in the last ulp)."""
        def near_deterministic(amplitude: float) -> QuantumCircuit:
            vector = np.array([np.sqrt(1 - amplitude**2), amplitude], dtype=complex)
            circuit = QuantumCircuit(1, 2, name=f"weak_{amplitude}")
            circuit.initialize(vector, 0)
            circuit.measure(0, 0)
            circuit.reset(0)
            circuit.ry(2e-8, 0)
            circuit.measure(0, 1)
            return circuit

        circuits = [near_deterministic(9e-9), near_deterministic(0.6)]
        batched = BatchedDensityMatrixSimulator().run_group(circuits)
        serial = DensityMatrixSimulator()
        for circuit, distribution in zip(circuits, batched):
            expected = serial.run(circuit).classical_distribution()
            assert distribution.keys() == expected.keys()
            for key in expected:
                assert distribution[key] == expected[key]

    def test_rejects_mixed_structures(self):
        other = QuantumCircuit(2, 2).h(0).measure(0, 0).measure(1, 1)
        with pytest.raises(SimulationError):
            BatchedDensityMatrixSimulator().run_group([BATCH[0], other])

    def test_empty_group(self):
        assert BatchedDensityMatrixSimulator().run_group([]) == []


class TestDistributionCache:
    def test_hit_and_miss_counting(self):
        cache = DistributionCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", {"0": 1.0})
        assert cache.get("a") == {"0": 1.0}
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = DistributionCache(maxsize=2)
        cache.put("a", {"0": 1.0})
        cache.put("b", {"1": 1.0})
        cache.get("a")  # refresh a
        cache.put("c", {"0": 0.5})
        assert cache.get("b") is None  # evicted
        assert cache.get("a") is not None
        assert len(cache) == 2

    def test_zero_size_disables_storage(self):
        cache = DistributionCache(maxsize=0)
        cache.put("a", {"0": 1.0})
        assert cache.get("a") is None

    def test_clear(self):
        cache = DistributionCache()
        cache.put("a", {"0": 1.0})
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_vectorized_backend_uses_cache(self):
        cache = DistributionCache()
        backend = VectorizedBackend(cache=cache)
        backend.exact_distributions(BATCH)
        misses = cache.misses
        backend.exact_distributions(BATCH)
        assert cache.misses == misses  # second pass is all hits
        assert cache.hits >= len(BATCH)

    def test_duplicate_circuits_simulated_once(self):
        cache = DistributionCache()
        backend = VectorizedBackend(cache=cache)
        duplicated = [BATCH[0], _measured_rotation(0.1), BATCH[0]]
        distributions = backend.exact_distributions(duplicated)
        assert distributions[0] == distributions[1] == distributions[2]
        # All three circuits collapse onto one fingerprint: one simulation,
        # one cache entry.
        assert len(cache) == 1


class TestRunBatch:
    def test_serial_matches_vectorized_bitwise(self):
        shots = [100, 250, 0, 999]
        serial = SerialBackend().run_batch(BATCH, shots, seed=7)
        vectorized = VectorizedBackend(cache=DistributionCache()).run_batch(BATCH, shots, seed=7)
        assert serial == vectorized

    def test_order_independence_of_streams(self):
        """Each circuit owns its child stream, so results follow the circuit."""
        shots = [300] * len(BATCH)
        forward = VectorizedBackend(cache=DistributionCache()).run_batch(BATCH, shots, seed=3)
        assert forward[0].shots == 300
        again = VectorizedBackend(cache=DistributionCache()).run_batch(BATCH, shots, seed=3)
        assert forward == again

    def test_zero_shot_entries(self):
        counts = SerialBackend().run_batch([BATCH[0]], [0], seed=1)
        assert counts[0].shots == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            SerialBackend().run_batch(BATCH, [10], seed=1)

    def test_negative_shots_rejected(self):
        with pytest.raises(ValueError):
            SerialBackend().run_batch([BATCH[0]], [-1], seed=1)

    @pytest.mark.slow
    def test_process_pool_matches_serial(self):
        shots = [128] * len(BATCH)
        pool = ProcessPoolBackend(max_workers=2, chunk_size=2)
        serial = SerialBackend()
        assert pool.run_batch(BATCH, shots, seed=5) == serial.run_batch(BATCH, shots, seed=5)

    def test_process_pool_single_chunk_inline(self):
        pool = ProcessPoolBackend(max_workers=2, chunk_size=len(BATCH))
        serial = SerialBackend()
        shots = [64] * len(BATCH)
        assert pool.run_batch(BATCH, shots, seed=5) == serial.run_batch(BATCH, shots, seed=5)

    def test_process_pool_generator_seed_single_chunk(self):
        """Regression: a generator seed must not be consumed twice on the
        single-chunk fallback (previously children were re-derived from the
        already-advanced generator, breaking cross-backend determinism)."""
        shots = [64] * len(BATCH)
        serial = SerialBackend().run_batch(BATCH, shots, seed=np.random.default_rng(5))
        pool = ProcessPoolBackend(max_workers=1).run_batch(
            BATCH, shots, seed=np.random.default_rng(5)
        )
        assert pool == serial


class TestResolveBackend:
    def test_names(self):
        assert set(BACKEND_NAMES) == {"serial", "vectorized", "process-pool"}
        for name in BACKEND_NAMES:
            backend = resolve_backend(name)
            assert isinstance(backend, SimulatorBackend)
            assert backend.name == name

    def test_none_is_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_underscore_alias(self):
        assert isinstance(resolve_backend("process_pool"), ProcessPoolBackend)

    def test_instance_passthrough(self):
        backend = VectorizedBackend(cache=DistributionCache())
        assert resolve_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(SimulationError):
            resolve_backend("quantum-cloud")

    def test_trajectory_requires_serial(self):
        backend = resolve_backend(None, method="trajectory")
        assert isinstance(backend, SerialBackend) and backend.method == "trajectory"
        with pytest.raises(SimulationError):
            resolve_backend("vectorized", method="trajectory")
        with pytest.raises(SimulationError):
            resolve_backend(VectorizedBackend(), method="trajectory")

    def test_method_mismatch_on_serial_instance_rejected(self):
        """A trajectory request must not be silently downgraded by an
        exact-method SerialBackend instance."""
        with pytest.raises(SimulationError):
            resolve_backend(SerialBackend(method="exact"), method="trajectory")
        trajectory = SerialBackend(method="trajectory")
        assert resolve_backend(trajectory, method="trajectory") is trajectory

    def test_zero_shot_circuits_not_simulated(self):
        cache = DistributionCache()
        backend = VectorizedBackend(cache=cache)
        counts = backend.run_batch(BATCH, [0, 50, 0, 0], seed=2)
        assert [c.shots for c in counts] == [0, 50, 0, 0]
        # Only the sampled circuit's distribution was computed and cached.
        assert len(cache) == 1

    def test_invalid_pool_parameters(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(chunk_size=0)
