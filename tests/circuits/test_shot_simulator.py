"""Unit tests for the shot simulator (exact and trajectory methods)."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.shot_simulator import ShotSimulator, run_and_sample
from repro.quantum.random import random_statevector


def _bell_measured() -> QuantumCircuit:
    circuit = QuantumCircuit(2, 2)
    circuit.h(0).cx(0, 1).measure(0, 0).measure(1, 1)
    return circuit


class TestShotSimulatorExact:
    def test_deterministic_circuit(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0).measure(0, 0)
        counts = run_and_sample(circuit, 100, seed=0)
        assert dict(counts) == {"1": 100}

    def test_bell_correlations(self):
        counts = run_and_sample(_bell_measured(), 2000, seed=1)
        assert set(counts.keys()) <= {"00", "11"}
        assert abs(counts["00"] - 1000) < 150

    def test_reproducible_with_seed(self):
        a = run_and_sample(_bell_measured(), 500, seed=3)
        b = run_and_sample(_bell_measured(), 500, seed=3)
        assert a == b

    def test_zero_shots(self):
        counts = run_and_sample(_bell_measured(), 0, seed=0)
        assert counts.shots == 0

    def test_negative_shots(self):
        with pytest.raises(ValueError):
            run_and_sample(_bell_measured(), -5)

    def test_requires_clbits(self):
        with pytest.raises(SimulationError):
            run_and_sample(QuantumCircuit(1), 10)

    def test_unknown_method(self):
        with pytest.raises(SimulationError):
            ShotSimulator(method="magic")

    def test_total_shots_preserved(self):
        counts = run_and_sample(_bell_measured(), 1234, seed=9)
        assert counts.shots == 1234

    def test_partial_measurement(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0).cx(0, 1).measure(1, 0)
        counts = run_and_sample(circuit, 4000, seed=2)
        assert abs(counts["0"] - 2000) < 200

    def test_initial_state(self):
        state = random_statevector(1, seed=5)
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        counts = run_and_sample(circuit, 20_000, seed=6, initial_state=state)
        expected_p1 = abs(state.data[1]) ** 2
        assert counts["1"] / counts.shots == pytest.approx(expected_p1, abs=0.02)


class TestShotSimulatorTrajectory:
    def test_deterministic_circuit(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0).measure(0, 0)
        counts = run_and_sample(circuit, 50, seed=0, method="trajectory")
        assert dict(counts) == {"1": 50}

    def test_bell_correlations(self):
        counts = run_and_sample(_bell_measured(), 400, seed=1, method="trajectory")
        assert set(counts.keys()) <= {"00", "11"}

    def test_feedforward(self):
        # Measure a |1> qubit and conditionally flip the second: outcome always "1" then "1".
        circuit = QuantumCircuit(2, 2)
        circuit.x(0).measure(0, 0)
        circuit.x(1, condition=(0, 1))
        circuit.measure(1, 1)
        counts = run_and_sample(circuit, 100, seed=2, method="trajectory")
        assert dict(counts) == {"11": 100}

    def test_reset(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).reset(0).measure(0, 0)
        counts = run_and_sample(circuit, 100, seed=3, method="trajectory")
        assert dict(counts) == {"0": 100}

    def test_initialize(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.initialize(np.array([0, 1]), 0)
        circuit.measure(0, 0)
        counts = run_and_sample(circuit, 100, seed=4, method="trajectory")
        assert dict(counts) == {"1": 100}

    def test_agrees_with_exact_on_teleportation(self):
        # The marginal distribution of the receiver's Z measurement must agree
        # between the two methods (within sampling error).
        message = random_statevector(1, seed=7)
        from repro.teleport import teleportation_circuit

        base = teleportation_circuit(message_state=message, resource=1.0)
        circuit = QuantumCircuit(3, 3)
        circuit.compose(base, inplace=True)
        circuit.measure(2, 2)

        exact = run_and_sample(circuit, 6000, seed=8, method="exact").marginal([2])
        trajectory = run_and_sample(circuit, 1500, seed=9, method="trajectory").marginal([2])
        p_exact = exact["1"] / exact.shots
        p_trajectory = trajectory["1"] / trajectory.shots
        assert p_exact == pytest.approx(p_trajectory, abs=0.06)
