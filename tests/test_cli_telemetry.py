"""CLI telemetry surfaces: ``trace show``, ``cut run --profile``, log flags."""

import json

from repro.cli import build_parser, main


class TestParser:
    def test_global_log_flags_parse_before_the_command(self):
        args = build_parser().parse_args(["--log-level", "debug", "--json-logs", "protocols"])
        assert args.log_level == "debug" and args.json_logs

    def test_trace_show_requires_a_store(self, capsys):
        try:
            build_parser().parse_args(["trace", "show", "abc123"])
        except SystemExit as error:
            assert error.code == 2
        else:  # pragma: no cover - argparse must reject
            raise AssertionError("--store must be required")


class TestTraceShow:
    def _stored_run(self, tmp_path, extra=()):
        store_dir = str(tmp_path / "store")
        assert (
            main(
                [
                    "cut",
                    "run",
                    "--qubits",
                    "3",
                    "--width",
                    "2",
                    "--shots",
                    "400",
                    "--seed",
                    "5",
                    "--store",
                    store_dir,
                    *extra,
                ]
            )
            == 0
        )
        return store_dir

    def test_trace_show_renders_the_stored_tree(self, capsys, tmp_path):
        store_dir = self._stored_run(tmp_path)
        out = capsys.readouterr().out
        fingerprint = out.split()[1]
        assert main(["trace", "show", fingerprint, "--store", store_dir]) == 0
        rendered = capsys.readouterr().out
        assert f"trace {fingerprint}" in rendered
        for stage in ("job", "plan", "decompose", "execute", "reconstruct"):
            assert stage in rendered
        assert "wall=" in rendered and "self=" in rendered
        assert "orphan" not in rendered

    def test_trace_show_with_profile_renders_both(self, capsys, tmp_path):
        store_dir = self._stored_run(tmp_path, extra=["--profile"])
        out = capsys.readouterr().out
        fingerprint = out.split()[1]
        # The stored run itself printed the profile summary.
        assert "stage execute:" in out
        assert main(["trace", "show", fingerprint, "--store", store_dir, "--profile"]) == 0
        rendered = capsys.readouterr().out
        assert f"trace {fingerprint}" in rendered
        assert "stage execute:" in rendered

    def test_missing_trace_fails_cleanly(self, capsys, tmp_path):
        store_dir = str(tmp_path / "empty")
        assert main(["trace", "show", "deadbeef", "--store", store_dir]) == 1
        assert "no trace stored" in capsys.readouterr().out


class TestProfileFlag:
    def test_unstored_cut_run_profile_prints_stage_summaries(self, capsys):
        assert (
            main(["cut", "run", "--qubits", "3", "--width", "2", "--shots", "300", "--profile"])
            == 0
        )
        out = capsys.readouterr().out
        assert "reconstruct: <ZZZ>" in out
        for stage in ("stage plan:", "stage decompose:", "stage execute:", "stage reconstruct:"):
            assert stage in out


class TestLogFlags:
    def test_json_logs_make_progress_machine_readable(self, capsys):
        code = main(
            [
                "--json-logs",
                "cut",
                "run",
                "--qubits",
                "4",
                "--width",
                "3",
                "--mode",
                "adaptive",
                "--target-error",
                "0.08",
                "--max-shots",
                "50000",
                "--seed",
                "7",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        round_lines = [
            json.loads(line) for line in captured.err.splitlines() if '"round 1:' in line
        ]
        assert round_lines and round_lines[0]["logger"] == "repro.cli"
        assert round_lines[0]["level"] == "info"

    def test_log_level_error_silences_round_progress(self, capsys):
        code = main(
            [
                "--log-level",
                "error",
                "cut",
                "run",
                "--qubits",
                "4",
                "--width",
                "3",
                "--mode",
                "adaptive",
                "--target-error",
                "0.08",
                "--max-shots",
                "50000",
                "--seed",
                "7",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "round 1:" not in captured.err
        assert "adaptive rounds" in captured.out
