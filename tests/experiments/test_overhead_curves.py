"""Unit tests for the analytic overhead/resource tables."""

import numpy as np
import pytest

from repro.experiments.overhead_curves import (
    overhead_vs_entanglement,
    protocol_comparison,
    resource_consumption,
)


class TestOverheadVsEntanglement:
    def test_default_grid(self):
        table = overhead_vs_entanglement()
        assert table.num_rows == 11

    def test_theorem_and_corollary_agree(self):
        table = overhead_vs_entanglement()
        assert np.allclose(table.columns["gamma_theorem1"], table.columns["gamma_corollary1"])

    def test_constructed_kappa_attains_optimum(self):
        table = overhead_vs_entanglement()
        assert np.allclose(table.columns["gamma_theorem1"], table.columns["kappa_constructed"])

    def test_endpoints(self):
        table = overhead_vs_entanglement(overlaps=(0.5, 1.0))
        assert table.columns["gamma_theorem1"][0] == pytest.approx(3.0)
        assert table.columns["gamma_theorem1"][1] == pytest.approx(1.0)

    def test_k_column_consistent(self):
        table = overhead_vs_entanglement(overlaps=(0.9,))
        k = table.columns["k"][0]
        assert (k + 1) ** 2 / (2 * (k * k + 1)) == pytest.approx(0.9)


class TestProtocolComparison:
    def test_rows(self):
        table = protocol_comparison()
        assert table.num_rows == 6
        assert "peng" in table.columns["protocol"]

    def test_kappa_matches_theory_column(self):
        table = protocol_comparison()
        assert np.allclose(table.columns["kappa"], table.columns["kappa_theory"])

    def test_entanglement_flags(self):
        table = protocol_comparison()
        flags = dict(zip(table.columns["protocol"], table.columns["uses_entanglement"]))
        assert flags["peng"] is False
        assert flags["harada"] is False
        assert flags["teleportation"] is True
        assert flags["nme(f=0.9)"] is True


class TestResourceConsumption:
    def test_identity_between_columns(self):
        table = resource_consumption()
        assert np.allclose(
            table.columns["pairs_proportionality_2a"], table.columns["inverse_overlap"]
        )

    def test_monotone_decrease(self):
        table = resource_consumption()
        assert np.all(np.diff(table.columns["pairs_proportionality_2a"]) <= 1e-12)

    def test_k_one_value(self):
        table = resource_consumption(k_values=(1.0,))
        assert table.columns["pairs_proportionality_2a"][0] == pytest.approx(1.0)
        assert table.columns["expected_pairs_per_shot"][0] == pytest.approx(1.0)
