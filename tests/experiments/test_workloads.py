"""Unit tests for the experiment workload generators."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.circuits.statevector_simulator import simulate_statevector
from repro.experiments.workloads import (
    ghz_circuit,
    random_layered_circuit,
    random_single_qubit_states,
    state_preparation_circuit,
)
from repro.quantum.measures import state_fidelity


class TestRandomStateWorkload:
    def test_count(self):
        workload = random_single_qubit_states(20, seed=0)
        assert len(workload) == 20
        assert len(workload.unitaries) == 20

    def test_reproducible(self):
        a = random_single_qubit_states(5, seed=3)
        b = random_single_qubit_states(5, seed=3)
        for state_a, state_b in zip(a.states, b.states):
            assert np.allclose(state_a.data, state_b.data)

    def test_states_match_unitaries(self):
        workload = random_single_qubit_states(4, seed=1)
        for state, unitary in zip(workload.states, workload.unitaries):
            assert np.allclose(state.data, unitary[:, 0])

    def test_exact_z_expectations(self):
        workload = random_single_qubit_states(10, seed=2)
        values = workload.exact_z_expectations()
        assert values.shape == (10,)
        assert np.all(np.abs(values) <= 1.0 + 1e-12)

    def test_negative_count(self):
        with pytest.raises(ExperimentError):
            random_single_qubit_states(-1)

    def test_seed_recorded(self):
        assert random_single_qubit_states(1, seed=7).seed == 7


class TestStatePreparationCircuit:
    def test_prepares_workload_state(self):
        workload = random_single_qubit_states(3, seed=5)
        for state, unitary in zip(workload.states, workload.unitaries):
            circuit = state_preparation_circuit(unitary)
            assert state_fidelity(simulate_statevector(circuit), state) == pytest.approx(1.0)

    def test_single_instruction(self):
        workload = random_single_qubit_states(1, seed=6)
        circuit = state_preparation_circuit(workload.unitaries[0])
        assert len(circuit) == 1 and circuit.num_qubits == 1


class TestRandomLayeredCircuit:
    def test_structure(self):
        circuit = random_layered_circuit(4, 3, seed=0)
        ops = circuit.count_ops()
        assert ops["u"] == 12
        assert circuit.is_unitary_only()

    def test_entangling_gate_choice(self):
        assert "cz" in random_layered_circuit(3, 1, seed=1).count_ops()
        assert "cx" in random_layered_circuit(3, 1, seed=1, two_qubit_gate="cx").count_ops()
        assert "rzz" in random_layered_circuit(3, 1, seed=1, two_qubit_gate="rzz").count_ops()

    def test_unknown_gate(self):
        with pytest.raises(ExperimentError):
            random_layered_circuit(2, 1, two_qubit_gate="iswap")

    def test_zero_depth(self):
        assert len(random_layered_circuit(3, 0)) == 0

    def test_invalid_sizes(self):
        with pytest.raises(ExperimentError):
            random_layered_circuit(0, 1)
        with pytest.raises(ExperimentError):
            random_layered_circuit(2, -1)

    def test_reproducible(self):
        a = random_layered_circuit(3, 2, seed=9)
        b = random_layered_circuit(3, 2, seed=9)
        assert np.allclose(a.to_matrix(), b.to_matrix())


class TestGHZ:
    def test_state(self):
        state = simulate_statevector(ghz_circuit(3))
        expected = np.zeros(8)
        expected[0] = expected[-1] = 1 / np.sqrt(2)
        assert np.allclose(state.data, expected)

    def test_minimum_size(self):
        with pytest.raises(ExperimentError):
            ghz_circuit(1)
