"""Unit tests for the ablation experiments (reduced sizes for speed)."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    allocation_strategy_ablation,
    gate_vs_wire_cut,
    noisy_resource_ablation,
    protocol_error_comparison,
)


class TestAllocationAblation:
    def test_structure(self):
        table = allocation_strategy_ablation(num_states=6, shots=500, seed=0)
        assert table.num_rows == 3
        assert set(table.columns["strategy"]) == {"proportional", "multinomial", "uniform"}

    def test_errors_positive(self):
        table = allocation_strategy_ablation(num_states=5, shots=400, seed=1)
        assert all(e >= 0 for e in table.columns["mean_error"])

    def test_custom_strategies(self):
        table = allocation_strategy_ablation(
            num_states=4, shots=300, strategies=("proportional",), seed=2
        )
        assert table.num_rows == 1


class TestProtocolComparisonAblation:
    def test_structure(self):
        table = protocol_error_comparison(num_states=6, shots=800, seed=3)
        assert table.num_rows == 5
        kappas = dict(zip(table.columns["protocol"], table.columns["kappa"]))
        assert kappas["peng"] == pytest.approx(4.0)
        assert kappas["teleportation"] == pytest.approx(1.0)

    def test_errors_bounded(self):
        table = protocol_error_comparison(num_states=5, shots=600, seed=4)
        assert all(0 <= e <= 1.0 for e in table.columns["mean_error"])


class TestGateVsWire:
    def test_structure_and_kappas(self):
        table = gate_vs_wire_cut(shots=1500, seed=5)
        assert set(table.columns["method"]) == {"gate-cut-cz", "wire-harada", "wire-nme(f=0.9)"}
        kappas = dict(zip(table.columns["method"], table.columns["kappa"]))
        assert kappas["gate-cut-cz"] == pytest.approx(3.0)

    def test_exact_values_consistent(self):
        table = gate_vs_wire_cut(shots=1000, seed=6)
        exact_values = table.columns["exact"]
        assert np.allclose(exact_values, exact_values[0])


class TestNoisyResourceAblation:
    def test_structure(self):
        table = noisy_resource_ablation(k=0.5, noise_levels=(0.0, 0.1))
        assert table.num_rows == 2

    def test_monotone_bias(self):
        table = noisy_resource_ablation(k=0.5, noise_levels=(0.0, 0.05, 0.15))
        assert table.columns["bias_norm"][0] == pytest.approx(0.0, abs=1e-9)
        assert np.all(np.diff(table.columns["bias_norm"]) > -1e-12)

    def test_pure_overhead_constant(self):
        table = noisy_resource_ablation(k=0.3, noise_levels=(0.0, 0.2))
        assert table.columns["pure_overhead"][0] == table.columns["pure_overhead"][1]
