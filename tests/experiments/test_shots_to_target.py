"""Unit tests for the shots-to-target-accuracy experiment."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.shots_to_target import ShotsToTargetConfig, shots_to_target_error


class TestConfig:
    def test_defaults_valid(self):
        ShotsToTargetConfig().validate()

    def test_invalid_target(self):
        with pytest.raises(ExperimentError):
            ShotsToTargetConfig(target_error=0.0).validate()

    def test_budgets_must_increase(self):
        with pytest.raises(ExperimentError):
            ShotsToTargetConfig(candidate_budgets=(400, 100)).validate()

    def test_invalid_overlap(self):
        with pytest.raises(ExperimentError):
            ShotsToTargetConfig(overlaps=(0.3,)).validate()

    def test_invalid_num_states(self):
        with pytest.raises(ExperimentError):
            ShotsToTargetConfig(num_states=0).validate()


class TestRun:
    @pytest.fixture(scope="class")
    def table(self):
        config = ShotsToTargetConfig(
            target_error=0.08,
            overlaps=(0.5, 1.0),
            num_states=12,
            candidate_budgets=(100, 400, 1600, 6400),
            seed=5,
        )
        return shots_to_target_error(config)

    def test_structure(self, table):
        assert table.num_rows == 2
        assert set(table.columns) == {
            "overlap_f",
            "kappa",
            "shots_needed",
            "measured_error",
            "relative_shots_predicted",
        }

    def test_targets_reached(self, table):
        assert all(s > 0 for s in table.columns["shots_needed"])
        assert all(e <= 0.08 for e in table.columns["measured_error"])

    def test_entanglement_needs_fewer_shots(self, table):
        shots = dict(zip(table.columns["overlap_f"], table.columns["shots_needed"]))
        assert shots[0.5] >= shots[1.0]

    def test_predicted_ratio_is_kappa_squared(self, table):
        predicted = dict(zip(table.columns["overlap_f"], table.columns["relative_shots_predicted"]))
        assert predicted[1.0] == pytest.approx(1.0)
        assert predicted[0.5] == pytest.approx(9.0)

    def test_cache_counters_exposed_in_metadata(self, table):
        assert "cache_hits" in table.metadata
        assert "cache_misses" in table.metadata

    def test_repeated_run_hits_the_distribution_cache(self):
        config = ShotsToTargetConfig(
            target_error=0.08,
            overlaps=(0.5,),
            num_states=6,
            candidate_budgets=(100, 400),
            seed=5,
        )
        shots_to_target_error(config)
        again = shots_to_target_error(config)
        # Second in-process invocation reuses every exact per-term
        # distribution from the shared cache instead of re-simulating.
        assert again.metadata["cache_hits"] >= 6
        assert again.metadata["cache_misses"] == 0

    def test_unreachable_target_reports_minus_one(self):
        config = ShotsToTargetConfig(
            target_error=0.0001,
            overlaps=(0.5,),
            num_states=5,
            candidate_budgets=(50, 100),
            seed=1,
        )
        table = shots_to_target_error(config)
        assert table.columns["shots_needed"][0] == -1
