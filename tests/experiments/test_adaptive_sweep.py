"""Unit tests for the static-vs-adaptive comparison sweep."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.adaptive_sweep import (
    ABS_ERROR_TO_STDERR,
    AdaptiveSweepConfig,
    adaptive_vs_static_sweep,
)

QUICK = AdaptiveSweepConfig(num_states=8, overlaps=(0.5, 0.9, 1.0), seed=5)


class TestConfig:
    def test_defaults_valid(self):
        AdaptiveSweepConfig().validate()

    def test_invalid_target(self):
        with pytest.raises(ExperimentError):
            AdaptiveSweepConfig(target_error=0.0).validate()

    def test_budgets_must_increase(self):
        with pytest.raises(ExperimentError):
            AdaptiveSweepConfig(candidate_budgets=(800, 100)).validate()

    def test_invalid_planner(self):
        with pytest.raises(ExperimentError):
            AdaptiveSweepConfig(planner="wishful").validate()

    def test_invalid_safety(self):
        with pytest.raises(ExperimentError):
            AdaptiveSweepConfig(stderr_safety=0.0).validate()

    def test_invalid_overlap(self):
        with pytest.raises(ExperimentError):
            AdaptiveSweepConfig(overlaps=(0.2,)).validate()


class TestRun:
    @pytest.fixture(scope="class")
    def table(self):
        return adaptive_vs_static_sweep(QUICK)

    def test_structure(self, table):
        assert table.num_rows == 3
        assert "savings_fraction" in table.columns
        assert "adaptive_stderr_max" in table.columns

    def test_both_arms_reach_the_shared_criterion(self, table):
        stderr_target = QUICK.target_error * ABS_ERROR_TO_STDERR
        assert all(budget > 0 for budget in table.columns["static_shots_per_state"])
        assert all(f == 1.0 for f in table.columns["converged_fraction"])
        assert all(s <= stderr_target + 1e-12 for s in table.columns["adaptive_stderr_max"])

    def test_adaptive_spends_fewer_total_shots(self, table):
        metadata = table.metadata
        assert metadata["total_adaptive_shots"] < metadata["total_static_shots"]
        assert metadata["total_savings_fraction"] > 0.0

    def test_measured_errors_are_sane(self, table):
        pooled = float(np.mean(table.columns["adaptive_mean_error"]))
        assert pooled <= QUICK.target_error * 1.5

    def test_deterministic(self, table):
        again = adaptive_vs_static_sweep(QUICK)
        assert again.columns == table.columns
