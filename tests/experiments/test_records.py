"""Unit tests for SweepTable and serialisation."""

import csv
import json

import pytest

from repro.experiments.records import SweepTable, write_csv, write_json


@pytest.fixture
def table() -> SweepTable:
    return SweepTable(
        name="demo",
        columns={"x": [1, 2, 3], "y": [0.1, 0.2, 0.3]},
        metadata={"seed": 7},
    )


class TestSweepTable:
    def test_num_rows(self, table):
        assert table.num_rows == 3

    def test_row_access(self, table):
        assert table.row(1) == {"x": 2, "y": 0.2}

    def test_inconsistent_lengths(self):
        with pytest.raises(ValueError):
            SweepTable(name="bad", columns={"x": [1], "y": [1, 2]})

    def test_empty_table(self):
        assert SweepTable(name="empty", columns={}).num_rows == 0

    def test_to_text_contains_headers_and_values(self, table):
        text = table.to_text()
        assert "demo" in text
        assert "x" in text and "y" in text
        assert "0.2" in text


class TestSerialisation:
    def test_write_csv(self, table, tmp_path):
        path = write_csv(table, tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "y"]
        assert len(rows) == 4

    def test_write_json(self, table, tmp_path):
        path = write_json(table, tmp_path / "out.json")
        payload = json.loads(path.read_text())
        assert payload["name"] == "demo"
        assert payload["metadata"]["seed"] == 7
        assert payload["columns"]["x"] == [1, 2, 3]

    def test_creates_parent_directories(self, table, tmp_path):
        path = write_csv(table, tmp_path / "nested" / "dir" / "out.csv")
        assert path.exists()
