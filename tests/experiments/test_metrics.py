"""Unit tests for the experiment error metrics."""

import numpy as np
import pytest

from repro.experiments.metrics import (
    absolute_error,
    expected_statistical_error,
    mean_absolute_error,
    root_mean_squared_error,
    shots_for_target_error,
)


class TestErrors:
    def test_absolute_error(self):
        assert absolute_error(0.3, 0.5) == pytest.approx(0.2)

    def test_mean_absolute_error(self):
        estimates = np.array([1.0, 0.0, -1.0])
        exact = np.array([0.5, 0.0, -0.5])
        assert mean_absolute_error(estimates, exact) == pytest.approx(1.0 / 3.0)

    def test_rmse(self):
        estimates = np.array([1.0, -1.0])
        exact = np.array([0.0, 0.0])
        assert root_mean_squared_error(estimates, exact) == pytest.approx(1.0)

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        estimates = rng.normal(size=50)
        exact = rng.normal(size=50)
        assert root_mean_squared_error(estimates, exact) >= mean_absolute_error(estimates, exact)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            root_mean_squared_error(np.zeros(3), np.zeros(4))


class TestScalingLaws:
    def test_expected_statistical_error(self):
        assert expected_statistical_error(3.0, 900) == pytest.approx(0.1)

    def test_zero_shots_is_infinite(self):
        assert expected_statistical_error(1.0, 0) == float("inf")

    def test_kappa_squared_shot_requirement(self):
        assert shots_for_target_error(3.0, 0.1) == pytest.approx(900.0)
        assert shots_for_target_error(1.0, 0.1) == pytest.approx(100.0)

    def test_shot_requirement_ratio_matches_overhead(self):
        # Paper claim: the NME cut at f needs (γ_f/3)² times fewer shots than
        # the plain cut for the same accuracy.
        plain = shots_for_target_error(3.0, 0.05)
        nme = shots_for_target_error(1.5, 0.05)
        assert plain / nme == pytest.approx(4.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            shots_for_target_error(1.0, 0.0)
