"""Unit tests for the Figure-6 experiment harness."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.figure6 import Figure6Config, run_figure6


@pytest.fixture(scope="module")
def quick_result():
    return run_figure6(Figure6Config(num_states=12, shot_grid=(300, 1200), overlaps=(0.5, 0.8, 1.0), seed=5))


class TestConfig:
    def test_defaults_valid(self):
        Figure6Config().validate()

    def test_paper_configuration(self):
        config = Figure6Config.paper()
        assert config.num_states == 1000
        assert max(config.shot_grid) == 5000
        assert config.overlaps == (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
        config.validate()

    def test_quick_configuration(self):
        Figure6Config.quick().validate()

    def test_invalid_num_states(self):
        with pytest.raises(ExperimentError):
            Figure6Config(num_states=0).validate()

    def test_invalid_shot_grid(self):
        with pytest.raises(ExperimentError):
            Figure6Config(shot_grid=(0, 100)).validate()

    def test_invalid_overlap(self):
        with pytest.raises(ExperimentError):
            Figure6Config(overlaps=(0.4,)).validate()


class TestRun:
    def test_result_shape(self, quick_result):
        assert quick_result.mean_errors.shape == (3, 2)
        assert len(quick_result.kappas) == 3

    def test_kappas_match_theorem1(self, quick_result):
        expected = [2 / f - 1 for f in quick_result.overlaps]
        assert np.allclose(quick_result.kappas, expected)

    def test_errors_positive_and_bounded(self, quick_result):
        assert np.all(quick_result.mean_errors >= 0)
        assert np.all(quick_result.mean_errors <= 2.0)

    def test_errors_decrease_with_shots(self, quick_result):
        assert np.all(quick_result.mean_errors[:, 0] >= quick_result.mean_errors[:, 1])

    def test_entanglement_ordering(self, quick_result):
        averaged = quick_result.mean_errors.mean(axis=1)
        assert averaged[0] > averaged[-1]
        assert quick_result.is_monotone_in_entanglement()

    def test_series_lookup(self, quick_result):
        series = quick_result.series(0.8)
        assert series.shape == (2,)
        with pytest.raises(ExperimentError):
            quick_result.series(0.77)

    def test_reproducible(self):
        config = Figure6Config(num_states=5, shot_grid=(200,), overlaps=(0.6,), seed=9)
        a = run_figure6(config)
        b = run_figure6(config)
        assert np.allclose(a.mean_errors, b.mean_errors)

    def test_to_table(self, quick_result):
        table = quick_result.to_table()
        assert table.num_rows == 6
        assert set(table.columns) == {"overlap_f", "kappa", "shots", "mean_error"}
