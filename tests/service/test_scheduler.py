"""Tests for the JobScheduler: determinism, dedup, bounded-pool validation."""

import pytest

from repro.exceptions import CuttingError, ServiceError
from repro.service import JobScheduler, run_job

# Fork-heavy suite (process-mode schedulers): keep on one xdist worker
# under ``pytest -n auto --dist loadgroup``.
pytestmark = pytest.mark.xdist_group("forkheavy")


class TestValidation:
    @pytest.mark.parametrize("workers", [0, -1])
    def test_non_positive_workers_rejected(self, workers):
        with pytest.raises(CuttingError, match="workers"):
            JobScheduler(workers=workers)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ServiceError, match="mode"):
            JobScheduler(mode="fiber")

    def test_unknown_job_rejected(self):
        with JobScheduler(workers=1) as scheduler:
            with pytest.raises(ServiceError, match="unknown job"):
                scheduler.status("nope")
            with pytest.raises(ServiceError, match="unknown job"):
                scheduler.result("nope")


class TestDeterminism:
    def test_concurrent_equals_serial_bitwise(self, ghz_spec):
        specs = [ghz_spec(shots=1000, seed=seed) for seed in range(6)]
        serial = [run_job(spec) for spec in specs]
        with JobScheduler(workers=4) as scheduler:
            job_ids = [scheduler.submit(spec) for spec in specs]
            concurrent = [scheduler.result(job_id, timeout=120) for job_id in job_ids]
        for expected, actual in zip(serial, concurrent):
            assert actual.value == expected.value
            assert actual.standard_error == expected.standard_error
            assert actual.total_shots == expected.total_shots

    def test_submission_order_does_not_matter(self, ghz_spec):
        specs = [ghz_spec(shots=800, seed=seed) for seed in range(4)]
        with JobScheduler(workers=2) as scheduler:
            forward = [scheduler.result(scheduler.submit(spec)) for spec in specs]
        with JobScheduler(workers=2) as scheduler:
            reversed_ids = [scheduler.submit(spec) for spec in reversed(specs)]
            backward = [scheduler.result(job_id) for job_id in reversed(reversed_ids)]
        assert [o.value for o in forward] == [o.value for o in backward]

    @pytest.mark.slow
    def test_process_mode_matches_thread_mode(self, ghz_spec, store):
        specs = [ghz_spec(shots=600, seed=seed) for seed in (1, 2)]
        with JobScheduler(workers=2, mode="thread") as scheduler:
            thread_results = [scheduler.result(scheduler.submit(s), timeout=120) for s in specs]
        with JobScheduler(workers=2, mode="process", store=store) as scheduler:
            process_results = [scheduler.result(scheduler.submit(s), timeout=300) for s in specs]
        assert [o.value for o in thread_results] == [o.value for o in process_results]


class TestDeduplication:
    def test_identical_submission_returns_same_id(self, ghz_spec):
        with JobScheduler(workers=2) as scheduler:
            first = scheduler.submit(ghz_spec())
            second = scheduler.submit(ghz_spec())
            assert first == second
            assert len(scheduler.list_jobs()) == 1
            scheduler.result(first, timeout=120)

    def test_resubmit_after_completion_hits_store(self, ghz_spec, store):
        with JobScheduler(workers=2, store=store) as scheduler:
            job_id = scheduler.submit(ghz_spec())
            first = scheduler.result(job_id, timeout=120)
        # A fresh scheduler (e.g. a restarted service) serves the repeat
        # submission from the store without re-executing.
        with JobScheduler(workers=2, store=store) as scheduler:
            job_id = scheduler.submit(ghz_spec())
            second = scheduler.result(job_id, timeout=120)
        assert second.cached
        assert second.value == first.value


class TestLifecycle:
    def test_status_reaches_done(self, ghz_spec):
        with JobScheduler(workers=1) as scheduler:
            job_id = scheduler.submit(ghz_spec(shots=500))
            scheduler.result(job_id, timeout=120)
            status = scheduler.status(job_id)
        assert status["state"] == "done"
        assert status["value"] is not None

    def test_failed_job_reports_error_and_retries(self, ghz_spec):
        # An unservable fleet (width limit below the term-circuit width)
        # fails at execution time inside the worker.
        bad_fleet = {"devices": [{"name": "tiny", "max_qubits": 1}]}
        with JobScheduler(workers=1) as scheduler:
            job_id = scheduler.submit(ghz_spec(shots=200, fleet=bad_fleet))
            with pytest.raises(ServiceError, match="failed"):
                scheduler.result(job_id, timeout=120)
            status = scheduler.status(job_id)
            assert status["state"] == "failed"
            assert "error" in status
            # A retry re-enqueues rather than deduplicating onto the failure.
            retry_id = scheduler.submit(ghz_spec(shots=200, fleet=bad_fleet))
            assert retry_id == job_id
            assert scheduler.status(job_id)["attempts"] == 2

    def test_list_jobs_in_submission_order(self, ghz_spec):
        with JobScheduler(workers=2) as scheduler:
            ids = [scheduler.submit(ghz_spec(shots=400, seed=seed)) for seed in range(3)]
            scheduler.wait_all(timeout=120)
            rows = scheduler.list_jobs()
        assert [row["job_id"] for row in rows] == ids
        assert all(row["state"] == "done" for row in rows)
