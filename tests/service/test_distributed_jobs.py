"""Distributed execution through the job service: specs, store and scheduler.

The service-level contract: ``execution="distributed"`` is a *scheduling*
choice, invisible to the content address — distributed and in-process twins
share one fingerprint, serve each other's cache hits and resume each
other's round logs bitwise.
"""

import json

import pytest

from repro.exceptions import CuttingError, ServiceError
from repro.experiments import ghz_circuit
from repro.service import JobScheduler, JobSpec, RunStore, run_job

from utils.faulty_backend import FaultyBackend

pytestmark = pytest.mark.xdist_group("forkheavy")


def distributed_spec(**overrides):
    kwargs = {
        "circuit": ghz_circuit(4),
        "observable": "ZZZZ",
        "shots": 4000,
        "seed": 11,
        "max_fragment_width": 3,
        "mode": "adaptive",
        "target_error": 0.05,
        "rounds": 4,
        "execution": "distributed",
        "workers": 2,
    }
    kwargs.update(overrides)
    return JobSpec(**kwargs)


class TestSpecValidation:
    def test_distributed_requires_adaptive_mode(self):
        with pytest.raises(ServiceError, match="adaptive"):
            distributed_spec(mode="static", target_error=None)

    def test_distributed_rejects_dedup(self):
        with pytest.raises(ServiceError, match="dedup"):
            distributed_spec(dedup=True)

    def test_workers_require_distributed_execution(self):
        with pytest.raises(ServiceError, match="workers"):
            distributed_spec(execution="inprocess")

    def test_workers_must_be_positive(self):
        with pytest.raises(CuttingError, match="workers"):
            distributed_spec(workers=0)

    def test_unknown_execution_rejected(self):
        with pytest.raises(ServiceError, match="execution"):
            distributed_spec(execution="sideways")

    def test_payload_round_trip(self):
        spec = distributed_spec()
        restored = JobSpec.from_payload(spec.to_payload())
        assert restored.execution == "distributed"
        assert restored.workers == 2

    def test_inprocess_payload_omits_execution_keys(self):
        spec = distributed_spec(execution="inprocess", workers=None)
        payload = spec.to_payload()
        assert "execution" not in payload and "workers" not in payload

    def test_fingerprint_is_execution_invariant(self):
        in_process = distributed_spec(execution="inprocess", workers=None)
        assert distributed_spec().fingerprint() == in_process.fingerprint()
        assert (
            distributed_spec(workers=4).fingerprint() == in_process.fingerprint()
        )


class TestRunJob:
    def test_distributed_job_matches_inprocess_bitwise(self, tmp_path):
        distributed = run_job(
            distributed_spec(), store=RunStore(tmp_path / "distributed")
        )
        in_process = run_job(
            distributed_spec(execution="inprocess", workers=None),
            store=RunStore(tmp_path / "inprocess"),
        )
        assert distributed.value == in_process.value
        assert distributed.standard_error == in_process.standard_error
        assert distributed.total_shots == in_process.total_shots
        assert distributed.rounds_completed == in_process.rounds_completed

    def test_modes_serve_each_others_cache_hits(self, tmp_path):
        store = RunStore(tmp_path)
        first = run_job(distributed_spec(), store=store)
        twin = run_job(
            distributed_spec(execution="inprocess", workers=None), store=store
        )
        assert not first.cached
        assert twin.cached
        assert twin.value == first.value

    def test_crash_mid_rounds_resumes_bitwise(self, tmp_path):
        store = RunStore(tmp_path)
        spec = distributed_spec()
        full = run_job(spec, store=store)
        assert full.rounds_completed >= 2

        # Crash after round one: truncate the persisted round log and drop
        # the downstream artifacts, exactly like the in-process resume test.
        fingerprint = spec.fingerprint()
        rounds_payload = store.get_stage(fingerprint, "rounds")
        rounds_payload["rounds"] = rounds_payload["rounds"][:1]
        store.put_stage(fingerprint, "rounds", rounds_payload)
        store.delete_stage(fingerprint, "execution")
        store.delete_stage(fingerprint, "result")

        resumed = run_job(spec, store=store)
        assert resumed.resumed_from == "rounds"
        assert resumed.value == full.value
        assert resumed.standard_error == full.standard_error
        assert resumed.total_shots == full.total_shots


class TestScheduler:
    def test_scheduler_runs_distributed_jobs(self, tmp_path):
        spec = distributed_spec()
        direct = run_job(distributed_spec(execution="inprocess", workers=None))
        with JobScheduler(workers=2, store=RunStore(tmp_path)) as scheduler:
            outcome = scheduler.result(scheduler.submit(spec), timeout=300)
        assert outcome.value == direct.value
        assert outcome.standard_error == direct.standard_error

    def test_faulty_pipeline_surfaces_error_then_retry_succeeds(
        self, tmp_path, monkeypatch
    ):
        """A backend fault fails the job; resubmission runs clean."""
        spec = distributed_spec(execution="inprocess", workers=None)
        reference = run_job(distributed_spec(execution="inprocess", workers=None))

        build_pipeline = JobSpec.build_pipeline
        faulty = FaultyBackend("vectorized", fail_from=1)

        def faulty_build(self):
            pipeline = build_pipeline(self)
            pipeline.backend = faulty
            return pipeline

        monkeypatch.setattr(JobSpec, "build_pipeline", faulty_build)
        store = RunStore(tmp_path)
        with JobScheduler(workers=1, store=store) as scheduler:
            job_id = scheduler.submit(spec)
            with pytest.raises(Exception, match="injected fault"):
                scheduler.result(job_id, timeout=120)
            assert scheduler.status(job_id)["state"] == "failed"

        # The fault cleared (fresh pipeline builder): a new scheduler
        # resubmission completes and matches the clean reference.
        monkeypatch.setattr(JobSpec, "build_pipeline", build_pipeline)
        with JobScheduler(workers=1, store=store) as scheduler:
            outcome = scheduler.result(scheduler.submit(spec), timeout=120)
        assert outcome.value == reference.value
