"""Unit tests for the content-addressed RunStore."""

import json

import pytest

from repro.exceptions import ServiceError
from repro.service.store import STAGES


class TestJobPersistence:
    def test_put_and_load_job(self, store, ghz_spec):
        spec = ghz_spec()
        fingerprint = store.put_job(spec)
        assert fingerprint == spec.fingerprint()
        assert store.has_job(fingerprint)
        assert store.load_job(fingerprint).fingerprint() == fingerprint

    def test_put_job_idempotent(self, store, ghz_spec):
        first = store.put_job(ghz_spec())
        second = store.put_job(ghz_spec())
        assert first == second

    def test_load_missing_job(self, store):
        with pytest.raises(ServiceError, match="no stored job"):
            store.load_job("deadbeefdeadbeef")


class TestStageArtifacts:
    def test_stage_roundtrip(self, store, ghz_spec):
        fingerprint = store.put_job(ghz_spec())
        store.put_stage(fingerprint, "plan", {"positions": [2]})
        assert store.get_stage(fingerprint, "plan") == {"positions": [2]}
        assert store.get_stage(fingerprint, "execution") is None
        assert store.completed_stages(fingerprint) == ("plan",)

    def test_unknown_stage_rejected(self, store, ghz_spec):
        fingerprint = store.put_job(ghz_spec())
        with pytest.raises(ServiceError, match="unknown stage"):
            store.put_stage(fingerprint, "transpile", {})
        with pytest.raises(ServiceError, match="unknown stage"):
            store.get_stage(fingerprint, "transpile")

    def test_invalid_fingerprint_rejected(self, store):
        # Path traversal or malformed keys must never touch the filesystem.
        for bad in ("../../etc/passwd", "short", "UPPERCASE_HEX_00", ""):
            with pytest.raises(ServiceError, match="fingerprint"):
                store.run_dir(bad)

    def test_writes_go_to_the_index_not_legacy_files(self, store, ghz_spec):
        fingerprint = store.put_job(ghz_spec())
        store.put_stage(fingerprint, "result", {"value": 1.0})
        # New writes land in the SQLite index; the legacy per-file layout is
        # read-only compatibility surface.
        assert not store.run_dir(fingerprint).exists()
        assert store.database_path.exists()

    def test_corrupt_legacy_artifact_raises(self, store, ghz_spec):
        fingerprint = ghz_spec().fingerprint()
        legacy = store.run_dir(fingerprint) / "result.json"
        legacy.parent.mkdir(parents=True)
        legacy.write_text("{not json")
        with pytest.raises(ServiceError, match="corrupt"):
            store.get_stage(fingerprint, "result")

    def test_delete_stage(self, store, ghz_spec):
        fingerprint = store.put_job(ghz_spec())
        store.put_stage(fingerprint, "result", {"value": 1.0})
        assert store.delete_stage(fingerprint, "result")
        assert store.get_stage(fingerprint, "result") is None
        assert not store.delete_stage(fingerprint, "result")

    def test_stage_order_matches_pipeline(self):
        assert STAGES == ("plan", "rounds", "execution", "result")


class TestRunListing:
    def test_list_runs_summarises_jobs(self, store, ghz_spec):
        spec = ghz_spec()
        fingerprint = store.put_job(spec)
        store.put_stage(fingerprint, "plan", {})
        rows = store.list_runs()
        assert len(rows) == 1
        row = rows[0]
        assert row["fingerprint"] == fingerprint
        assert row["stages"] == ["plan"]
        assert row["shots"] == spec.shots
        assert row["num_qubits"] == 4

    def test_delete_run(self, store, ghz_spec):
        fingerprint = store.put_job(ghz_spec())
        assert store.delete_run(fingerprint)
        assert not store.has_job(fingerprint)
        assert not store.delete_run(fingerprint)
        assert store.list_runs() == []

    def test_empty_store_lists_nothing(self, store):
        assert store.list_runs() == []


class TestArtifacts:
    def test_artifact_roundtrip(self, store):
        key = "ab" * 8
        store.put_artifact(key, {"rows": [1, 2, 3]})
        assert store.get_artifact(key) == {"rows": [1, 2, 3]}
        assert store.get_artifact("cd" * 8) is None

    def test_artifact_keys_validated(self, store):
        with pytest.raises(ServiceError, match="fingerprint"):
            store.put_artifact("../escape", {})

    def test_artifact_json_canonical(self, store):
        import sqlite3

        key = "ef" * 8
        store.put_artifact(key, {"b": 1, "a": 2})
        with sqlite3.connect(store.database_path) as conn:
            (text,) = conn.execute(
                "SELECT payload FROM blobs JOIN artifacts ON blobs.key = artifacts.blob_key "
                "WHERE artifacts.key = ?",
                (key,),
            ).fetchone()
        assert text == json.dumps({"a": 2, "b": 1}, sort_keys=True, separators=(",", ":"))
