"""``GET /metrics`` on the asyncio server, and scheduler-side trace persistence."""

import re
import threading
import urllib.request

import pytest

from repro.service import RunService, RunStore, ServerThread, ServiceClient
from repro.service.aserver import METRICS_CONTENT_TYPE
from repro.telemetry.tracing import find_orphans

pytestmark = [pytest.mark.integration, pytest.mark.xdist_group("forkheavy")]


@pytest.fixture
def live(tmp_path):
    """A live asyncio service; yields (client, url, store)."""
    store = RunStore(tmp_path / "store")
    run_service = RunService(store=store, workers=2)
    server = ServerThread(run_service)
    url = server.start()
    try:
        yield ServiceClient(url), url, store
    finally:
        server.stop()
        run_service.close()


def scrape(url):
    with urllib.request.urlopen(f"{url}/metrics", timeout=10) as response:
        assert response.status == 200
        return response.headers["Content-Type"], response.read().decode()


def sample(text, series):
    """Return the value of one exact series line, or ``None``."""
    match = re.search(rf"^{re.escape(series)} ([0-9.e+-]+)$", text, flags=re.M)
    return None if match is None else float(match.group(1))


class TestMetricsEndpoint:
    def test_prometheus_content_type_and_core_series(self, live):
        client, url, _ = live
        client.health()
        content_type, text = scrape(url)
        assert content_type == METRICS_CONTENT_TYPE
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert "# TYPE repro_scheduler_queue_depth gauge" in text
        assert "# TYPE repro_sse_subscribers gauge" in text
        assert "# TYPE repro_store_blob_dedup_ratio gauge" in text
        assert sample(text, 'repro_http_requests_total{path="/healthz",status="200"}') >= 1

    def test_request_counter_is_monotone_across_scrapes(self, live):
        client, url, _ = live
        client.health()
        _, first = scrape(url)
        before = sample(first, 'repro_http_requests_total{path="/healthz",status="200"}')
        client.health()
        client.health()
        _, second = scrape(url)
        after = sample(second, 'repro_http_requests_total{path="/healthz",status="200"}')
        assert after >= before + 2
        # The /metrics scrape itself is measured too.
        assert sample(second, 'repro_http_requests_total{path="/metrics",status="200"}') >= 1

    def test_submission_counts_by_tenant_and_latency_histogram_fills(self, live, ghz_spec):
        client, url, _ = live
        tenant_client = ServiceClient(url, tenant="metrics-tenant")
        row = tenant_client.submit(ghz_spec(shots=500))
        tenant_client.wait(row["job_id"], timeout=120)
        _, text = scrape(url)
        assert sample(text, 'repro_submissions_total{tenant="metrics-tenant"}') >= 1
        assert (
            sample(text, 'repro_http_request_seconds_count{path="/jobs",status="201"}') >= 1
        )

    def test_concurrent_scrapes_under_load_all_succeed(self, live):
        client, url, _ = live
        errors = []

        def hammer(target):
            try:
                for _ in range(5):
                    target()
            except Exception as error:  # pragma: no cover - asserted below
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(client.health,)) for _ in range(3)]
        threads += [threading.Thread(target=hammer, args=(lambda: scrape(url),)) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        _, text = scrape(url)
        assert sample(text, 'repro_http_requests_total{path="/metrics",status="200"}') >= 15


class TestSchedulerTracePersistence:
    def test_submitted_job_persists_submit_rooted_trace(self, live, ghz_spec):
        client, _, store = live
        row = client.submit(ghz_spec(shots=500, seed=23))
        client.wait(row["job_id"], timeout=120)
        trace = store.get_trace(row["job_id"])
        assert trace is not None
        assert find_orphans(trace) == []
        spans = trace["spans"]
        by_name = {entry["name"]: entry for entry in spans}
        assert by_name["submit"]["parent_id"] is None
        assert by_name["job"]["parent_id"] == by_name["submit"]["span_id"]
        stage_names = {entry["name"] for entry in spans}
        assert {"plan", "decompose", "execute", "reconstruct"} <= stage_names
