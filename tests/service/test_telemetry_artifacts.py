"""Telemetry artifacts in the run store: traces and profiles per fingerprint."""

import pytest

from repro.exceptions import ServiceError
from repro.service import RunStore, run_job
from repro.telemetry.tracing import find_orphans


class TestArtifactKeys:
    def test_keys_are_fingerprint_shaped_and_kind_disjoint(self):
        trace_key = RunStore.artifact_key("a" * 32, "trace")
        profile_key = RunStore.artifact_key("a" * 32, "profile")
        assert trace_key != profile_key
        assert trace_key == RunStore.artifact_key("a" * 32, "trace")
        for key in (trace_key, profile_key):
            assert len(key) == 32 and all(c in "0123456789abcdef" for c in key)

    def test_invalid_fingerprint_is_rejected(self):
        with pytest.raises(ServiceError):
            RunStore.artifact_key("not hex!", "trace")


class TestTraceRoundtrip:
    def test_put_get_trace_and_profile_are_independent(self, store):
        fingerprint = "b" * 32
        assert store.get_trace(fingerprint) is None
        assert store.get_profile(fingerprint) is None
        trace = {"trace_id": fingerprint, "spans": []}
        profile = {"stages": {"plan": {"total_calls": 1, "total_time": 0.0, "top": []}}}
        store.put_trace(fingerprint, trace)
        store.put_profile(fingerprint, profile)
        assert store.get_trace(fingerprint) == trace
        assert store.get_profile(fingerprint) == profile


class TestRunJobPersistence:
    def test_run_job_persists_a_connected_trace_and_profile(self, store, ghz_spec):
        spec = ghz_spec()
        outcome = run_job(spec, store=store, profile=True)
        assert not outcome.cached
        trace = store.get_trace(outcome.fingerprint)
        assert trace is not None
        assert trace["trace_id"] == outcome.fingerprint
        names = [entry["name"] for entry in trace["spans"]]
        assert {"job", "plan", "decompose", "execute", "reconstruct"} <= set(names)
        assert find_orphans(trace) == []
        profile = store.get_profile(outcome.fingerprint)
        assert profile is not None and "execute" in profile["stages"]

    def test_cache_hit_never_overwrites_the_original_trace(self, store, ghz_spec):
        spec = ghz_spec()
        first = run_job(spec, store=store)
        original = store.get_trace(first.fingerprint)
        second = run_job(spec, store=store)
        assert second.cached
        assert store.get_trace(first.fingerprint) == original

    def test_profile_off_leaves_no_profile_artifact(self, store, ghz_spec):
        outcome = run_job(ghz_spec(), store=store)
        assert store.get_profile(outcome.fingerprint) is None
        assert store.get_trace(outcome.fingerprint) is not None
