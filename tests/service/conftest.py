"""Shared fixtures for the job-service test suite."""

import pytest

from repro.experiments import ghz_circuit
from repro.service import JobSpec, RunStore


@pytest.fixture
def store(tmp_path):
    """A fresh run store in a temporary directory."""
    return RunStore(tmp_path / "store")


@pytest.fixture
def ghz_spec():
    """Factory of small GHZ job specs (2-cut under width 3 for 4 qubits)."""

    def make(qubits=4, shots=2000, seed=7, **overrides):
        kwargs = {
            "circuit": ghz_circuit(qubits),
            "observable": "Z" * qubits,
            "shots": shots,
            "seed": seed,
            "max_fragment_width": 3,
        }
        kwargs.update(overrides)
        return JobSpec(**kwargs)

    return make
