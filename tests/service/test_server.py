"""HTTP round-trip tests of the `repro serve` endpoint and its client."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ServiceError
from repro.service import RunService, RunStore, ServiceClient, make_server

pytestmark = pytest.mark.integration


@pytest.fixture
def service(tmp_path):
    """A live HTTP service on a free port, with a store attached."""
    run_service = RunService(store=RunStore(tmp_path / "store"), workers=2)
    server = make_server(host="127.0.0.1", port=0, service=run_service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    try:
        yield ServiceClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
        run_service.close()
        thread.join(timeout=10)


class TestEndToEnd:
    def test_submit_poll_result(self, service, ghz_spec):
        # The service smoke scenario: a 2-cut GHZ job over HTTP, polled to
        # completion.
        spec = ghz_spec(qubits=4, shots=1500, max_fragment_width=2)
        row = service.submit(spec)
        assert row["state"] in ("queued", "running", "done")
        payload = service.wait(row["job_id"], timeout=120)
        assert payload["fingerprint"] == spec.fingerprint()
        assert payload["total_shots"] == 1500
        assert payload["exact_value"] == pytest.approx(1.0)
        assert abs(payload["value"] - 1.0) < 0.5

    def test_duplicate_submission_not_reexecuted(self, service, ghz_spec):
        first_row = service.submit(ghz_spec())
        first = service.wait(first_row["job_id"], timeout=120)
        second_row = service.submit(ghz_spec())
        assert second_row["job_id"] == first_row["job_id"]
        second = service.wait(second_row["job_id"], timeout=120)
        assert second["value"] == first["value"]
        assert len(service.jobs()) == 1

    def test_health_and_runs(self, service, ghz_spec):
        health = service.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        row = service.submit(ghz_spec(shots=500))
        service.wait(row["job_id"], timeout=120)
        runs = service.runs()
        assert [r["fingerprint"] for r in runs] == [row["job_id"]]
        assert "result" in runs[0]["stages"]


class TestErrorHandling:
    def test_invalid_payload_is_400(self, service):
        with pytest.raises(ServiceError, match="400"):
            service.submit({"observable": "Z"})

    def test_invalid_shots_is_400(self, service, ghz_spec):
        payload = ghz_spec().to_payload()
        payload["shots"] = 0
        with pytest.raises(ServiceError, match="shots"):
            service.submit(payload)

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError, match="404"):
            service.status("missing")

    def test_unknown_path_is_404(self, service):
        with pytest.raises(ServiceError, match="404"):
            service._request("/teapot")

    def test_non_json_body_is_400(self, service):
        request = urllib.request.Request(
            f"{service.base_url}/jobs",
            data=b"not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "JSON" in json.loads(excinfo.value.read())["error"]

    def test_failed_job_result_is_500(self, service, ghz_spec):
        bad_fleet = {"devices": [{"name": "tiny", "max_qubits": 1}]}
        row = service.submit(ghz_spec(shots=200, fleet=bad_fleet))
        # Wait until the job has failed, then ask for the result.
        import time

        deadline = time.monotonic() + 60
        while service.status(row["job_id"])["state"] not in ("failed", "done"):
            assert time.monotonic() < deadline
            time.sleep(0.05)
        with pytest.raises(ServiceError, match="500"):
            service.result(row["job_id"])

    def test_unreachable_service(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=2)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()
