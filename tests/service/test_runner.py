"""Tests for run_job: store reuse, crash-resume, bitwise-identical results."""

import pytest

import repro.pipeline.pipeline as pipeline_module
from repro.service import run_job


class TestCacheHit:
    def test_second_run_served_from_store(self, store, ghz_spec):
        first = run_job(ghz_spec(), store=store)
        second = run_job(ghz_spec(), store=store)
        assert not first.cached
        assert second.cached
        assert second.value == first.value
        assert second.standard_error == first.standard_error

    def test_cache_hit_runs_no_pipeline_stage(self, store, ghz_spec, monkeypatch):
        run_job(ghz_spec(), store=store)

        def poisoned(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pipeline stage ran on a cache hit")

        for stage in ("plan", "decompose", "execute", "reconstruct"):
            monkeypatch.setattr(pipeline_module.CutPipeline, stage, poisoned)
        outcome = run_job(ghz_spec(), store=store)
        assert outcome.cached

    def test_store_matches_direct_run(self, store, ghz_spec):
        stored = run_job(ghz_spec(), store=store)
        direct = run_job(ghz_spec())
        assert stored.value == direct.value
        assert stored.standard_error == direct.standard_error

    def test_all_stages_persisted(self, store, ghz_spec):
        outcome = run_job(ghz_spec(), store=store)
        assert store.completed_stages(outcome.fingerprint) == (
            "plan",
            "execution",
            "result",
        )
        assert store.has_job(outcome.fingerprint)


class TestCrashResume:
    def _interrupt_after_execute(self, store, spec):
        """Run plan→decompose→execute, persist those stages, then 'crash'."""
        fingerprint = store.put_job(spec)
        pipeline = spec.build_pipeline()
        plan_result = pipeline.plan(spec.circuit, **spec.plan_arguments())
        store.put_stage(fingerprint, "plan", plan_result.to_payload())
        decomposition = pipeline.decompose(plan_result)
        execution = pipeline.execute(decomposition, spec.observable, spec.shots, seed=spec.seed)
        store.put_stage(fingerprint, "execution", execution.to_payload())
        return fingerprint

    def test_resume_after_execute_is_bitwise_identical(self, store, ghz_spec, monkeypatch):
        baseline = run_job(ghz_spec())  # uninterrupted reference, no store

        self._interrupt_after_execute(store, ghz_spec())

        # Re-submission must reconstruct from the stored counts without
        # sampling again: poison the execute stage to prove it.
        def poisoned(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("execute re-ran after resume")

        monkeypatch.setattr(pipeline_module.CutPipeline, "execute", poisoned)
        resumed = run_job(ghz_spec(), store=store)

        assert resumed.resumed_from == "execution"
        assert not resumed.cached
        assert resumed.value == baseline.value
        assert resumed.standard_error == baseline.standard_error
        assert resumed.total_shots == baseline.total_shots
        assert resumed.kappa == baseline.kappa
        assert store.completed_stages(resumed.fingerprint)[-1] == "result"

    def test_resume_with_explicit_locations_plan(self, store, ghz_spec, monkeypatch):
        spec = ghz_spec(max_fragment_width=None, locations=((1, 2),))
        baseline = run_job(spec)
        self._interrupt_after_execute(store, spec)
        monkeypatch.setattr(
            pipeline_module.CutPipeline,
            "execute",
            lambda *a, **k: pytest.fail("execute re-ran"),
        )
        resumed = run_job(spec, store=store)
        assert resumed.value == baseline.value

    def test_fresh_run_after_plan_only(self, store, ghz_spec):
        # A crash right after planning resumes by re-executing (plan is cheap
        # and recomputed; only sampling results are authoritative).
        spec = ghz_spec()
        fingerprint = store.put_job(spec)
        pipeline = spec.build_pipeline()
        plan_result = pipeline.plan(spec.circuit)
        store.put_stage(fingerprint, "plan", plan_result.to_payload())

        outcome = run_job(spec, store=store)
        assert not outcome.cached
        assert outcome.resumed_from is None
        assert outcome.value == run_job(spec).value


class TestOutcome:
    def test_outcome_payload_roundtrip(self, store, ghz_spec):
        from repro.service import JobOutcome

        outcome = run_job(ghz_spec(), store=store)
        rebuilt = JobOutcome.from_payload(outcome.to_payload())
        assert rebuilt == outcome
        assert rebuilt.error == outcome.error

    def test_fleet_job_runs_and_persists(self, store, ghz_spec):
        from repro.devices import example_fleet_spec

        outcome = run_job(ghz_spec(shots=500, fleet=example_fleet_spec()), store=store)
        repeat = run_job(ghz_spec(shots=500, fleet=example_fleet_spec()), store=store)
        assert repeat.cached
        assert repeat.value == outcome.value
