"""Adaptive jobs through the service layer: spec, resume, progress, dedup."""

import json

import pytest

from repro.exceptions import CuttingError, ServiceError
from repro.experiments import ghz_circuit
from repro.service import JobScheduler, JobSpec, RunStore, run_job


def adaptive_spec(**overrides):
    kwargs = {
        "circuit": ghz_circuit(4),
        "observable": "ZZZZ",
        "shots": 100_000,
        "seed": 7,
        "max_fragment_width": 3,
        "mode": "adaptive",
        "target_error": 0.05,
    }
    kwargs.update(overrides)
    return JobSpec(**kwargs)


class TestSpecValidation:
    def test_adaptive_requires_target_error(self):
        with pytest.raises(ServiceError):
            adaptive_spec(target_error=None)

    def test_target_error_must_be_positive(self):
        with pytest.raises(CuttingError):
            adaptive_spec(target_error=0.0)
        with pytest.raises(CuttingError):
            adaptive_spec(target_error=-0.1)
        with pytest.raises(CuttingError):
            adaptive_spec(target_error=float("nan"))

    def test_rounds_must_be_positive(self):
        with pytest.raises(CuttingError):
            adaptive_spec(rounds=0)

    def test_static_rejects_target_error(self):
        with pytest.raises(ServiceError):
            adaptive_spec(mode="static")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ServiceError):
            adaptive_spec(mode="sideways")

    def test_payload_round_trip(self):
        spec = adaptive_spec()
        restored = JobSpec.from_payload(spec.to_payload())
        assert restored.mode == "adaptive"
        assert restored.target_error == pytest.approx(0.05)
        assert restored.rounds == 12
        assert restored.fingerprint() == spec.fingerprint()

    def test_static_payload_and_fingerprint_unchanged(self):
        spec = JobSpec(ghz_circuit(4), "ZZZZ", shots=2000, seed=7, max_fragment_width=3)
        payload = spec.to_payload()
        assert "mode" not in payload and "target_error" not in payload and "rounds" not in payload
        # The mode extension must not move existing static jobs to new
        # store addresses.
        legacy = {key: value for key, value in payload.items()}
        assert JobSpec.from_payload(legacy).fingerprint() == spec.fingerprint()

    def test_adaptive_jobs_get_distinct_fingerprints(self):
        loose = adaptive_spec(target_error=0.05)
        tight = adaptive_spec(target_error=0.01)
        assert loose.fingerprint() != tight.fingerprint()


class TestRunJob:
    def test_adaptive_outcome_reports_rounds(self, tmp_path):
        outcome = run_job(adaptive_spec(), store=RunStore(tmp_path))
        assert outcome.mode == "adaptive"
        assert outcome.converged
        assert outcome.rounds_completed >= 1
        assert outcome.standard_error <= 0.05
        assert outcome.total_shots < 100_000

    def test_cache_hit_preserves_adaptive_metadata(self, tmp_path):
        store = RunStore(tmp_path)
        first = run_job(adaptive_spec(), store=store)
        second = run_job(adaptive_spec(), store=store)
        assert second.cached
        assert second.value == first.value
        assert second.mode == "adaptive"
        assert second.rounds_completed == first.rounds_completed

    def test_crash_mid_execution_resumes_bitwise(self, tmp_path):
        store = RunStore(tmp_path)
        spec = adaptive_spec()
        full = run_job(spec, store=store)
        assert full.rounds_completed >= 2

        # Simulate a crash after the first round: truncate the round log and
        # drop the downstream artifacts.
        fingerprint = spec.fingerprint()
        rounds_payload = store.get_stage(fingerprint, "rounds")
        rounds_payload["rounds"] = rounds_payload["rounds"][:1]
        store.put_stage(fingerprint, "rounds", rounds_payload)
        store.delete_stage(fingerprint, "execution")
        store.delete_stage(fingerprint, "result")

        resumed = run_job(spec, store=store)
        assert resumed.resumed_from == "rounds"
        assert resumed.value == full.value
        assert resumed.standard_error == full.standard_error
        assert resumed.total_shots == full.total_shots

    def test_progress_callback_sees_every_round(self):
        summaries = []
        outcome = run_job(adaptive_spec(), progress=summaries.append)
        assert len(summaries) == outcome.rounds_completed
        assert summaries[-1]["converged"] is True
        assert summaries[-1]["shots_spent"] == outcome.total_shots

    def test_static_progress_fires_once(self):
        summaries = []
        spec = JobSpec(ghz_circuit(4), "ZZZZ", shots=2000, seed=7, max_fragment_width=3)
        outcome = run_job(spec, progress=summaries.append)
        assert len(summaries) == 1
        assert summaries[0]["shots_spent"] == outcome.total_shots

    def test_resumed_converged_job_still_reports_progress(self, tmp_path):
        # A job whose final round was persisted but whose execution artifact
        # was lost resumes with zero live rounds; the runner must still
        # attach one final progress snapshot.
        store = RunStore(tmp_path)
        spec = adaptive_spec()
        full = run_job(spec, store=store)
        store.delete_stage(spec.fingerprint(), "execution")
        store.delete_stage(spec.fingerprint(), "result")
        summaries = []
        resumed = run_job(spec, store=store, progress=summaries.append)
        assert resumed.resumed_from == "rounds"
        assert resumed.value == full.value
        assert len(summaries) == 1
        assert summaries[0]["shots_spent"] == resumed.total_shots
        assert summaries[0]["converged"] is True
        assert summaries[0]["rounds_completed"] == resumed.rounds_completed


class TestScheduler:
    def test_status_surfaces_progress_and_mode(self):
        with JobScheduler(workers=1) as scheduler:
            job_id = scheduler.submit(adaptive_spec())
            outcome = scheduler.result(job_id, timeout=300)
            status = scheduler.status(job_id)
        assert status["state"] == "done"
        assert status["mode"] == "adaptive"
        assert status["converged"] is True
        assert status["rounds_completed"] == outcome.rounds_completed
        progress = status["progress"]
        assert progress["shots_spent"] == outcome.total_shots
        assert progress["current_stderr"] is not None
        assert progress["target_error"] == pytest.approx(0.05)

    def test_process_mode_runs_adaptive_jobs(self, tmp_path):
        with JobScheduler(workers=2, mode="process", store=RunStore(tmp_path)) as scheduler:
            job_id = scheduler.submit(adaptive_spec())
            outcome = scheduler.result(job_id, timeout=600)
        assert outcome.mode == "adaptive"
        assert outcome.converged

    def test_thread_and_process_agree_bitwise(self, tmp_path):
        spec = adaptive_spec()
        with JobScheduler(workers=1, mode="thread") as scheduler:
            thread_outcome = scheduler.result(scheduler.submit(spec), timeout=300)
        with JobScheduler(workers=1, mode="process") as scheduler:
            process_outcome = scheduler.result(scheduler.submit(spec), timeout=600)
        assert thread_outcome.value == process_outcome.value
        assert thread_outcome.total_shots == process_outcome.total_shots
