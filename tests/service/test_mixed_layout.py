"""Regression tests of the mixed store layout (legacy JSON dirs + SQLite rows).

A store upgraded in place can hold runs in three shapes at once: legacy
per-file directories only, SQLite index rows only, and runs present in both
(a legacy run whose later stages were written after the upgrade).  The
listing API must present a **single deduplicated paginated view** across all
three, and ``repro store migrate`` must fold the legacy side in without
touching indexed rows.
"""

import pytest

from repro.service import RunService, RunStore, ServerThread, ServiceClient
from repro.utils.serialization import canonical_json

pytestmark = pytest.mark.integration


def _write_legacy_run(root, fingerprint: str, stages: dict) -> None:
    """Write one run in the legacy ``runs/<fp[:2]>/<fp>/<stage>.json`` layout."""
    run_dir = root / "runs" / fingerprint[:2] / fingerprint
    run_dir.mkdir(parents=True, exist_ok=True)
    for stage, payload in stages.items():
        (run_dir / f"{stage}.json").write_text(canonical_json(payload))


@pytest.fixture
def mixed_store(tmp_path):
    """A store holding legacy-only, index-only and dual-layout runs.

    Fingerprints sort as: aa... (legacy), bb... (both), cc... (index),
    dd... (legacy), ee... (index).
    """
    root = tmp_path / "store"
    _write_legacy_run(
        root, "aa11111111", {"plan": {"cuts": 1}, "result": {"value": 0.25}}
    )
    _write_legacy_run(root, "bb22222222", {"plan": {"cuts": 2}})
    _write_legacy_run(root, "dd44444444", {"plan": {"cuts": 4}})

    store = RunStore(root)
    # bb also gains an indexed result (the "upgraded mid-run" shape).
    store.put_stage("bb22222222", "result", {"value": 0.5})
    store.put_stage("cc33333333", "plan", {"cuts": 3})
    store.put_stage("cc33333333", "result", {"value": 0.75})
    store.put_stage("ee55555555", "plan", {"cuts": 5})
    yield store
    store.close()


class TestMixedListing:
    def test_single_deduplicated_view(self, mixed_store):
        rows = mixed_store.list_runs()
        fingerprints = [row["fingerprint"] for row in rows]
        # Every run appears exactly once, sorted, regardless of layout.
        assert fingerprints == [
            "aa11111111",
            "bb22222222",
            "cc33333333",
            "dd44444444",
            "ee55555555",
        ]
        assert mixed_store.count_runs() == 5

    def test_dual_layout_run_unions_stages(self, mixed_store):
        (row,) = [r for r in mixed_store.list_runs() if r["fingerprint"] == "bb22222222"]
        assert set(row["stages"]) == {"plan", "result"}

    def test_pagination_spans_both_layouts(self, mixed_store):
        first = mixed_store.list_runs(limit=2)
        second = mixed_store.list_runs(limit=2, offset=2)
        third = mixed_store.list_runs(limit=2, offset=4)
        fingerprints = [r["fingerprint"] for r in first + second + third]
        assert fingerprints == [r["fingerprint"] for r in mixed_store.list_runs()]
        assert len(first) == 2 and len(second) == 2 and len(third) == 1

    def test_stage_filter_spans_both_layouts(self, mixed_store):
        finished = mixed_store.list_runs(stage="result")
        assert [r["fingerprint"] for r in finished] == [
            "aa11111111",  # legacy result
            "bb22222222",  # indexed result over a legacy plan
            "cc33333333",  # indexed result
        ]
        assert mixed_store.count_runs(stage="result") == 3

    def test_http_runs_view_matches_store(self, mixed_store):
        service = RunService(store=mixed_store, workers=1)
        server = ServerThread(service)
        client = ServiceClient(server.start())
        try:
            rows = client.runs()
            assert [r["fingerprint"] for r in rows] == [
                r["fingerprint"] for r in mixed_store.list_runs()
            ]
            page = client.runs(limit=2, offset=1)
            assert [r["fingerprint"] for r in page] == ["bb22222222", "cc33333333"]
            finished = client.runs(stage="result")
            assert len(finished) == 3
        finally:
            server.stop()
            service.close()


class TestMigration:
    def test_migrate_folds_legacy_into_index(self, mixed_store):
        before = [r["fingerprint"] for r in mixed_store.list_runs()]
        counters = mixed_store.migrate_legacy(remove=True)
        assert counters["runs"] == 3  # aa, bb, dd had legacy files
        assert mixed_store.stats()["legacy_runs"] == 0
        # The view is unchanged by migration — same runs, same stages.
        assert [r["fingerprint"] for r in mixed_store.list_runs()] == before
        assert canonical_json(mixed_store.get_stage("aa11111111", "result")) == canonical_json(
            {"value": 0.25}
        )

    def test_migrate_keeps_indexed_rows_authoritative(self, mixed_store):
        # bb's result exists only in the index; its legacy plan must migrate
        # without overwriting the indexed result.
        mixed_store.migrate_legacy(remove=False)
        assert mixed_store.get_stage("bb22222222", "result") == {"value": 0.5}
        assert mixed_store.get_stage("bb22222222", "plan") == {"cuts": 2}

    def test_migrate_is_idempotent(self, mixed_store):
        first = mixed_store.migrate_legacy(remove=False)
        second = mixed_store.migrate_legacy(remove=False)
        assert first["runs"] == 3
        # A second pass ingests nothing new: every legacy stage file is
        # already indexed and counts as skipped.
        assert second["runs"] == 0
        assert second["stages"] == 0
        assert second["skipped"] == first["stages"] + first["skipped"]
        assert mixed_store.count_runs() == 5
