"""Tests for dedup-enabled jobs: spec validation, fingerprints, store reuse."""

import json

import pytest

from repro.exceptions import ServiceError
from repro.service import JobSpec, run_job


class TestSpecValidation:
    def test_non_boolean_dedup_rejected(self, ghz_spec):
        with pytest.raises(ServiceError, match="dedup"):
            ghz_spec(dedup=1)

    def test_dedup_with_fleet_rejected(self, ghz_spec):
        from repro.devices import example_fleet_spec

        with pytest.raises(ServiceError, match="ideal simulator"):
            ghz_spec(dedup=True, fleet=example_fleet_spec())


class TestPayloadAndFingerprint:
    def test_disabled_dedup_is_not_emitted(self, ghz_spec):
        payload = ghz_spec().to_payload()
        assert "dedup" not in payload

    def test_enabled_dedup_round_trips(self, ghz_spec):
        spec = ghz_spec(dedup=True)
        payload = json.loads(json.dumps(spec.to_payload()))
        assert payload["dedup"] is True
        rebuilt = JobSpec.from_payload(payload)
        assert rebuilt.dedup is True
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_fingerprint_unchanged_when_disabled(self, ghz_spec):
        # Pre-dedup payloads must keep their content addresses.
        assert ghz_spec().fingerprint() == ghz_spec(dedup=False).fingerprint()

    def test_fingerprint_differs_when_enabled(self, ghz_spec):
        assert ghz_spec(dedup=True).fingerprint() != ghz_spec().fingerprint()


class TestDedupJobs:
    def test_dedup_job_runs_and_reuses_the_store(self, ghz_spec, store):
        spec = ghz_spec(dedup=True)
        first = run_job(spec, store=store)
        second = run_job(spec, store=store)
        assert not first.cached
        assert first.value == pytest.approx(1.0, abs=0.2)
        assert second.cached
        assert second.value == first.value

    def test_dedup_job_matches_monolithic_exact(self, ghz_spec):
        dedup = run_job(ghz_spec(dedup=True))
        plain = run_job(ghz_spec())
        # Same plan, same exact uncut value; only the execution engine differs.
        assert dedup.exact_value == pytest.approx(plain.exact_value)

    def test_adaptive_dedup_job(self, ghz_spec):
        outcome = run_job(
            ghz_spec(dedup=True, mode="adaptive", target_error=0.05, rounds=5)
        )
        assert outcome.value == pytest.approx(1.0, abs=0.3)
