"""Unit tests of the token-bucket rate limiter (deterministic fake clock)."""

import pytest

from repro.exceptions import ServiceBusyError, ServiceError
from repro.service.ratelimit import TenantRateLimiter, TokenBucket


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_bucket_admits_burst_then_refuses():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    wait = bucket.try_acquire()
    assert wait == pytest.approx(1.0)


def test_bucket_refills_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
    bucket.try_acquire()
    bucket.try_acquire()
    assert bucket.try_acquire() > 0.0
    clock.advance(0.5)  # refills one token at 2/s
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() > 0.0


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
    clock.advance(100.0)
    assert bucket.available == pytest.approx(2.0)


def test_bucket_failed_acquire_takes_nothing():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
    assert bucket.try_acquire() == 0.0
    before = bucket.available
    assert bucket.try_acquire() > 0.0
    assert bucket.available == before


def test_bucket_validates_parameters():
    with pytest.raises(ServiceError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ServiceError):
        TokenBucket(rate=1.0, burst=0.0)


def test_limiter_isolates_tenants():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate=1.0, burst=1.0, clock=clock)
    limiter.admit("alice")
    with pytest.raises(ServiceBusyError):
        limiter.admit("alice")
    limiter.admit("bob")  # a different tenant has its own bucket


def test_limiter_retry_after_matches_refill():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate=0.5, burst=1.0, clock=clock)
    limiter.admit("alice")
    with pytest.raises(ServiceBusyError) as info:
        limiter.admit("alice")
    assert info.value.status == 429
    assert info.value.retry_after == pytest.approx(2.0)
    clock.advance(2.0)
    limiter.admit("alice")


def test_limiter_quota_refuses_at_max_active():
    limiter = TenantRateLimiter(max_active=2)
    limiter.admit("alice", active_jobs=1)
    with pytest.raises(ServiceBusyError) as info:
        limiter.admit("alice", active_jobs=2)
    assert info.value.status == 429
    assert "quota" in str(info.value)


def test_limiter_without_limits_admits_everything():
    limiter = TenantRateLimiter()
    for _ in range(100):
        limiter.admit("anyone", active_jobs=10_000)


def test_limiter_default_burst_is_at_least_one():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate=0.1, clock=clock)
    limiter.admit("alice")  # burst defaults to max(rate, 1) = 1
    with pytest.raises(ServiceBusyError):
        limiter.admit("alice")


def test_limiter_validates_parameters():
    with pytest.raises(ServiceError):
        TenantRateLimiter(rate=-1.0)
    with pytest.raises(ServiceError):
        TenantRateLimiter(rate=1.0, burst=-1.0)
    with pytest.raises(ServiceError):
        TenantRateLimiter(max_active=0)
