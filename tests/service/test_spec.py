"""Unit tests for JobSpec: validation, serialization, fingerprints."""

import pytest

from repro.exceptions import CuttingError, ServiceError
from repro.circuits import circuit_fingerprint, circuit_from_payload, circuit_to_payload
from repro.devices import example_fleet_spec
from repro.experiments import ghz_circuit, random_layered_circuit
from repro.service import JobSpec


class TestValidation:
    def test_zero_shots_rejected(self, ghz_spec):
        with pytest.raises(CuttingError, match="shots"):
            ghz_spec(shots=0)

    def test_negative_shots_rejected(self, ghz_spec):
        with pytest.raises(CuttingError, match="positive"):
            ghz_spec(shots=-100)

    def test_non_integer_seed_rejected(self, ghz_spec):
        with pytest.raises(ServiceError, match="seed"):
            ghz_spec(seed=None)

    def test_observable_width_mismatch(self, ghz_spec):
        with pytest.raises(ServiceError, match="observable"):
            ghz_spec(observable="ZZ")

    def test_invalid_observable_letters(self, ghz_spec):
        with pytest.raises(ServiceError, match="observable"):
            ghz_spec(observable="ZZQA")

    def test_unknown_backend(self, ghz_spec):
        with pytest.raises(ServiceError, match="backend"):
            ghz_spec(backend="quantum-cloud")

    def test_unknown_allocation(self, ghz_spec):
        with pytest.raises(ServiceError, match="allocation"):
            ghz_spec(allocation="greedy")

    def test_positions_and_locations_exclusive(self, ghz_spec):
        with pytest.raises(ServiceError, match="at most one"):
            ghz_spec(positions=(2,), locations=((1, 2),))

    def test_needs_width_or_plan(self, ghz_spec):
        with pytest.raises(ServiceError, match="max_fragment_width"):
            ghz_spec(max_fragment_width=None)

    def test_explicit_locations_need_no_width(self, ghz_spec):
        spec = ghz_spec(max_fragment_width=None, locations=[[1, 2]])
        assert spec.locations == ((1, 2),)

    def test_fleet_must_be_mapping(self, ghz_spec):
        with pytest.raises(ServiceError, match="fleet"):
            ghz_spec(fleet="spec.json")


class TestSerialization:
    def test_payload_roundtrip_preserves_fingerprint(self, ghz_spec):
        spec = ghz_spec(fleet=example_fleet_spec(), positions=None)
        rebuilt = JobSpec.from_payload(spec.to_payload())
        assert rebuilt.fingerprint() == spec.fingerprint()
        assert rebuilt.observable == spec.observable
        assert rebuilt.fleet == spec.fleet

    def test_payload_is_json_ready(self, ghz_spec):
        import json

        text = json.dumps(ghz_spec().to_payload())
        assert JobSpec.from_payload(json.loads(text)).fingerprint() == ghz_spec().fingerprint()

    def test_unsupported_version_rejected(self, ghz_spec):
        payload = ghz_spec().to_payload()
        payload["version"] = 99
        with pytest.raises(ServiceError, match="version"):
            JobSpec.from_payload(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ServiceError):
            JobSpec.from_payload({"observable": "Z"})
        with pytest.raises(ServiceError):
            JobSpec.from_payload("not a dict")

    def test_circuit_payload_roundtrip_exact(self):
        circuit = random_layered_circuit(3, 3, seed=11)
        rebuilt = circuit_from_payload(circuit_to_payload(circuit))
        assert circuit_fingerprint(rebuilt) == circuit_fingerprint(circuit)
        assert rebuilt.num_qubits == circuit.num_qubits
        assert len(rebuilt) == len(circuit)


class TestFingerprint:
    def test_fingerprint_ignores_circuit_name(self, ghz_spec):
        renamed = ghz_circuit(4)
        renamed.name = "completely-different-name"
        assert ghz_spec().fingerprint() == ghz_spec(circuit=renamed).fingerprint()

    @pytest.mark.parametrize(
        "override",
        [
            {"shots": 2001},
            {"seed": 8},
            {"max_fragment_width": 2},
            {"entanglement_overlap": 0.9},
            {"allocation": "uniform"},
            {"backend": "serial"},
            {"fleet": None},  # placeholder, replaced below
            {"observable": "ZZZX"},
            {"positions": (2,), "max_fragment_width": None},
        ],
    )
    def test_fingerprint_covers_every_field(self, ghz_spec, override):
        if override == {"fleet": None}:
            override = {"fleet": example_fleet_spec()}
        assert ghz_spec(**override).fingerprint() != ghz_spec().fingerprint()

    def test_fingerprint_covers_circuit_content(self, ghz_spec):
        assert (
            ghz_spec().fingerprint()
            != ghz_spec(circuit=ghz_circuit(5), observable="ZZZZZ").fingerprint()
        )

    def test_fleet_noise_changes_fingerprint(self, ghz_spec):
        import copy

        base = example_fleet_spec()
        tweaked = copy.deepcopy(base)
        tweaked["devices"][0]["noise"]["depolarizing_2q"] = 0.123
        assert ghz_spec(fleet=base).fingerprint() != ghz_spec(fleet=tweaked).fingerprint()

    def test_fingerprint_stable_across_list_tuple_inputs(self, ghz_spec):
        a = ghz_spec(max_fragment_width=None, locations=[[1, 2]])
        b = ghz_spec(max_fragment_width=None, locations=((1, 2),))
        assert a.fingerprint() == b.fingerprint()
