"""Tests of the asyncio job server: SSE streaming, limits, drain, pagination.

The centrepiece is the streaming contract: an SSE consumer sees **every**
:class:`~repro.qpd.adaptive.RoundRecord` **exactly once and in order** —
live, on replay after completion, resuming mid-stream with
``Last-Event-ID``, and across a hard (``SIGKILL``) server restart that
resumes the job from its persisted round log.
"""

import json
import os
import re
import signal
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.exceptions import ServiceBusyError, ServiceError
from repro.qpd.adaptive import RoundRecord
from repro.service import (
    JobSpec,
    RunService,
    RunStore,
    ServerThread,
    ServiceClient,
    TenantRateLimiter,
    run_job,
)

pytestmark = [pytest.mark.integration, pytest.mark.xdist_group("forkheavy")]


@pytest.fixture
def service(tmp_path):
    """A live asyncio service on a free port, with a store attached."""
    run_service = RunService(store=RunStore(tmp_path / "store"), workers=2)
    server = ServerThread(run_service)
    url = server.start()
    try:
        yield ServiceClient(url)
    finally:
        server.stop()
        run_service.close()


def _adaptive_spec(ghz_spec, rounds=4, seed=7):
    """A small adaptive job that runs exactly ``rounds`` rounds."""
    return ghz_spec(
        qubits=4,
        shots=100_000,
        seed=seed,
        mode="adaptive",
        rounds=rounds,
        target_error=1e-6,
    )


class TestStreaming:
    def test_live_stream_sees_every_round_once_in_order(self, service, ghz_spec):
        spec = _adaptive_spec(ghz_spec, rounds=5)
        job_id = service.submit(spec)["job_id"]
        events = list(service.events(job_id))
        rounds = [event for event in events if event["event"] == "round"]
        assert [event["id"] for event in rounds] == [0, 1, 2, 3, 4]
        assert events[-1]["event"] == "result"
        # Each data payload reconstructs into a RoundRecord.
        for event in rounds:
            record = RoundRecord.from_payload(event["data"]["round"])
            assert record.index == event["id"]
            assert sum(record.shots_per_term) > 0

    def test_replay_after_completion_matches_live(self, service, ghz_spec):
        spec = _adaptive_spec(ghz_spec, rounds=3)
        job_id = service.submit(spec)["job_id"]
        live = [e for e in service.events(job_id) if e["event"] == "round"]
        replay = [e for e in service.events(job_id) if e["event"] == "round"]
        assert [e["id"] for e in replay] == [e["id"] for e in live] == [0, 1, 2]
        live_payloads = [e["data"]["round"] for e in live]
        replay_payloads = [e["data"]["round"] for e in replay]
        assert replay_payloads == live_payloads

    def test_resume_with_after_skips_seen_rounds(self, service, ghz_spec):
        spec = _adaptive_spec(ghz_spec, rounds=4)
        job_id = service.submit(spec)["job_id"]
        service.wait(job_id, timeout=120)
        resumed = [e for e in service.events(job_id, after=1) if e["event"] == "round"]
        assert [e["id"] for e in resumed] == [2, 3]

    def test_watch_yields_round_payloads(self, service, ghz_spec):
        spec = _adaptive_spec(ghz_spec, rounds=3)
        job_id = service.submit(spec)["job_id"]
        rounds = list(service.watch(job_id))
        assert [r["round"]["index"] for r in rounds] == [0, 1, 2]

    def test_unknown_job_stream_is_404(self, service):
        with pytest.raises(ServiceError, match="404"):
            list(service.events("deadbeef" * 4, reconnect=False))

    def test_failed_job_stream_ends_with_failed_event(self, service):
        from repro.experiments import ghz_circuit

        # Valid spec that fails at plan time inside the worker: a 6-qubit
        # GHZ under width 2 needs two cuts, but the budget allows one.
        spec = JobSpec(
            circuit=ghz_circuit(6),
            observable="ZZZZZZ",
            shots=500,
            seed=3,
            max_fragment_width=2,
            max_cuts=1,
        )
        row = service.submit(spec)
        events = list(service.events(row["job_id"]))
        assert events[-1]["event"] == "failed"
        assert "error" in events[-1]["data"]


class TestAdmission:
    def test_rate_limit_surfaces_as_429_with_retry_after(self, tmp_path, ghz_spec):
        run_service = RunService(
            workers=2, limiter=TenantRateLimiter(rate=0.001, burst=1.0)
        )
        server = ServerThread(run_service)
        client = ServiceClient(server.start(), tenant="alice")
        try:
            client.submit(ghz_spec(shots=200, seed=1))
            with pytest.raises(ServiceBusyError) as info:
                client.submit(ghz_spec(shots=200, seed=2))
            assert info.value.status == 429
            assert info.value.retry_after > 0
        finally:
            server.stop()
            run_service.close()

    def test_quota_caps_active_jobs_per_tenant(self, ghz_spec):
        run_service = RunService(workers=1, limiter=TenantRateLimiter(max_active=1))
        server = ServerThread(run_service)
        url = server.start()
        alice = ServiceClient(url, tenant="alice")
        bob = ServiceClient(url, tenant="bob")
        try:
            alice.submit(_adaptive_spec(ghz_spec, rounds=8, seed=1))
            with pytest.raises(ServiceBusyError) as info:
                alice.submit(ghz_spec(shots=200, seed=2))
            assert info.value.status == 429
            # Another tenant is unaffected by alice's quota.
            bob.submit(ghz_spec(shots=200, seed=3))
        finally:
            server.stop()
            run_service.close()

    def test_drain_refuses_with_503_and_finishes_in_flight(self, tmp_path, ghz_spec):
        store = RunStore(tmp_path / "store")
        run_service = RunService(store=store, workers=2)
        server = ServerThread(run_service)
        client = ServiceClient(server.start())
        spec = _adaptive_spec(ghz_spec, rounds=6)
        job_id = client.submit(spec)["job_id"]
        run_service.begin_drain()
        with pytest.raises(ServiceBusyError) as info:
            client.submit(ghz_spec(shots=200, seed=99))
        assert info.value.status == 503
        assert info.value.retry_after > 0
        assert client.health()["draining"] is True
        # Stopping with drain=True waits for the in-flight job to finish.
        server.stop(drain=True)
        run_service.close()
        assert store.get_stage(spec.fingerprint(), "result") is not None
        store.close()


class TestPagination:
    def test_jobs_pagination_and_state_filter(self, service, ghz_spec):
        ids = []
        for seed in range(4):
            ids.append(service.submit(ghz_spec(shots=300, seed=seed))["job_id"])
        for job_id in ids:
            service.wait(job_id, timeout=120)
        assert len(service.jobs()) == 4
        page = service.jobs(limit=2, offset=1)
        assert [row["job_id"] for row in page] == ids[1:3]
        assert len(service.jobs(state="done")) == 4
        assert service.jobs(state="failed") == []

    def test_runs_pagination_and_stage_filter(self, service, ghz_spec):
        for seed in range(3):
            service.wait(service.submit(ghz_spec(shots=300, seed=seed))["job_id"], timeout=120)
        runs = service.runs()
        assert len(runs) == 3
        assert service.runs(limit=2) == runs[:2]
        assert service.runs(offset=2) == runs[2:]
        assert len(service.runs(stage="result")) == 3

    def test_invalid_query_parameters_are_rejected(self, service):
        with pytest.raises(ServiceError):
            service.jobs(state="bogus")
        with pytest.raises(ServiceError):
            service.jobs(offset=-1)
        with pytest.raises(ServiceError):
            service._request("/jobs?limit=notanumber")


class TestHardRestart:
    def test_sigkill_restart_resumes_bitwise_and_streams_exactly_once(
        self, tmp_path, ghz_spec
    ):
        """SIGKILL a serving process mid-adaptive-run; restart and resume.

        The client sees every round exactly once and in order across the
        restart (``after=`` resume from the persisted round log), and the
        final estimate is bitwise identical to an uninterrupted run of the
        same spec in a fresh store.
        """
        store_dir = tmp_path / "store"
        spec = _adaptive_spec(ghz_spec, rounds=10)
        env = {**os.environ, "PYTHONPATH": str(Path(__file__).parents[2] / "src")}

        def start_server():
            process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "serve",
                    "--port",
                    "0",
                    "--store",
                    str(store_dir),
                    "--workers",
                    "2",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            banner = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no listening banner in {banner!r}"
            return process, f"http://{match.group(1)}:{match.group(2)}"

        process, url = start_server()
        seen = []
        try:
            client = ServiceClient(url)
            job_id = client.submit(spec)["job_id"]
            # Consume live rounds; hard-kill the server after two.
            for event in client.events(job_id, reconnect=False):
                if event["event"] == "round":
                    seen.append(event)
                    if len(seen) >= 2:
                        break
        except ServiceError:
            pass  # the kill below may race the stream shutdown
        finally:
            process.kill()
            process.wait(timeout=30)

        assert len(seen) >= 2
        last_seen = max(event["id"] for event in seen)

        # Restart on the same store and resubmit: the job resumes from the
        # persisted round log; the stream resumes past the last seen index.
        process, url = start_server()
        try:
            client = ServiceClient(url)
            resumed_id = client.submit(spec)["job_id"]
            assert resumed_id == job_id
            tail = list(client.events(job_id, after=last_seen))
            assert tail[-1]["event"] == "result"
            tail_rounds = [event for event in tail if event["event"] == "round"]
            indices = [event["id"] for event in seen] + [e["id"] for e in tail_rounds]
            assert indices == sorted(set(indices)), "duplicate or out-of-order rounds"
            assert indices == list(range(10)), indices
            resumed_result = tail[-1]["data"]
            outcome = client.wait(job_id, timeout=120)
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)

        # The kill genuinely interrupted the run: the second attempt resumed
        # from the persisted round log rather than a cached result.
        assert outcome["cached"] is False
        assert outcome["resumed_from"] == "rounds"

        # Bitwise-identical to an uninterrupted run in a fresh store.
        fresh = run_job(spec, store=RunStore(tmp_path / "fresh"))
        assert outcome["value"] == fresh.value
        assert outcome["standard_error"] == fresh.standard_error
        assert outcome["total_shots"] == fresh.total_shots
        assert resumed_result["value"] == fresh.value
        assert resumed_result["rounds_completed"] == 10


class TestHttpBasics:
    def test_health_reports_ok(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["draining"] is False
        assert health["workers"] == 2

    def test_unknown_path_is_404(self, service):
        with pytest.raises(ServiceError, match="404"):
            service._request("/nope")

    def test_non_json_body_is_400(self, service):
        request = urllib.request.Request(
            f"{service.base_url}/jobs",
            data=b"not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        assert "error" in json.loads(info.value.read())

    def test_keep_alive_serves_many_requests_per_connection(self, service):
        import http.client
        from urllib.parse import urlsplit

        parsed = urlsplit(service.base_url)
        connection = http.client.HTTPConnection(parsed.hostname, parsed.port, timeout=10)
        try:
            for _ in range(5):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                body = response.read()
                assert response.status == 200
                assert json.loads(body)["status"] == "ok"
        finally:
            connection.close()

    def test_duplicate_submission_dedups(self, service, ghz_spec):
        spec = ghz_spec(shots=400)
        first = service.submit(spec)
        second = service.submit(spec)
        assert first["job_id"] == second["job_id"]
        service.wait(first["job_id"], timeout=120)
        assert len(service.jobs()) == 1
