"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that environments without the ``wheel`` package (offline machines using
the legacy editable-install path) can still run ``pip install -e .``.
"""

from setuptools import setup

setup()
