"""CI smoke of `/metrics` under load, plus span-tree JSONL export.

Starts the asyncio service in-process, fires concurrent job submissions at
it, and scrapes ``GET /metrics`` **while the load is in flight**.  Asserts
that the scrape is Prometheus text format, that the core series are
present, and that the counters are monotone between the mid-load scrape
and a final post-load scrape.  Then pulls the span tree persisted for one
of the submitted jobs out of the ``RunStore``, asserts it is a single
connected tree (no orphan spans), and writes it as JSON-lines — one span
per line — for CI to upload next to ``BENCH_service_load.json``.

Usage: ``PYTHONPATH=src python tools/metrics_smoke.py [spans_out.jsonl]``
"""

import json
import re
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro.experiments import ghz_circuit
from repro.service import JobSpec, RunService, RunStore, ServerThread, ServiceClient
from repro.telemetry.tracing import find_orphans
from repro.utils.logging import configure_logging, get_logger

_LOG = get_logger("tools.metrics_smoke")

#: Series whose ``# TYPE`` headers must be present on every scrape.
CORE_SERIES = (
    "repro_http_requests_total",
    "repro_http_request_seconds",
    "repro_submissions_total",
    "repro_scheduler_queue_depth",
    "repro_plan_kappa",
    "repro_kernel_gate_applications_total",
    "repro_kernel_gate_seconds",
)
#: Submitting threads × jobs per thread.
THREADS = 3
JOBS_PER_THREAD = 3


def _scrape(url: str) -> str:
    """Fetch ``/metrics``; assert status and Prometheus text content type."""
    with urllib.request.urlopen(f"{url}/metrics", timeout=30) as response:
        assert response.status == 200, response.status
        content_type = response.headers["Content-Type"]
        assert content_type.startswith("text/plain"), content_type
        return response.read().decode()


def _sample(text: str, series: str) -> float | None:
    """Return the value of one exact series line, or ``None`` when absent."""
    match = re.search(rf"^{re.escape(series)} ([0-9.e+-]+)$", text, flags=re.M)
    return None if match is None else float(match.group(1))


def main() -> int:
    """Run the metrics smoke scenario; return a process exit code."""
    configure_logging(level="info")
    out_path = Path(sys.argv[1] if len(sys.argv) > 1 else "spans.jsonl")
    store = RunStore(tempfile.mkdtemp(prefix="repro-metrics-smoke-"))
    service = RunService(store=store, workers=2)
    server = ServerThread(service)
    url = server.start()
    client = ServiceClient(url, tenant="loadgen")
    job_ids: list[str] = []
    errors: list[Exception] = []

    def submit_batch(offset: int) -> None:
        batch_client = ServiceClient(url, tenant="loadgen")
        try:
            for index in range(JOBS_PER_THREAD):
                spec = JobSpec(
                    circuit=ghz_circuit(4),
                    observable="ZZZZ",
                    shots=400,
                    seed=100 * offset + index,
                    max_fragment_width=2,
                )
                job_ids.append(batch_client.submit(spec)["job_id"])
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append(error)

    try:
        assert client.health()["status"] == "ok"
        baseline = _scrape(url)
        for name in CORE_SERIES:
            assert f"# TYPE {name}" in baseline, f"missing core series {name}"
        _LOG.info("core series present: %s", ", ".join(CORE_SERIES))

        threads = [
            threading.Thread(target=submit_batch, args=(offset,)) for offset in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        mid_load = _scrape(url)  # the endpoint answers while submissions are in flight
        for thread in threads:
            thread.join(timeout=120)
        assert errors == [], errors
        for job_id in job_ids:
            client.wait(job_id, timeout=300)
        settled = _scrape(url)

        total_jobs = THREADS * JOBS_PER_THREAD
        for series in (
            'repro_http_requests_total{path="/metrics",status="200"}',
            'repro_submissions_total{tenant="loadgen"}',
        ):
            before = _sample(mid_load, series) or 0.0
            after = _sample(settled, series)
            assert after is not None, f"{series} missing after load"
            assert after >= before, f"{series} not monotone: {before} -> {after}"
        submissions = _sample(settled, 'repro_submissions_total{tenant="loadgen"}')
        assert submissions == total_jobs, (submissions, total_jobs)
        # The settled scrape cannot count itself (the counter lands after the
        # body renders), so it must have seen at least the first two scrapes.
        assert (_sample(settled, 'repro_http_requests_total{path="/metrics",status="200"}')
                or 0.0) >= 2
        _LOG.info(
            "monotone counters confirmed across %d concurrent submissions", total_jobs
        )

        # The jobs simulated circuits in-process, so the kernel dispatch
        # counter and the per-gate latency histogram must carry samples for
        # the default kernel (labelled by kernel and gate arity).
        assert re.search(
            r'^repro_kernel_gate_applications_total\{kernel="einsum",arity="\d+"\} [1-9]',
            settled,
            flags=re.M,
        ), "no einsum gate applications recorded during load"
        gate_observations = _sample(settled, 'repro_kernel_gate_seconds_count{kernel="einsum"}')
        assert gate_observations is not None and gate_observations >= 1.0, gate_observations
        _LOG.info(
            "kernel dispatch telemetry present: %s gate-latency observations",
            gate_observations,
        )

        trace = store.get_trace(job_ids[0])
        assert trace is not None, "submitted job left no span tree in the store"
        orphans = find_orphans(trace)
        assert orphans == [], f"span tree has orphans: {orphans}"
        span_names = {span["name"] for span in trace["spans"]}
        assert {"submit", "job", "execute"} <= span_names, span_names
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            "\n".join(json.dumps(span, sort_keys=True) for span in trace["spans"]) + "\n"
        )
        _LOG.info(
            "span JSONL written: %d spans of trace %s -> %s",
            len(trace["spans"]),
            trace["trace_id"],
            out_path,
        )
    finally:
        server.stop()
        service.close()

    _LOG.info("metrics smoke OK")
    print("metrics smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
