"""CI smoke test of the job service over real HTTP.

Starts ``repro serve`` machinery in-process on a free port, submits a 2-cut
GHZ job through the HTTP client, polls it to completion, verifies the
estimate against the exact value, then re-submits the identical job against
a *fresh* service sharing the same store and asserts it is served from the
store without re-execution.  A third round submits an **adaptive** job and
polls the live progress fields (shots spent / current standard error /
rounds) that ``repro jobs status`` surfaces.  Exits non-zero on any
failure.

Usage: ``PYTHONPATH=src python tools/service_smoke.py [store_dir]``
"""

import sys
import tempfile
import threading

from repro.experiments import ghz_circuit
from repro.service import JobSpec, RunService, RunStore, ServiceClient, make_server


def _start(service: RunService) -> tuple:
    server = make_server(host="127.0.0.1", port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    return server, ServiceClient(f"http://{host}:{port}")


def main() -> int:
    """Run the smoke scenario; return a process exit code."""
    store_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-smoke-")
    spec = JobSpec(
        circuit=ghz_circuit(4),
        observable="ZZZZ",
        shots=2000,
        seed=42,
        max_fragment_width=2,  # forces a 2-cut plan (three width-2 fragments)
    )

    # Round 1: fresh service, job runs for real.
    service = RunService(store=RunStore(store_dir), workers=2)
    server, client = _start(service)
    try:
        health = client.health()
        assert health["status"] == "ok", health
        row = client.submit(spec)
        print(f"submitted 2-cut GHZ job {row['job_id']} ({row['state']})")
        outcome = client.wait(row["job_id"], timeout=300)
        assert outcome["fingerprint"] == spec.fingerprint(), outcome
        assert outcome["total_shots"] == 2000, outcome
        assert abs(outcome["value"] - outcome["exact_value"]) < 0.5, outcome
        assert not outcome["cached"], "first run must not be a cache hit"
        print(
            f"completed: value={outcome['value']:.4f} ± {outcome['standard_error']:.4f} "
            f"(exact {outcome['exact_value']:.4f})"
        )
    finally:
        server.shutdown()
        server.server_close()
        service.close()

    # Round 2: a restarted service on the same store serves the job from disk.
    service = RunService(store=RunStore(store_dir), workers=2)
    server, client = _start(service)
    try:
        row = client.submit(spec)
        cached = client.wait(row["job_id"], timeout=60)
        assert cached["cached"], "re-submission after restart must hit the run store"
        assert cached["value"] == outcome["value"], (cached, outcome)
        runs = client.runs()
        assert any(r["fingerprint"] == spec.fingerprint() for r in runs), runs
        print(f"store hit confirmed after restart (value {cached['value']:.4f}, no re-execution)")

        # Round 3: an adaptive job reports live progress through job status.
        adaptive_spec = JobSpec(
            circuit=ghz_circuit(4),
            observable="ZZZZ",
            shots=100_000,
            seed=11,
            max_fragment_width=2,
            mode="adaptive",
            target_error=0.04,
        )
        adaptive_row = client.submit(adaptive_spec)
        adaptive_outcome = client.wait(adaptive_row["job_id"], timeout=300)
        assert adaptive_outcome["mode"] == "adaptive", adaptive_outcome
        assert adaptive_outcome["converged"], adaptive_outcome
        assert adaptive_outcome["rounds_completed"] >= 1, adaptive_outcome
        assert adaptive_outcome["standard_error"] <= 0.04, adaptive_outcome
        assert adaptive_outcome["total_shots"] < 100_000, adaptive_outcome
        status = client.status(adaptive_row["job_id"])
        progress = status.get("progress")
        assert progress is not None, status
        assert progress["shots_spent"] == adaptive_outcome["total_shots"], (progress, adaptive_outcome)
        assert progress["current_stderr"] is not None, progress
        assert progress["target_error"] == 0.04, progress
        print(
            f"adaptive progress confirmed: {progress['rounds_completed']} rounds, "
            f"{progress['shots_spent']} shots, stderr {progress['current_stderr']:.4f} "
            f"(target {progress['target_error']})"
        )
    finally:
        server.shutdown()
        server.server_close()
        service.close()

    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
