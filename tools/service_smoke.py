"""CI smoke test of the job service over real HTTP (asyncio server).

Starts the asyncio ``repro serve`` engine in-process on a free port, submits
a 2-cut GHZ job through the HTTP client, polls it to completion, verifies
the estimate against the exact value, then re-submits the identical job
against a *fresh* service sharing the same store and asserts it is served
from the store without re-execution.  A third round submits an **adaptive**
job and consumes its **SSE event stream**, checking every round arrives
exactly once and in order, that a replay with ``after=`` resumes past seen
rounds, and that the live progress fields surface through job status.  A
final round checks per-tenant rate limiting (429 + ``Retry-After``) and
graceful drain (503 for new work, in-flight jobs finish).  Exits non-zero
on any failure.

Usage: ``PYTHONPATH=src python tools/service_smoke.py [store_dir]``
"""

import sys
import tempfile

from repro.exceptions import ServiceBusyError
from repro.service import (
    JobSpec,
    RunService,
    RunStore,
    ServerThread,
    ServiceClient,
    TenantRateLimiter,
)
from repro.experiments import ghz_circuit
from repro.utils.logging import configure_logging, get_logger

_LOG = get_logger("tools.service_smoke")


def main() -> int:
    """Run the smoke scenario; return a process exit code."""
    configure_logging(level="info")
    store_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-smoke-")
    spec = JobSpec(
        circuit=ghz_circuit(4),
        observable="ZZZZ",
        shots=2000,
        seed=42,
        max_fragment_width=2,  # forces a 2-cut plan (three width-2 fragments)
    )

    # Round 1: fresh service, job runs for real.
    service = RunService(store=RunStore(store_dir), workers=2)
    server = ServerThread(service)
    client = ServiceClient(server.start())
    try:
        health = client.health()
        assert health["status"] == "ok", health
        assert health["draining"] is False, health
        row = client.submit(spec)
        _LOG.info("submitted 2-cut GHZ job %s (%s)", row["job_id"], row["state"])
        outcome = client.wait(row["job_id"], timeout=300)
        assert outcome["fingerprint"] == spec.fingerprint(), outcome
        assert outcome["total_shots"] == 2000, outcome
        assert abs(outcome["value"] - outcome["exact_value"]) < 0.5, outcome
        assert not outcome["cached"], "first run must not be a cache hit"
        _LOG.info(
            "completed: value=%.4f ± %.4f (exact %.4f)",
            outcome["value"],
            outcome["standard_error"],
            outcome["exact_value"],
        )
    finally:
        server.stop()
        service.close()

    # Round 2: a restarted service on the same store serves the job from disk.
    service = RunService(store=RunStore(store_dir), workers=2)
    server = ServerThread(service)
    client = ServiceClient(server.start())
    try:
        row = client.submit(spec)
        cached = client.wait(row["job_id"], timeout=60)
        assert cached["cached"], "re-submission after restart must hit the run store"
        assert cached["value"] == outcome["value"], (cached, outcome)
        runs = client.runs(limit=10)
        assert any(r["fingerprint"] == spec.fingerprint() for r in runs), runs
        _LOG.info(
            "store hit confirmed after restart (value %.4f, no re-execution)", cached["value"]
        )

        # Round 3: an adaptive job streams its rounds over SSE.
        adaptive_spec = JobSpec(
            circuit=ghz_circuit(4),
            observable="ZZZZ",
            shots=100_000,
            seed=11,
            max_fragment_width=2,
            mode="adaptive",
            target_error=0.04,
        )
        adaptive_row = client.submit(adaptive_spec)
        events = list(client.events(adaptive_row["job_id"]))
        round_ids = [event["id"] for event in events if event["event"] == "round"]
        assert round_ids == sorted(set(round_ids)), f"rounds not exactly-once: {round_ids}"
        assert round_ids and round_ids[0] == 0, round_ids
        assert events[-1]["event"] == "result", events[-1]
        adaptive_outcome = events[-1]["data"]
        assert adaptive_outcome["mode"] == "adaptive", adaptive_outcome
        assert adaptive_outcome["converged"], adaptive_outcome
        assert adaptive_outcome["rounds_completed"] == len(round_ids), adaptive_outcome
        assert adaptive_outcome["standard_error"] <= 0.04, adaptive_outcome
        replay = [e["id"] for e in client.events(adaptive_row["job_id"], after=round_ids[0])
                  if e["event"] == "round"]
        assert replay == round_ids[1:], (replay, round_ids)
        status = client.status(adaptive_row["job_id"])
        progress = status.get("progress")
        assert progress is not None, status
        assert progress["shots_spent"] == adaptive_outcome["total_shots"], (
            progress,
            adaptive_outcome,
        )
        _LOG.info(
            "SSE streaming confirmed: %d rounds exactly-once, stderr %.4f (target 0.04)",
            len(round_ids),
            adaptive_outcome["standard_error"],
        )
    finally:
        server.stop()
        service.close()

    # Round 4: rate limiting and graceful drain.
    service = RunService(workers=2, limiter=TenantRateLimiter(rate=0.001, burst=1.0))
    server = ServerThread(service)
    client = ServiceClient(server.start(), tenant="smoke")
    try:
        client.submit(spec)
        try:
            client.submit(JobSpec(ghz_circuit(4), "ZZZZ", shots=500, seed=1,
                                  max_fragment_width=2))
            raise AssertionError("rate limiter admitted a second burst submission")
        except ServiceBusyError as error:
            assert error.status == 429 and error.retry_after > 0, error
        service.begin_drain()
        try:
            client.submit(JobSpec(ghz_circuit(4), "ZZZZ", shots=500, seed=2,
                                  max_fragment_width=2))
            raise AssertionError("draining service admitted a submission")
        except ServiceBusyError as error:
            assert error.status == 503, error
        assert client.health()["draining"] is True
        _LOG.info("rate limit (429) and drain (503) confirmed")
    finally:
        server.stop(drain=True)
        service.close()

    _LOG.info("service smoke OK")
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
