"""Concurrent load generator for the job service.

Drives a running ``repro serve`` endpoint with ``--concurrency`` worker
threads, each looping submit → status over one persistent (keep-alive when
the server supports it) HTTP connection, and reports sustained
**submissions/second** plus **p50/p99 latency** for both request kinds.

Every worker submits the *same* job payload, so after the first submission
the scheduler serves every request from its dedup path — the measurement
exercises the HTTP/server layer, not the estimation pipeline.  Responses
with status 429/503 (rate limit / drain) are counted separately as
``busy``, not as errors.

Usage::

    PYTHONPATH=src python tools/load_gen.py --url http://127.0.0.1:8765 \
        --duration 3 --concurrency 8

The summary is printed as JSON; :mod:`benchmarks.bench_service_load` imports
:func:`run_load` directly to compare the asyncio server against the legacy
threaded one.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
import urllib.parse
from dataclasses import dataclass

from repro.utils.serialization import canonical_json

__all__ = ["LoadResult", "run_load"]


def _percentile(values: list[float], fraction: float) -> float:
    """Return the ``fraction`` percentile (0..1) of ``values`` (0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


@dataclass(frozen=True)
class LoadResult:
    """Aggregated metrics of one load run.

    Attributes
    ----------
    duration_seconds:
        Wall-clock length of the run.
    concurrency:
        Number of concurrent client workers.
    submissions:
        Accepted job submissions (2xx responses).
    statuses:
        Completed status polls (200 responses).
    busy:
        Submissions refused with 429/503 (rate limit or drain).
    errors:
        Transport failures and unexpected statuses.
    submissions_per_second:
        ``submissions / duration_seconds`` — the throughput headline.
    submit_p50_ms / submit_p99_ms:
        Submission latency percentiles in milliseconds.
    status_p50_ms / status_p99_ms:
        Status-poll latency percentiles in milliseconds.
    """

    duration_seconds: float
    concurrency: int
    submissions: int
    statuses: int
    busy: int
    errors: int
    submissions_per_second: float
    submit_p50_ms: float
    submit_p99_ms: float
    status_p50_ms: float
    status_p99_ms: float

    def to_payload(self) -> dict:
        """Return the JSON-serializable form."""
        return {
            "duration_seconds": round(self.duration_seconds, 3),
            "concurrency": self.concurrency,
            "submissions": self.submissions,
            "statuses": self.statuses,
            "busy": self.busy,
            "errors": self.errors,
            "submissions_per_second": round(self.submissions_per_second, 2),
            "submit_p50_ms": round(self.submit_p50_ms, 3),
            "submit_p99_ms": round(self.submit_p99_ms, 3),
            "status_p50_ms": round(self.status_p50_ms, 3),
            "status_p99_ms": round(self.status_p99_ms, 3),
        }


def run_load(
    url: str,
    payload: dict,
    duration: float = 3.0,
    concurrency: int = 8,
    tenant: str | None = None,
) -> LoadResult:
    """Hammer ``url`` with submit → status loops for ``duration`` seconds.

    Parameters
    ----------
    url:
        Service root, e.g. ``"http://127.0.0.1:8765"``.
    payload:
        The job payload every worker submits (identical across workers, so
        the scheduler dedups and the run measures the server layer).
    duration:
        Wall-clock seconds to sustain the load.
    concurrency:
        Number of worker threads, each with its own connection.
    tenant:
        Optional ``X-Tenant`` header value.
    """
    parsed = urllib.parse.urlsplit(url)
    body = canonical_json(payload).encode()
    headers = {"Content-Type": "application/json"}
    if tenant is not None:
        headers["X-Tenant"] = tenant

    lock = threading.Lock()
    submit_latencies: list[float] = []
    status_latencies: list[float] = []
    totals = {"busy": 0, "errors": 0}
    started = time.perf_counter()
    deadline = started + duration

    def worker() -> None:
        # auto_open reconnects transparently when the server closes the
        # connection (the legacy HTTP/1.0 server does, per request).
        conn = http.client.HTTPConnection(parsed.hostname, parsed.port, timeout=30)
        local_submit: list[float] = []
        local_status: list[float] = []
        busy = errors = 0
        job_id = None
        while time.perf_counter() < deadline:
            start = time.perf_counter()
            try:
                conn.request("POST", "/jobs", body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                if response.status in (429, 503):
                    busy += 1
                elif response.status in (200, 201):
                    job_id = json.loads(data)["job_id"]
                    local_submit.append(time.perf_counter() - start)
                else:
                    errors += 1
            except (http.client.HTTPException, OSError, json.JSONDecodeError):
                errors += 1
                conn.close()
                continue
            if job_id is None:
                continue
            start = time.perf_counter()
            try:
                conn.request("GET", f"/jobs/{job_id}")
                response = conn.getresponse()
                response.read()
                if response.status == 200:
                    local_status.append(time.perf_counter() - start)
                else:
                    errors += 1
            except (http.client.HTTPException, OSError):
                errors += 1
                conn.close()
        conn.close()
        with lock:
            submit_latencies.extend(local_submit)
            status_latencies.extend(local_status)
            totals["busy"] += busy
            totals["errors"] += errors

    threads = [threading.Thread(target=worker, daemon=True) for _ in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    return LoadResult(
        duration_seconds=elapsed,
        concurrency=concurrency,
        submissions=len(submit_latencies),
        statuses=len(status_latencies),
        busy=totals["busy"],
        errors=totals["errors"],
        submissions_per_second=len(submit_latencies) / elapsed if elapsed > 0 else 0.0,
        submit_p50_ms=_percentile(submit_latencies, 0.50) * 1000,
        submit_p99_ms=_percentile(submit_latencies, 0.99) * 1000,
        status_p50_ms=_percentile(status_latencies, 0.50) * 1000,
        status_p99_ms=_percentile(status_latencies, 0.99) * 1000,
    )


def _default_payload(qubits: int, shots: int, seed: int) -> dict:
    """Build the default GHZ job payload submitted by every worker."""
    from repro.experiments import ghz_circuit
    from repro.service import JobSpec

    spec = JobSpec(
        circuit=ghz_circuit(qubits),
        observable="Z" * qubits,
        shots=shots,
        seed=seed,
        max_fragment_width=max(2, qubits - 1),
    )
    return spec.to_payload()


def main(argv: list[str] | None = None) -> int:
    """Run the load generator CLI; print the JSON summary."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", type=str, default="http://127.0.0.1:8765")
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--tenant", type=str, default=None)
    parser.add_argument("--qubits", type=int, default=4)
    parser.add_argument("--shots", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    payload = _default_payload(args.qubits, args.shots, args.seed)
    result = run_load(
        args.url,
        payload,
        duration=args.duration,
        concurrency=args.concurrency,
        tenant=args.tenant,
    )
    print(json.dumps(result.to_payload(), indent=2))
    return 0 if result.errors == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
