"""Link-check a built mkdocs site: every internal href/src must resolve.

Usage: ``python tools/check_site_links.py site/``

Walks every HTML page of the built site, extracts ``href`` / ``src``
attributes, and verifies that each *internal* target (no scheme, no
``mailto:``) exists on disk — resolving relative paths against the page and
directory URLs against their ``index.html``.  Fragment-only links (``#...``)
and external URLs are skipped.  Exits non-zero listing every broken link,
which is what the ``docs`` CI job runs after ``mkdocs build --strict``
(strict mode catches broken *markdown* links; this catches everything the
theme and plugins emit into the final HTML).
"""

from __future__ import annotations

import sys
from html.parser import HTMLParser
from pathlib import Path
from urllib.parse import urlparse


class _LinkCollector(HTMLParser):
    def __init__(self) -> None:
        super().__init__()
        self.links: list[str] = []

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        for name, value in attrs:
            if name in ("href", "src") and value:
                self.links.append(value)


def _is_internal(link: str) -> bool:
    parsed = urlparse(link)
    return not parsed.scheme and not parsed.netloc and bool(parsed.path)


def _resolves(page: Path, link: str, root: Path) -> bool:
    path = urlparse(link).path
    base = root if path.startswith("/") else page.parent
    target = (base / path.lstrip("/")).resolve()
    if target.is_file():
        return True
    # Directory-style URL: mkdocs serves <dir>/index.html.
    return (target / "index.html").is_file()


def check_site(root: Path) -> list[str]:
    """Return one message per broken internal link under ``root``."""
    broken: list[str] = []
    pages = sorted(root.rglob("*.html"))
    if not pages:
        return [f"no HTML pages found under {root}"]
    for page in pages:
        collector = _LinkCollector()
        collector.feed(page.read_text(errors="replace"))
        for link in collector.links:
            if not _is_internal(link):
                continue
            if not _resolves(page, link, root):
                broken.append(f"{page.relative_to(root)}: broken link {link!r}")
    return broken


def main(argv: list[str]) -> int:
    """Run the checker and return the process exit code."""
    if len(argv) != 1:
        print("usage: python tools/check_site_links.py <site-dir>")
        return 2
    root = Path(argv[0])
    if not root.is_dir():
        print(f"site directory not found: {root}")
        return 2
    broken = check_site(root)
    pages = len(list(root.rglob("*.html")))
    if broken:
        print(f"{len(broken)} broken internal link(s) across {pages} pages:")
        for message in broken:
            print(f"  {message}")
        return 1
    print(f"link check OK: {pages} pages, no broken internal links")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
