"""Performance benchmarks of the simulator substrate.

Run with ``pytest benchmarks/bench_simulator.py --benchmark-only``.

These do not correspond to a table in the paper; they document the cost of
the substrate the experiments run on (statevector evolution, branching
density-matrix simulation of the teleportation gadget, and shot sampling),
so performance regressions in the substrate are visible.
"""

import pytest

from repro.circuits import DensityMatrixSimulator, ShotSimulator, StatevectorSimulator
from repro.experiments import ghz_circuit, random_layered_circuit
from repro.teleport import teleportation_circuit
from repro.quantum import random_statevector


def test_benchmark_statevector_random_circuit(benchmark):
    """Statevector simulation of a random 8-qubit, depth-6 layered circuit."""
    circuit = random_layered_circuit(8, 6, seed=1)
    simulator = StatevectorSimulator()
    state = benchmark(simulator.run, circuit)
    assert abs(float((abs(state.data) ** 2).sum()) - 1.0) < 1e-9


def test_benchmark_density_matrix_teleportation(benchmark):
    """Exact branching simulation of the 3-qubit teleportation circuit."""
    message = random_statevector(1, seed=2)
    circuit = teleportation_circuit(message_state=message, resource=0.7)
    simulator = DensityMatrixSimulator()
    result = benchmark(simulator.run, circuit)
    assert len(result.branches) == 4


def test_benchmark_shot_sampling_ghz(benchmark):
    """Exact-distribution sampling of 10k shots from a 6-qubit GHZ circuit."""
    from repro.circuits import QuantumCircuit

    circuit = QuantumCircuit(6, 6, name="ghz_measured")
    circuit.compose(ghz_circuit(6), inplace=True)
    circuit.measure_all()
    simulator = ShotSimulator(method="exact")
    counts = benchmark(simulator.run, circuit, 10_000, 7)
    assert counts.shots == 10_000
    assert set(counts.keys()) <= {"000000", "111111"}


def test_benchmark_trajectory_sampling(benchmark):
    """Per-shot trajectory sampling (500 shots) of the teleportation circuit."""
    message = random_statevector(1, seed=3)
    circuit = teleportation_circuit(message_state=message, resource=1.0)
    simulator = ShotSimulator(method="trajectory")
    counts = benchmark(simulator.run, circuit, 500, 11)
    assert counts.shots == 500
