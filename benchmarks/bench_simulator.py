"""Performance benchmarks of the simulator substrate and execution backends.

Run with ``pytest benchmarks/bench_simulator.py --benchmark-only``.

These do not correspond to a table in the paper; they document the cost of
the substrate the experiments run on (statevector evolution, branching
density-matrix simulation of the teleportation gadget, shot sampling, and
the batched execution backends), so performance regressions in the substrate
are visible.

The backend-comparison test additionally writes ``BENCH_backend_speedup.json``
(path overridable via ``REPRO_BENCH_OUT``) so CI can archive the speedup
trajectory.  Set ``REPRO_BENCH_FULL=1`` to run the comparison at the paper's
full Figure-6 scale (1000 input states × 6 entanglement levels); the default
is a reduced sweep sized for CI smoke runs.
"""

import os
import time

import numpy as np

from repro.circuits import (
    DensityMatrixSimulator,
    DistributionCache,
    ProcessPoolBackend,
    SerialBackend,
    ShotSimulator,
    StatevectorSimulator,
    VectorizedBackend,
)
from repro.cutting import CutLocation, NMEWireCut, TeleportationWireCut, build_sampling_models
from repro.experiments import ghz_circuit, random_layered_circuit
from repro.experiments.workloads import random_single_qubit_states, state_preparation_circuit
from repro.quantum import random_statevector
from repro.quantum.bell import k_from_overlap
from repro.teleport import teleportation_circuit


def test_benchmark_statevector_random_circuit(benchmark):
    """Statevector simulation of a random 8-qubit, depth-6 layered circuit."""
    circuit = random_layered_circuit(8, 6, seed=1)
    simulator = StatevectorSimulator()
    state = benchmark(simulator.run, circuit)
    assert abs(float((abs(state.data) ** 2).sum()) - 1.0) < 1e-9


def test_benchmark_density_matrix_teleportation(benchmark):
    """Exact branching simulation of the 3-qubit teleportation circuit."""
    message = random_statevector(1, seed=2)
    circuit = teleportation_circuit(message_state=message, resource=0.7)
    simulator = DensityMatrixSimulator()
    result = benchmark(simulator.run, circuit)
    assert len(result.branches) == 4


def test_benchmark_shot_sampling_ghz(benchmark):
    """Exact-distribution sampling of 10k shots from a 6-qubit GHZ circuit."""
    from repro.circuits import QuantumCircuit

    circuit = QuantumCircuit(6, 6, name="ghz_measured")
    circuit.compose(ghz_circuit(6), inplace=True)
    circuit.measure_all()
    simulator = ShotSimulator(method="exact")
    counts = benchmark(simulator.run, circuit, 10_000, 7)
    assert counts.shots == 10_000
    assert set(counts.keys()) <= {"000000", "111111"}


def test_benchmark_trajectory_sampling(benchmark):
    """Per-shot trajectory sampling (500 shots) of the teleportation circuit."""
    message = random_statevector(1, seed=3)
    circuit = teleportation_circuit(message_state=message, resource=1.0)
    simulator = ShotSimulator(method="trajectory")
    counts = benchmark(simulator.run, circuit, 500, 11)
    assert counts.shots == 500


# ---------------------------------------------------------------------------
# Execution-backend benchmarks
# ---------------------------------------------------------------------------


def _sweep_workload(num_states: int, overlaps: tuple[float, ...]):
    workload = random_single_qubit_states(num_states, seed=2024)
    circuits = [state_preparation_circuit(u) for u in workload.unitaries]
    locations = [CutLocation(0, len(c)) for c in circuits]
    protocols = [
        TeleportationWireCut() if abs(f - 1.0) < 1e-12 else NMEWireCut(k_from_overlap(f))
        for f in overlaps
    ]
    return circuits, locations, protocols


def _run_sweep(circuits, locations, protocols, backend):
    return [
        build_sampling_models(circuits, locations, protocol, "Z", backend=backend)
        for protocol in protocols
    ]


def _probability_matrix(models_per_protocol) -> np.ndarray:
    rows = []
    for models in models_per_protocol:
        for model in models:
            rows.extend(term.probability_plus for term in model.terms)
    return np.array(rows)


def test_benchmark_backend_serial_sweep(benchmark):
    """Serial backend on a reduced Figure-6-style sweep (40 states × 2 levels)."""
    circuits, locations, protocols = _sweep_workload(40, (0.5, 0.9))
    models = benchmark(_run_sweep, circuits, locations, protocols, "serial")
    assert len(models) == 2 and len(models[0]) == 40


def test_benchmark_backend_vectorized_sweep(benchmark):
    """Vectorized backend on the same reduced sweep (fresh cache per round)."""
    circuits, locations, protocols = _sweep_workload(40, (0.5, 0.9))
    models = benchmark(
        lambda: _run_sweep(
            circuits, locations, protocols, VectorizedBackend(cache=DistributionCache())
        )
    )
    assert len(models) == 2 and len(models[0]) == 40


def test_backend_speedup_figure6_sweep(bench_artifact):
    """Vectorized ≥ 3× faster than serial on a Figure-6-sized sweep, same results.

    With ``REPRO_BENCH_FULL=1`` the sweep is the paper's full configuration
    (1000 input states × 6 entanglement levels) and the 3× acceptance floor is
    enforced.  The reduced default keeps CI smoke runs short; there the
    result-identity checks stay hard but the speedup is recorded rather than
    asserted, so a single noisy wall-clock sample on a shared runner cannot
    fail the build (measured speedups are ~4–6× at both scales).
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    num_states = 1000 if full else 150
    overlaps = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0) if full else (0.5, 0.8, 1.0)
    circuits, locations, protocols = _sweep_workload(num_states, overlaps)

    start = time.perf_counter()
    serial_models = _run_sweep(circuits, locations, protocols, SerialBackend())
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vectorized_models = _run_sweep(
        circuits, locations, protocols, VectorizedBackend(cache=DistributionCache())
    )
    vectorized_seconds = time.perf_counter() - start

    serial_probabilities = _probability_matrix(serial_models)
    vectorized_probabilities = _probability_matrix(vectorized_models)
    assert np.array_equal(serial_probabilities, vectorized_probabilities), (
        "vectorized backend must reproduce the serial distributions exactly"
    )

    # Seeded estimates built on those models must agree exactly as well.
    for serial_model, vectorized_model in zip(serial_models[0][:5], vectorized_models[0][:5]):
        a = serial_model.estimate(1000, seed=99)
        b = vectorized_model.estimate(1000, seed=99)
        assert a.value == b.value and a.shots_per_term == b.shots_per_term

    speedup = serial_seconds / vectorized_seconds
    record = {
        "benchmark": "backend_speedup_figure6_sweep",
        "full_scale": full,
        "num_states": num_states,
        "num_overlaps": len(overlaps),
        "serial_seconds": round(serial_seconds, 4),
        "vectorized_seconds": round(vectorized_seconds, 4),
        "speedup": round(speedup, 2),
        "identical_results": True,
    }
    out_path = bench_artifact("BENCH_backend_speedup.json", record)
    print(f"\nbackend speedup: {speedup:.1f}x (serial {serial_seconds:.2f}s, "
          f"vectorized {vectorized_seconds:.2f}s) -> {out_path}")

    if full:
        assert speedup >= 3.0, (
            f"vectorized backend speedup {speedup:.2f}x below the 3x acceptance floor "
            f"(serial {serial_seconds:.2f}s, vectorized {vectorized_seconds:.2f}s)"
        )


def test_benchmark_process_pool_agrees():
    """Process-pool backend: chunked execution returns the serial results exactly."""
    circuits, locations, protocols = _sweep_workload(24, (0.7,))
    pool_models = _run_sweep(
        circuits, locations, protocols, ProcessPoolBackend(max_workers=2, chunk_size=9)
    )
    serial_models = _run_sweep(circuits, locations, protocols, "serial")
    assert np.array_equal(_probability_matrix(pool_models), _probability_matrix(serial_models))
