"""Benchmark regenerating the entangled-pair consumption relation (end of Section III).

Run with ``pytest benchmarks/bench_resource_count.py --benchmark-only -s``.

The paper states that the number of entangled pairs consumed by the
Theorem-2 QPD is proportional to ``2(k²+1)/(k+1)² = ⟨Φ|Φ_k|Φ⟩⁻¹`` and
decreases as the entanglement grows.  The benchmark tabulates the relation
and cross-checks it against the protocol's own resource accounting and the
inverse-overlap identity.
"""

import numpy as np
import pytest

from repro.cutting import NMEWireCut
from repro.experiments import resource_consumption


def test_benchmark_resource_consumption(benchmark):
    """Tabulate pair consumption versus k and verify the paper's identities."""
    table = benchmark(resource_consumption)
    print("\n" + table.to_text())

    two_a = np.array(table.columns["pairs_proportionality_2a"])
    inverse_overlap = np.array(table.columns["inverse_overlap"])
    k_values = np.array(table.columns["k"])

    # 2(k²+1)/(k+1)² equals ⟨Φ|Φ_k|Φ⟩⁻¹.
    assert np.allclose(two_a, inverse_overlap, atol=1e-9)
    # It decreases monotonically towards 1 as k → 1.
    assert np.all(np.diff(two_a) < 1e-12)
    assert two_a[-1] == pytest.approx(1.0)

    # The protocol's own accounting matches the analytic expectation.
    for k, expected in zip(k_values, table.columns["expected_pairs_per_shot"]):
        protocol = NMEWireCut(float(k))
        assert protocol.expected_pairs_per_shot() == pytest.approx(expected, abs=1e-12)
