"""Benchmark: adaptive shot allocation vs the static budget on the Figure-6 NME sweep.

Run with ``pytest benchmarks/bench_adaptive.py -q -s``.

The workload is the paper's Figure-6 sweep (Haar-random single-qubit states
through the Theorem-2 NME cut, every entanglement level): both arms are
sized to the same statistical criterion — expected absolute error ≤ the
target, equivalently pooled standard error ≤ ``target·√(π/2)`` — and the
benchmark measures how many total shots each needs.  The static arm commits
one grid budget per level up front (the repo's pre-adaptive shots-to-target
methodology, selected by the exactly predicted standard error); the
adaptive arm streams rounds per instance and stops at the achieved
threshold.

Asserted invariants (deterministic under the pinned seeds):

* every adaptive run converges, and its achieved pooled standard error is
  at or below the shared threshold (the "reaches the target error"
  guarantee);
* the measured mean absolute errors of both arms stay within 1.25× the
  nominal target (the statistical sanity check of the equivalence);
* adaptive spends **≥ 20% fewer total shots** than static across the sweep.

``BENCH_adaptive.json`` is written to the working directory (overridable
via ``REPRO_BENCH_OUT``) so CI can archive the savings trajectory.  Set
``REPRO_BENCH_FULL=1`` for the paper-scale workload (more states); the
default smoke configuration keeps CI under a few seconds.
"""

import os

import numpy as np

from repro.experiments import AdaptiveSweepConfig, adaptive_vs_static_sweep

#: Mean-absolute-error target shared by both arms.
TARGET_ERROR = 0.05
#: Shot-savings floor the adaptive engine must beat.
SAVINGS_FLOOR = 0.20
#: Statistical tolerance on the measured (as opposed to predicted) errors.
MEASURED_ERROR_TOLERANCE = 1.25


def test_adaptive_beats_static_on_figure6_nme_sweep(bench_artifact):
    """Adaptive reaches the shared target error with ≥20% fewer total shots."""
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    config = AdaptiveSweepConfig(
        target_error=TARGET_ERROR,
        num_states=48 if full else 16,
        seed=77,
    )
    table = adaptive_vs_static_sweep(config)
    metadata = table.metadata

    # Every level found a static budget and every adaptive run converged to
    # the shared standard-error threshold.
    assert all(budget > 0 for budget in table.columns["static_shots_per_state"]), table.columns
    assert all(fraction == 1.0 for fraction in table.columns["converged_fraction"]), table.columns
    stderr_target = metadata["stderr_target"]
    assert all(
        achieved <= stderr_target + 1e-12 for achieved in table.columns["adaptive_stderr_max"]
    ), table.columns

    # Measured errors of both arms stay near the nominal target.
    pooled_static = float(np.mean(table.columns["static_mean_error"]))
    pooled_adaptive = float(np.mean(table.columns["adaptive_mean_error"]))
    assert pooled_static <= TARGET_ERROR * MEASURED_ERROR_TOLERANCE, pooled_static
    assert pooled_adaptive <= TARGET_ERROR * MEASURED_ERROR_TOLERANCE, pooled_adaptive

    savings = metadata["total_savings_fraction"]
    assert savings >= SAVINGS_FLOOR, (
        f"adaptive saved only {savings:.1%} of the static budget "
        f"(static {metadata['total_static_shots']}, adaptive {metadata['total_adaptive_shots']}); "
        f"the floor is {SAVINGS_FLOOR:.0%}"
    )

    record = {
        "benchmark": "adaptive_vs_static_figure6_nme",
        "full_scale": full,
        "target_error": TARGET_ERROR,
        "stderr_target": stderr_target,
        "num_states": config.num_states,
        "overlaps": list(config.overlaps),
        "planner": config.planner,
        "total_static_shots": metadata["total_static_shots"],
        "total_adaptive_shots": metadata["total_adaptive_shots"],
        "savings_fraction": round(float(savings), 4),
        "pooled_static_error": round(pooled_static, 5),
        "pooled_adaptive_error": round(pooled_adaptive, 5),
        "per_level": [
            {
                "overlap_f": table.columns["overlap_f"][index],
                "kappa": table.columns["kappa"][index],
                "static_shots_per_state": table.columns["static_shots_per_state"][index],
                "adaptive_shots_per_state": round(
                    table.columns["adaptive_shots_per_state"][index], 1
                ),
                "savings_fraction": round(table.columns["savings_fraction"][index], 4),
                "adaptive_rounds_mean": round(table.columns["adaptive_rounds_mean"][index], 2),
            }
            for index in range(len(table.columns["overlap_f"]))
        ],
    }
    out_path = bench_artifact("BENCH_adaptive.json", record)
    print(
        f"\nadaptive vs static on the Figure-6 NME sweep: {savings:.1%} fewer shots "
        f"({metadata['total_adaptive_shots']} vs {metadata['total_static_shots']}) "
        f"at target error {TARGET_ERROR} -> {out_path}"
    )
