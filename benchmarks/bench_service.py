"""Throughput benchmark of the job service: concurrent vs serial scheduling.

Run with ``pytest benchmarks/bench_service.py -q -s``.

The workload is a batch of *distinct* cut-estimation jobs (random layered
circuits with different structures, so the shared distribution cache cannot
blur the comparison) submitted (a) serially through a one-worker scheduler
and (b) concurrently through a multi-worker **process-mode** scheduler — the
deployment shape ``repro serve --mode process`` uses for CPU-bound traffic.
The benchmark asserts the scheduler's central correctness contract — the
concurrent estimates are **bitwise identical** to the serial ones — and
measures the wall-clock speedup, plus the latency of serving a repeated job
from a warm :class:`~repro.service.RunStore` (the cache-hit path).

``BENCH_service.json`` is written to the working directory (overridable via
``REPRO_BENCH_OUT``) so CI can archive the throughput trajectory.  Set
``REPRO_BENCH_FULL=1`` to enforce the speedup floor; the default smoke run
records without asserting so one noisy shared-runner sample cannot fail the
build.
"""

import os
import time

from repro.experiments import random_layered_circuit
from repro.service import JobScheduler, JobSpec, RunStore, run_job

#: Number of distinct jobs in the batch.
NUM_JOBS = 8
#: Worker-pool size for the concurrent run (bounded by the machine).
WORKERS = min(4, os.cpu_count() or 1)
SHOTS = 4000
QUBITS = 4
DEPTH = 3


def _job_specs():
    """Return the benchmark batch: distinct random-layered 2-cut jobs."""
    specs = []
    for index in range(NUM_JOBS):
        circuit = random_layered_circuit(QUBITS, DEPTH, seed=100 + index, two_qubit_gate="cx")
        specs.append(
            JobSpec(
                circuit=circuit,
                observable="Z" * QUBITS,
                shots=SHOTS,
                seed=index,
                locations=((0, 1), (0, 4)),
                backend="vectorized",
            )
        )
    return specs


def _run_serial(specs):
    """Execute the batch on a single-worker scheduler, in submission order."""
    with JobScheduler(workers=1, mode="thread") as scheduler:
        job_ids = [scheduler.submit(spec) for spec in specs]
        return [scheduler.result(job_id, timeout=600) for job_id in job_ids]


def _run_concurrent(specs):
    """Execute the batch on a process-pool scheduler (fresh caches per worker)."""
    with JobScheduler(workers=WORKERS, mode="process") as scheduler:
        job_ids = [scheduler.submit(spec) for spec in specs]
        return [scheduler.result(job_id, timeout=600) for job_id in job_ids]


def test_service_concurrent_vs_serial_throughput(tmp_path, bench_artifact):
    """Concurrent submissions are bitwise-identical to serial, and faster.

    With ``REPRO_BENCH_FULL=1`` a 1.3× floor is enforced; the smoke run
    records the measured speedup without asserting it.
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    specs = _job_specs()

    # Concurrent first: process workers fork from this process, so running
    # serial first would hand them a pre-warmed distribution cache and
    # inflate the measured speedup.  (The serial run is unaffected by the
    # concurrent one — worker-process caches never propagate back.)
    start = time.perf_counter()
    concurrent = _run_concurrent(specs)
    concurrent_seconds = time.perf_counter() - start

    start = time.perf_counter()
    serial = _run_serial(specs)
    serial_seconds = time.perf_counter() - start

    for serial_outcome, concurrent_outcome in zip(serial, concurrent):
        assert concurrent_outcome.value == serial_outcome.value, (
            f"scheduler broke determinism on job {serial_outcome.fingerprint}"
        )
        assert concurrent_outcome.standard_error == serial_outcome.standard_error
        assert concurrent_outcome.total_shots == serial_outcome.total_shots

    # Cache-hit latency: the same job served from a warm store.
    store = RunStore(tmp_path / "store")
    run_job(specs[0], store=store)
    start = time.perf_counter()
    cached = run_job(specs[0], store=store)
    cache_hit_seconds = time.perf_counter() - start
    assert cached.cached
    assert cached.value == serial[0].value

    speedup = serial_seconds / concurrent_seconds
    record = {
        "benchmark": "service_concurrent_vs_serial",
        "full_scale": full,
        "num_jobs": NUM_JOBS,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "shots_per_job": SHOTS,
        "qubits": QUBITS,
        "depth": DEPTH,
        "serial_seconds": round(serial_seconds, 4),
        "concurrent_seconds": round(concurrent_seconds, 4),
        "speedup": round(speedup, 2),
        "serial_jobs_per_second": round(NUM_JOBS / serial_seconds, 3),
        "concurrent_jobs_per_second": round(NUM_JOBS / concurrent_seconds, 3),
        "cache_hit_seconds": round(cache_hit_seconds, 5),
        "bitwise_identical": True,
    }
    out_path = bench_artifact("BENCH_service.json", record)
    print(
        f"\nservice throughput: {speedup:.1f}x with {WORKERS} workers "
        f"(serial {serial_seconds:.2f}s, concurrent {concurrent_seconds:.2f}s, "
        f"cache hit {cache_hit_seconds * 1000:.1f}ms) -> {out_path}"
    )

    if full and WORKERS >= 2:
        # Wall-clock speedup needs real cores; a single-CPU machine can only
        # demonstrate the determinism contract, which was asserted above.
        assert speedup >= 1.3, (
            f"service concurrent speedup {speedup:.2f}x below the 1.3x floor "
            f"(serial {serial_seconds:.2f}s, concurrent {concurrent_seconds:.2f}s)"
        )
