"""Benchmark: distributed round execution — scaling and work stealing.

Run with ``pytest benchmarks/bench_distributed.py -q -s``.

Two arms:

* **Scaling** — the 3-cut chain workload runs through the full adaptive
  pipeline with ``execution="distributed"`` at 1/2/4/8 worker processes.
  Every worker count must produce an estimate **bitwise identical** to the
  in-process run (the headline invariant of :mod:`repro.distributed`);
  wall-clock per worker count is recorded for trend tracking.
* **Work stealing** — a skewed fleet: four equal-weight devices, one of
  them slow (simulated per-unit latency).  Static apportionment
  (``steal="none"``) leaves the fast workers idle while the slow device
  drains its fixed backlog; ``steal="max-backlog"`` lets them drain it.
  The stealing run must beat static by at least :data:`STEAL_FLOOR` ×
  wall-clock, with bitwise-identical unit results.

``BENCH_distributed.json`` is written to the working directory
(overridable via ``REPRO_BENCH_OUT``).  Set ``REPRO_BENCH_FULL=1`` for the
larger sweep; the default smoke configuration keeps CI under a minute.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.circuits.backends import DistributionCache, VectorizedBackend
from repro.circuits.circuit import QuantumCircuit
from repro.cutting import HaradaWireCut, plan_from_positions
from repro.distributed import RoundQueue, WorkStealingScheduler, WorkUnit, WorkerPool
from repro.pipeline import CutPipeline

#: Wall-clock floor of the stealing arm over static apportionment.
STEAL_FLOOR = 1.3
SHOTS = 6000
TARGET_ERROR = 0.05
SEED = 2024
#: Worker counts of the scaling arm.
WORKER_COUNTS = (1, 2, 4, 8)
#: Simulated per-unit seconds of the skewed fleet (device → latency).
SLOW_LATENCY = 0.06
FAST_LATENCY = 0.005


def chain_circuit(num_qubits: int) -> QuantumCircuit:
    """The chain workload: entangling chain with per-wire rotations."""
    circuit = QuantumCircuit(num_qubits, name=f"chain{num_qubits}")
    circuit.gate("h", 0)
    for qubit in range(num_qubits - 1):
        circuit.gate("rz", qubit, (0.3 + 0.1 * qubit,))
        circuit.gate("cx", (qubit, qubit + 1))
        circuit.gate("rx", qubit + 1, (0.5 + 0.05 * qubit,))
    return circuit


def _configuration(full: bool):
    """Return (circuit, slice positions, observable) for the selected scale."""
    circuit = chain_circuit(5)
    positions = (4, 7, 10) if full else (4, 7)
    return circuit, positions, "ZZZZZ"


def _adaptive_execute(pipeline, decomposition, observable, **overrides):
    return pipeline.execute(
        decomposition,
        observable,
        SHOTS,
        seed=SEED,
        mode="adaptive",
        target_error=TARGET_ERROR,
        rounds=4,
        **overrides,
    )


def test_distributed_scaling_is_bitwise_identical():
    """1/2/4/8-worker distributed runs reproduce the in-process estimate bitwise."""
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    circuit, positions, observable = _configuration(full)
    plan = plan_from_positions(circuit, positions)
    pipeline = CutPipeline(backend="vectorized", protocol=HaradaWireCut())
    decomposition = pipeline.decompose(pipeline.plan(circuit, plan=plan))

    def fresh_pipeline():
        # Every configuration starts with a cold distribution cache so no
        # arm inherits another's warmed backend state (worker processes
        # receive a pickled copy of whatever cache the coordinator holds).
        return CutPipeline(
            backend=VectorizedBackend(cache=DistributionCache()),
            protocol=HaradaWireCut(),
        )

    start = time.perf_counter()
    baseline = fresh_pipeline()
    reference = baseline.reconstruct(
        _adaptive_execute(baseline, decomposition, observable), compute_exact=False
    )
    inprocess_seconds = time.perf_counter() - start

    scaling = {}
    for workers in WORKER_COUNTS:
        arm = fresh_pipeline()
        start = time.perf_counter()
        execution = _adaptive_execute(
            arm,
            decomposition,
            observable,
            execution="distributed",
            workers=workers,
        )
        estimate = arm.reconstruct(execution, compute_exact=False)
        seconds = time.perf_counter() - start
        assert estimate.value == reference.value, (
            f"{workers}-worker distributed estimate diverged from in-process"
        )
        assert estimate.standard_error == reference.standard_error, workers
        scaling[workers] = round(seconds, 4)

    record = {
        "benchmark": "distributed_scaling",
        "full_scale": full,
        "circuit": circuit.name,
        "num_cuts": plan.num_cuts,
        "num_terms": len(decomposition.term_circuits),
        "observable": observable,
        "shots": SHOTS,
        "seed": SEED,
        "estimate": reference.value,
        "inprocess_seconds": round(inprocess_seconds, 4),
        "distributed_seconds": {str(w): s for w, s in scaling.items()},
        "bitwise_identical_worker_counts": list(WORKER_COUNTS),
    }
    _merge_record("scaling", record)
    print(
        f"\ndistributed scaling: in-process {inprocess_seconds:.3f}s, "
        + ", ".join(f"{w}w {s:.3f}s" for w, s in scaling.items())
    )


def _latency_units(num_units: int):
    """Synthetic unit batch: identical tiny circuits, per-unit seed stream."""
    circuit = QuantumCircuit(1, 1, name="latency_probe")
    circuit.gate("h", 0)
    circuit.measure(0, 0)
    circuits = [circuit] * num_units
    selected = [[0]] * num_units
    seed = np.random.SeedSequence(SEED)
    units = [
        WorkUnit(round_index=0, term_index=term, shots=64, seed=seed)
        for term in range(num_units)
    ]
    return circuits, selected, units


def _run_skewed_fleet(steal: str, num_units: int):
    """Drain one skewed-fleet round; return (wall seconds, result summaries, steals)."""
    devices = ("slow-qpu", "fast-0", "fast-1", "fast-2")
    latencies = {
        "slow-qpu": SLOW_LATENCY,
        "fast-0": FAST_LATENCY,
        "fast-1": FAST_LATENCY,
        "fast-2": FAST_LATENCY,
    }
    circuits, selected, units = _latency_units(num_units)
    scheduler = WorkStealingScheduler(devices, steal=steal)
    queue = scheduler.build_queue(units)
    pool = WorkerPool(
        circuits,
        selected,
        backend="serial",
        devices=devices,
        workers=len(devices),
        latencies=latencies,
        poll_interval=0.01,
    )
    with pool:
        start = time.perf_counter()
        results = pool.run_round(queue)
        seconds = time.perf_counter() - start
    summaries = [(r.key, r.shots, r.mean) for r in results]
    return seconds, summaries, queue.steals


def test_work_stealing_beats_static_apportionment():
    """On a skewed fleet, stealing wins ≥1.3× wall-clock over static queues."""
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    num_units = 48 if full else 24

    static_seconds, static_results, static_steals = _run_skewed_fleet(
        "none", num_units
    )
    stealing_seconds, stealing_results, steals = _run_skewed_fleet(
        "max-backlog", num_units
    )

    assert static_steals == 0
    assert steals > 0, "the skewed fleet never stole — the benchmark is mis-wired"
    assert stealing_results == static_results, (
        "work stealing changed the unit results; scheduling leaked into statistics"
    )
    ratio = static_seconds / stealing_seconds
    assert ratio >= STEAL_FLOOR, (
        f"stealing only {ratio:.2f}x faster than static apportionment "
        f"({stealing_seconds:.3f}s vs {static_seconds:.3f}s); the floor is "
        f"{STEAL_FLOOR}x"
    )

    record = {
        "benchmark": "work_stealing_vs_static",
        "full_scale": full,
        "num_units": num_units,
        "devices": 4,
        "slow_latency_seconds": SLOW_LATENCY,
        "fast_latency_seconds": FAST_LATENCY,
        "static_seconds": round(static_seconds, 4),
        "stealing_seconds": round(stealing_seconds, 4),
        "speedup": round(ratio, 2),
        "steals": steals,
        "floor": STEAL_FLOOR,
        "bitwise_identical": True,
    }
    _merge_record("work_stealing", record)
    print(
        f"\nwork stealing: static {static_seconds:.3f}s, stealing "
        f"{stealing_seconds:.3f}s ({ratio:.2f}x, {steals} steals)"
    )


def _merge_record(key: str, record: dict) -> None:
    """Fold one arm's record into ``BENCH_distributed.json`` (arms run separately)."""
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "BENCH_distributed.json"
    merged = {}
    if out_path.exists():
        try:
            merged = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged[key] = record
    out_path.write_text(json.dumps(merged, indent=2) + "\n")
