"""Benchmark the exactness of Theorem 2's QPD (and the baselines) at the circuit level.

Run with ``pytest benchmarks/bench_qpd_exactness.py --benchmark-only -s``.

For every protocol the benchmark builds the per-term circuits for a random
input state, runs the exact branching density-matrix simulation, and checks
the recombined value equals the uncut expectation value to numerical
precision — the operational statement of "the decomposition reproduces the
identity channel".
"""

import numpy as np

from repro.circuits import QuantumCircuit
from repro.cutting import (
    CutLocation,
    HaradaWireCut,
    NMEWireCut,
    PengWireCut,
    TeleportationWireCut,
    build_sampling_model,
)
from repro.quantum import random_statevector

_PROTOCOLS = [
    ("peng", PengWireCut()),
    ("harada", HaradaWireCut()),
    ("nme_k0.3", NMEWireCut(0.3)),
    ("nme_k0.7", NMEWireCut(0.7)),
    ("teleportation", TeleportationWireCut()),
]


def _exactness_errors(num_states: int = 5) -> dict[str, float]:
    errors = {}
    for name, protocol in _PROTOCOLS:
        worst = 0.0
        for index in range(num_states):
            state = random_statevector(1, seed=100 + index)
            circuit = QuantumCircuit(1, 0)
            circuit.initialize(state.data, 0)
            model = build_sampling_model(circuit, CutLocation(0, len(circuit)), protocol, "Z")
            worst = max(worst, abs(model.exact_cut_value() - model.exact_value))
        errors[name] = worst
    return errors


def test_benchmark_qpd_exactness(benchmark):
    """Every protocol reconstructs the uncut expectation value exactly (infinite-shot limit)."""
    errors = benchmark(_exactness_errors)
    print("\nworst-case reconstruction error over random states:")
    for name, error in errors.items():
        print(f"  {name:<16} {error:.2e}")
    assert all(error < 1e-9 for error in errors.values())


def test_benchmark_channel_level_identity(benchmark):
    """Channel-level verification: the summed superoperators equal the identity map."""

    def verify_all() -> float:
        worst = 0.0
        for _, protocol in _PROTOCOLS:
            superop = protocol.decomposition().superoperator()
            worst = max(worst, float(np.max(np.abs(superop - np.eye(4)))))
        return worst

    worst = benchmark(verify_all)
    print(f"\nworst-case |Σ c_i S_i − I| entry: {worst:.2e}")
    assert worst < 1e-9
