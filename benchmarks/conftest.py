"""Benchmark bootstrap: ``src/``/``tools/`` importability and the shared artifact writer.

Every benchmark writes its ``BENCH_*.json`` through the :func:`bench_artifact`
fixture so the output directory handling lives in one place and any benchmark
that ran under a :class:`repro.telemetry.tracing.Tracer` gets its per-stage
wall times stamped into the artifact (``"stage_seconds"``) alongside the
headline numbers.
"""

import json
import os
import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(_ROOT) not in sys.path:
    sys.path.append(str(_ROOT))


def stage_wall_seconds(tracer):
    """Aggregate one tracer's finished spans into ``{span name: wall seconds}``."""
    totals = {}
    for span_record in tracer.spans:
        if span_record.end is None:
            continue
        totals[span_record.name] = totals.get(span_record.name, 0.0) + (
            span_record.end - span_record.start
        )
    return {name: round(seconds, 6) for name, seconds in sorted(totals.items())}


@pytest.fixture
def bench_artifact():
    """Writer for ``BENCH_*.json`` artifacts: ``bench_artifact(filename, record, tracer=None)``.

    Writes to ``REPRO_BENCH_OUT`` (default: the working directory) and returns
    the path.  When ``tracer`` is given, the per-stage wall times of its spans
    are stamped into ``record["stage_seconds"]`` first.
    """

    def write(filename, record, tracer=None):
        if tracer is not None:
            stages = stage_wall_seconds(tracer)
            if stages:
                record = {**record, "stage_seconds": stages}
        out_dir = Path(os.environ.get("REPRO_BENCH_OUT", "."))
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / filename
        path.write_text(json.dumps(record, indent=2) + "\n")
        return path

    return write
