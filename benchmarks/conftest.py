"""Benchmark bootstrap: make ``src/`` and ``tools/`` importable without installation."""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(_ROOT) not in sys.path:
    sys.path.append(str(_ROOT))
