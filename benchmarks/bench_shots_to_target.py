"""Benchmark: shots needed to reach a fixed accuracy (the κ²/ε² law).

Run with ``pytest benchmarks/bench_shots_to_target.py --benchmark-only -s``.

The paper states that a fixed accuracy needs O(κ²/ε²) shots; this benchmark
measures the minimal shot budget per entanglement level that reaches a 0.05
mean error and checks that the measured budgets grow with κ (and hence that
the entanglement-free cut needs several times more shots than teleportation).
"""


from repro.experiments import ShotsToTargetConfig, shots_to_target_error


def test_benchmark_shots_to_target(benchmark):
    """Measured shot requirements increase with κ, as the κ² law predicts."""
    config = ShotsToTargetConfig(
        target_error=0.05,
        overlaps=(0.5, 0.8, 1.0),
        num_states=25,
        candidate_budgets=(100, 200, 400, 800, 1600, 3200, 6400),
        seed=77,
    )
    table = benchmark(shots_to_target_error, config)
    print("\n" + table.to_text())

    shots = dict(zip(table.columns["overlap_f"], table.columns["shots_needed"]))
    # Every level reached the target within the candidate range.
    assert all(value > 0 for value in shots.values())
    # More entanglement → fewer (or equal, given the coarse budget grid) shots.
    assert shots[0.5] >= shots[0.8] >= shots[1.0]
    # The plain cut needs a strictly larger budget than teleportation.
    assert shots[0.5] > shots[1.0]
