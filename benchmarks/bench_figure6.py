"""Benchmark regenerating Figure 6 (error vs shots per entanglement level).

Run with ``pytest benchmarks/bench_figure6.py --benchmark-only -s``.

The benchmark times a reduced-size sweep (so the suite stays fast) and then
prints the resulting table plus the qualitative checks against the paper:
errors decrease with shots, decrease with entanglement, and the f=1.0
(teleportation) series is the floor while f=0.5 (plain wire cutting) is the
ceiling.  Use ``examples/figure6_experiment.py --paper`` for the full-scale
run.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments import Figure6Config, run_figure6

_CONFIG = Figure6Config(num_states=40, shot_grid=(500, 1000, 2000, 4000), seed=2024)


@pytest.fixture(scope="module")
def figure6_result():
    return run_figure6(_CONFIG)


def test_benchmark_figure6(benchmark, figure6_result):
    """Time the Figure-6 sweep and validate the figure's qualitative shape."""
    small = Figure6Config(num_states=10, shot_grid=(500, 2000), overlaps=(0.5, 0.8, 1.0), seed=3)
    benchmark(run_figure6, small)

    result = figure6_result
    print("\n" + result.to_table().to_text())

    errors = result.mean_errors
    # Errors shrink with the shot budget for every entanglement level.
    assert np.all(errors[:, 0] >= errors[:, -1])
    # More entanglement helps: the f=0.5 series is the worst, f=1.0 the best
    # (averaged over the shot grid).
    averaged = errors.mean(axis=1)
    assert averaged[0] == max(averaged)
    assert averaged[-1] == min(averaged)
    # The κ values match Theorem 1 exactly.
    expected_kappa = [2.0 / f - 1.0 for f in result.overlaps]
    assert np.allclose(result.kappas, expected_kappa, atol=1e-9)


def test_benchmark_figure6_serial_backend(benchmark):
    """The same small sweep forced through the serial backend (trend baseline).

    Paired with :func:`test_benchmark_figure6`, whose config uses the default
    vectorized backend, this keeps the end-to-end backend speedup visible in
    the benchmark history; both configurations must agree exactly.
    """
    small = Figure6Config(num_states=10, shot_grid=(500, 2000), overlaps=(0.5, 0.8, 1.0), seed=3)
    serial = benchmark(run_figure6, dataclasses.replace(small, backend="serial"))
    vectorized = run_figure6(small)
    assert np.array_equal(serial.mean_errors, vectorized.mean_errors)
