"""Ablation benchmarks for the design choices recorded in DESIGN.md.

Run with ``pytest benchmarks/bench_ablations.py --benchmark-only -s``.

Covers: shot-allocation strategy, gate-cut versus wire-cut, and the
noisy-resource extension (bias and Theorem-1 overhead under depolarising
noise on the NME pair).
"""

import numpy as np
import pytest

from repro.experiments import (
    allocation_strategy_ablation,
    gate_vs_wire_cut,
    noisy_resource_ablation,
)


def test_benchmark_allocation_strategies(benchmark):
    """Proportional allocation (the paper's choice) is not beaten by uniform splitting."""
    table = benchmark(allocation_strategy_ablation, num_states=20, shots=2000, overlap=0.8, seed=11)
    print("\n" + table.to_text())
    errors = dict(zip(table.columns["strategy"], table.columns["mean_error"]))
    # Allow statistical slack: proportional should be at least as good as
    # uniform up to a 25% tolerance on this workload size.
    assert errors["proportional"] <= 1.25 * errors["uniform"]


def test_benchmark_gate_vs_wire_cut(benchmark):
    """Gate cutting a CZ (κ=3) and wire cutting next to it both reproduce the observable."""
    table = benchmark(gate_vs_wire_cut, shots=4000, seed=17)
    print("\n" + table.to_text())
    kappas = dict(zip(table.columns["method"], table.columns["kappa"]))
    errors = dict(zip(table.columns["method"], table.columns["error"]))
    assert kappas["gate-cut-cz"] == pytest.approx(3.0)
    assert kappas["wire-harada"] == pytest.approx(3.0)
    assert kappas["wire-nme(f=0.9)"] == pytest.approx(2.0 / 0.9 - 1.0)
    # All finite-shot errors stay small (unbiased estimators, 4000 shots).
    assert all(error < 0.25 for error in errors.values())


def test_benchmark_noisy_resource(benchmark):
    """Noise on the NME pair introduces bias and raises the Theorem-1 overhead."""
    table = benchmark(noisy_resource_ablation, k=0.5, noise_levels=(0.0, 0.05, 0.1, 0.2))
    print("\n" + table.to_text())
    bias = np.array(table.columns["bias_norm"])
    overhead = np.array(table.columns["theorem1_overhead"])
    # No noise → no bias and the pure-state overhead.
    assert bias[0] == pytest.approx(0.0, abs=1e-9)
    assert overhead[0] == pytest.approx(table.columns["pure_overhead"][0], abs=1e-9)
    # Bias and optimal overhead grow monotonically with the noise level.
    assert np.all(np.diff(bias) > -1e-12)
    assert np.all(np.diff(overhead) > -1e-12)
