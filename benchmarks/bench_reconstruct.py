"""Benchmark: instance-dedup execution + chain contraction vs the per-term path.

Run with ``pytest benchmarks/bench_reconstruct.py -q -s``.

The workload is a wide multi-cut sweep: a chain circuit is sliced into a
string of fragments (one wire crossing per slice, the shape the planner
produces for chain-structured circuits) and several observables are
estimated through the full QPD product term set.  The **per-term arm**
builds and simulates one monolithic circuit per product term and sums the
κⁿ reconstruction; the **dedup arm** simulates each unique (fragment,
basis-config) subcircuit instance exactly once, draws every term's outcomes
from its chained exact distribution and folds the reconstruction into one
tensor-network-style chain contraction.

Asserted invariants (deterministic under the pinned seeds):

* the dedup arm is **≥ 5× faster** than the per-term arm over the sweep
  (the order-of-magnitude target of the instance-table layer: the unique
  instances are exponentially narrower than the monolithic term circuits
  and each is simulated once instead of once per term);
* the dedup arm's term means and contracted exact values are **bitwise
  identical across all three backends** (serial / vectorized /
  process-pool) for the same seed;
* every term's memoized chain ``p₊`` is **bitwise identical** to the
  un-memoized per-term reference that rebuilds and re-simulates the
  fragment chain from scratch;
* the chain contraction agrees with the κⁿ summation (both the table's own
  and the monolithic pipeline's) and with the uncut expectation to strict
  float tolerance.

``BENCH_reconstruct.json`` is written to the working directory
(overridable via ``REPRO_BENCH_OUT``).  Set ``REPRO_BENCH_FULL=1`` for the
larger sweep; the default smoke configuration keeps CI under a minute.
"""

import os
import time

from repro.circuits.backends import DistributionCache, VectorizedBackend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import exact_expectation
from repro.cutting import HaradaWireCut, build_instance_table, plan_from_positions
from repro.pipeline import CutPipeline
from repro.quantum.paulis import PauliString

#: Speedup floor of the dedup arm over the per-term arm.
SPEEDUP_FLOOR = 5.0
#: Agreement tolerance between the contraction and the κⁿ summation.
EXACT_TOLERANCE = 1e-9
#: Shot budget per observable (identical in both arms).
SHOTS = 4096
SEED = 2024


def chain_circuit(num_qubits: int) -> QuantumCircuit:
    """Build the chain workload: entangling chain with per-wire rotations.

    Between consecutive CX links each wire carries single-qubit rotations,
    so interior time slices cross exactly one wire — the plan shape whose
    fragments couple through a single cut per slice.
    """
    circuit = QuantumCircuit(num_qubits, name=f"chain{num_qubits}")
    circuit.gate("h", 0)
    for qubit in range(num_qubits - 1):
        circuit.gate("rz", qubit, (0.3 + 0.1 * qubit,))
        circuit.gate("cx", (qubit, qubit + 1))
        circuit.gate("rx", qubit + 1, (0.5 + 0.05 * qubit,))
    return circuit


def _configuration(full: bool) -> tuple[QuantumCircuit, tuple[int, ...], list[str]]:
    """Return (circuit, slice positions, observables) for the selected scale."""
    circuit = chain_circuit(5)
    if full:
        positions = (4, 7, 10)
        observables = ["ZZZZI", "ZZIZZ", "IZZZZ", "IIZZI"]
    else:
        positions = (4, 7)
        observables = ["ZZZZI", "ZZIZZ", "IZZZZ"]
    return circuit, positions, observables


def _fresh_backend() -> VectorizedBackend:
    """An isolated vectorized backend so neither arm benefits from shared caches."""
    return VectorizedBackend(cache=DistributionCache())


def test_dedup_reconstruction_speedup_and_identity(bench_artifact):
    """Dedup + contraction beats the per-term path ≥5× and stays bitwise stable."""
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    circuit, positions, observables = _configuration(full)
    plan = plan_from_positions(circuit, positions)
    protocols = [HaradaWireCut()] * plan.num_cuts

    # -- per-term arm: monolithic term circuits + κⁿ summation ----------------
    baseline_pipeline = CutPipeline(backend=_fresh_backend())
    plan_result = baseline_pipeline.plan(circuit, plan=plan)
    decomposition = baseline_pipeline.decompose(plan_result)
    start = time.perf_counter()
    baseline_values = {}
    for observable in observables:
        execution = baseline_pipeline.execute(decomposition, observable, SHOTS, seed=SEED)
        estimate = baseline_pipeline.reconstruct(execution, compute_exact=False)
        exact = baseline_pipeline.exact_reconstruction(decomposition, observable)
        baseline_values[observable] = (estimate.value, exact)
    baseline_seconds = time.perf_counter() - start

    # -- dedup arm: shared instance table + chain contraction -----------------
    dedup_pipeline = CutPipeline(backend=_fresh_backend(), dedup=True)
    start = time.perf_counter()
    dedup_values = {}
    stats = None
    for observable in observables:
        execution = dedup_pipeline.execute(decomposition, observable, SHOTS, seed=SEED)
        estimate = dedup_pipeline.reconstruct(execution, compute_exact=False)
        exact = dedup_pipeline.exact_reconstruction(
            decomposition, observable, method="contraction"
        )
        dedup_values[observable] = (estimate.value, exact)
        stats = execution.instance_stats
    dedup_seconds = time.perf_counter() - start

    assert stats is not None, "dedup execution did not engage"
    speedup = baseline_seconds / dedup_seconds
    assert speedup >= SPEEDUP_FLOOR, (
        f"dedup arm only {speedup:.1f}x faster than the per-term arm "
        f"({dedup_seconds:.3f}s vs {baseline_seconds:.3f}s); the floor is "
        f"{SPEEDUP_FLOOR:.0f}x"
    )

    # The contraction agrees with the monolithic κⁿ summation and the uncut value.
    for observable in observables:
        _, baseline_exact = baseline_values[observable]
        _, dedup_exact = dedup_values[observable]
        truth = float(exact_expectation(circuit, PauliString(observable).to_matrix()))
        assert abs(dedup_exact - baseline_exact) < EXACT_TOLERANCE, observable
        assert abs(dedup_exact - truth) < EXACT_TOLERANCE, observable

    # -- cross-backend bitwise identity of the dedup path ---------------------
    headline = observables[0]
    per_backend = {}
    for backend_name in ("serial", "vectorized", "process-pool"):
        table = build_instance_table(circuit, plan, protocols, headline)
        table.evaluate(backend_name)
        contracted = table.contract_exact_value()
        summed = table.summed_exact_value()
        assert abs(contracted - summed) < EXACT_TOLERANCE, backend_name
        execution = CutPipeline(backend=backend_name, dedup=True).execute(
            decomposition, headline, SHOTS, seed=SEED
        )
        per_backend[backend_name] = (
            contracted,
            summed,
            tuple(estimate.mean for estimate in execution.term_estimates),
        )
    reference = per_backend["serial"]
    for backend_name, values in per_backend.items():
        assert values == reference, (
            f"dedup results on {backend_name!r} are not bitwise identical to serial"
        )

    # -- memoized chains vs the un-memoized per-term reference ----------------
    table = build_instance_table(circuit, plan, protocols, headline)
    table.evaluate("serial")
    for assignment in table.term_assignments():
        memoized = table.term_probability_plus(assignment)
        materialized = table.materialized_term_probability_plus(assignment, "serial")
        assert memoized == materialized, (
            f"term {assignment}: memoized p+ {memoized!r} != materialized {materialized!r}"
        )

    record = {
        "benchmark": "dedup_reconstruction_vs_per_term",
        "full_scale": full,
        "circuit": circuit.name,
        "num_qubits": circuit.num_qubits,
        "num_cuts": plan.num_cuts,
        "num_fragments": plan.num_fragments,
        "num_terms": stats.num_terms,
        "num_instances": stats.num_instances,
        "num_references": stats.num_references,
        "dedup_ratio": round(stats.dedup_ratio, 3),
        "observables": observables,
        "shots": SHOTS,
        "seed": SEED,
        "per_term_seconds": round(baseline_seconds, 4),
        "dedup_seconds": round(dedup_seconds, 4),
        "speedup": round(speedup, 2),
        "contracted_exact": {
            observable: dedup_values[observable][1] for observable in observables
        },
        "bitwise_identical_backends": ["serial", "vectorized", "process-pool"],
    }
    out_path = bench_artifact("BENCH_reconstruct.json", record)
    print(
        f"\ndedup reconstruction: {speedup:.1f}x faster than the per-term path "
        f"({stats.num_instances} unique instances for {stats.num_terms} terms, "
        f"{stats.dedup_ratio:.1f}x fragment reuse) -> {out_path}"
    )
