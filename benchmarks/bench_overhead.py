"""Benchmark regenerating the overhead-versus-entanglement relation (Theorem 1 / Corollary 1).

Run with ``pytest benchmarks/bench_overhead.py --benchmark-only -s``.
"""

import numpy as np
import pytest

from repro.experiments import overhead_vs_entanglement, protocol_comparison


def test_benchmark_overhead_curve(benchmark):
    """Tabulate γ(f) and check the analytic values against the constructed QPDs."""
    table = benchmark(overhead_vs_entanglement)
    print("\n" + table.to_text())

    gamma_theorem = np.array(table.columns["gamma_theorem1"])
    gamma_corollary = np.array(table.columns["gamma_corollary1"])
    kappa_constructed = np.array(table.columns["kappa_constructed"])
    overlaps = np.array(table.columns["overlap_f"])

    # Theorem 1 and Corollary 1 agree, and the explicit Theorem-2 QPD attains them.
    assert np.allclose(gamma_theorem, gamma_corollary, atol=1e-9)
    assert np.allclose(gamma_theorem, kappa_constructed, atol=1e-9)
    # Endpoints: 3 without entanglement, 1 with maximal entanglement.
    assert np.isclose(gamma_theorem[overlaps.argmin()], 3.0)
    assert np.isclose(gamma_theorem[overlaps.argmax()], 1.0)
    # Monotonically decreasing in f.
    assert np.all(np.diff(gamma_theorem) < 0)


def test_benchmark_protocol_comparison(benchmark):
    """Tabulate κ for all implemented protocols; Peng > Harada > NME > teleportation."""
    table = benchmark(protocol_comparison)
    print("\n" + table.to_text())
    kappa = dict(zip(table.columns["protocol"], table.columns["kappa"]))
    assert kappa["peng"] == pytest.approx(4.0)
    assert kappa["harada"] == pytest.approx(3.0)
    assert kappa["teleportation"] == pytest.approx(1.0)
    assert kappa["peng"] > kappa["harada"] > kappa["nme(f=0.8)"] > kappa["teleportation"]
