"""Telemetry overhead guard: tracing the 2-cut GHZ pipeline costs ≤ 5%.

Run with ``pytest benchmarks/bench_telemetry.py -q -s``.

The workload is the headline 2-cut GHZ pipeline (plan → decompose →
execute → reconstruct on the vectorized backend, cold distribution cache
every run so each arm does identical work).  Shared runners have noisy
multi-second phases that dwarf the true instrumentation cost (a handful of
span allocations per run), so the measurement is **paired**: every round
times one untraced and one traced run back to back — alternating which
goes first to cancel drift — and the asserted overhead is the *median* of
the per-round traced/untraced ratios.  A single noisy round cannot move
the median; a whole attempt landing in a noisy phase is re-measured (at
most three attempts) because a genuine regression fails every attempt.
Two contracts are enforced on every run, including the CI bench-smoke
pass:

* traced and untraced results are **bitwise identical** (values, errors,
  per-term shot vectors), and
* the paired-median tracing overhead stays at or under
  :data:`OVERHEAD_CAP` (5 %).

``BENCH_telemetry.json`` records the per-round ratios, the secondary
estimators (best-of and trimmed-mean), and — via the shared
``bench_artifact`` writer — the per-stage wall breakdown from the last
traced round.
"""

import statistics
import time

from repro.circuits import DistributionCache, VectorizedBackend
from repro.experiments import ghz_circuit
from repro.pipeline import CutPipeline
from repro.telemetry.tracing import Tracer, activate

#: Paired (untraced, traced) measurement rounds; the median ratio is asserted.
ROUNDS = 13
SEEDS = (11, 12, 13)
SHOTS = 2000
MAX_FRAGMENT_WIDTH = 2
#: Maximum tolerated fractional slowdown from tracing.
OVERHEAD_CAP = 0.05


def _run_pipeline():
    """One cold-cache 2-cut GHZ sweep; returns the comparable result tuples."""
    backend = VectorizedBackend(cache=DistributionCache())
    pipeline = CutPipeline(max_fragment_width=MAX_FRAGMENT_WIDTH, backend=backend)
    plan_result = pipeline.plan(ghz_circuit(4))
    assert plan_result.num_cuts == 2, "expected the 2-cut GHZ plan"
    decomposition = pipeline.decompose(plan_result)
    records = []
    for seed in SEEDS:
        execution = pipeline.execute(decomposition, "ZZZZ", SHOTS, seed=seed)
        result = pipeline.reconstruct(execution)
        records.append((result.value, result.error, tuple(execution.shots_per_term)))
    return records


def _timed(tracer):
    """Run the sweep under ``tracer`` (or untraced); return (seconds, records)."""
    start = time.perf_counter()
    with activate(tracer):
        records = _run_pipeline()
    return time.perf_counter() - start, records


def _trimmed_mean(samples, drop=2):
    """Mean with the ``drop`` slowest samples removed (timing noise is one-sided)."""
    kept = sorted(samples)[: len(samples) - drop]
    return sum(kept) / len(kept)


def _measure():
    """One full paired measurement; returns (off_times, on_times, ratios, tracer)."""
    off_times, on_times, ratios = [], [], []
    tracer = None
    for index in range(ROUNDS):
        tracer = Tracer()
        if index % 2 == 0:
            off_seconds, off_records = _timed(None)
            on_seconds, on_records = _timed(tracer)
        else:
            on_seconds, on_records = _timed(tracer)
            off_seconds, off_records = _timed(None)
        assert on_records == off_records, "telemetry must be bitwise invisible"
        off_times.append(off_seconds)
        on_times.append(on_seconds)
        ratios.append(on_seconds / off_seconds)
    return off_times, on_times, ratios, tracer


def test_tracing_overhead_within_cap(bench_artifact):
    """Tracing the 2-cut GHZ pipeline changes nothing and costs ≤ 5 %."""
    # A shared runner can spend several seconds in a noisy phase that taints
    # a whole measurement, so a failing attempt is re-measured (the true
    # instrumentation cost is microseconds; a real regression fails every
    # attempt).  The bitwise-identity contract stays hard on every round.
    attempts = []
    for _ in range(3):
        off_times, on_times, ratios, tracer = _measure()
        overhead = statistics.median(ratios) - 1.0
        attempts.append(round(overhead, 4))
        if overhead <= OVERHEAD_CAP:
            break

    span_names = [span_record.name for span_record in tracer.spans]
    assert span_names.count("execute") == len(SEEDS)
    assert "plan" in span_names and "decompose" in span_names and "reconstruct" in span_names
    record = {
        "benchmark": "telemetry_tracing_overhead",
        "rounds": ROUNDS,
        "seeds_per_round": len(SEEDS),
        "shots": SHOTS,
        "untraced_seconds_best": round(min(off_times), 5),
        "traced_seconds_best": round(min(on_times), 5),
        "overhead_fraction": round(overhead, 4),
        "overhead_best_of": round(min(on_times) / min(off_times) - 1.0, 4),
        "overhead_trimmed_mean": round(
            _trimmed_mean(on_times) / _trimmed_mean(off_times) - 1.0, 4
        ),
        "paired_ratios": [round(ratio, 4) for ratio in ratios],
        "attempt_overheads": attempts,
        "overhead_cap": OVERHEAD_CAP,
        "identical_results": True,
    }
    out_path = bench_artifact("BENCH_telemetry.json", record, tracer=tracer)
    print(
        f"\ntracing overhead: {overhead:+.2%} (paired median of {ROUNDS} rounds, "
        f"best untraced {min(off_times) * 1000:.1f}ms, "
        f"best traced {min(on_times) * 1000:.1f}ms) -> {out_path}"
    )

    assert overhead <= OVERHEAD_CAP, (
        f"paired-median tracing overhead {overhead:.2%} exceeds the {OVERHEAD_CAP:.0%} cap "
        f"(per-round ratios {[f'{ratio - 1:+.1%}' for ratio in ratios]})"
    )
