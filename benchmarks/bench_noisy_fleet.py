"""Noise-robustness benchmark: cut estimation on a noisy virtual-device fleet.

Run with ``pytest benchmarks/bench_noisy_fleet.py -q -s``.

Two sweeps from :mod:`repro.experiments.noisy_fleet` are executed and
archived as ``BENCH_noisy_fleet.json`` (path overridable via
``REPRO_BENCH_OUT``; CI uploads it next to the other benchmark artifacts):

* **bias-vs-bound** — the paper's single-qubit NME workload reconstructed
  exactly on fleets of devices with two-qubit depolarising gate noise.  The
  measured bias must stay within the analytic
  :func:`~repro.cutting.noise.worst_case_z_bias` bound evaluated at the
  effective resource strength ``p_comb = 1 − (1 − p)²`` (both entangling
  gates of the teleport gadget fold into the shared pair) — this is a hard
  assertion for every swept noise strength, the executable/analytic
  cross-check of the noise layer.
* **noise × split policy** — GHZ and random-layered workloads through the
  full pipeline on a heterogeneous 3-device fleet, sweeping noise scale ×
  split policy at finite shots.

The seeded determinism contract is also enforced here: the same device spec
and seed must produce bitwise-identical counts and estimates whether the
devices wrap the serial or the vectorized inner backend.
"""

import time

from repro.experiments import (
    fleet_bias_vs_bound,
    ghz_circuit,
    noisy_fleet_robustness,
)
from repro.devices import fleet_from_spec, example_fleet_spec
from repro.pipeline import CutPipeline

NOISE_LEVELS = (0.0, 0.02, 0.05, 0.1, 0.2)
NOISE_SCALES = (0.0, 0.02, 0.05, 0.1)
SPLIT_POLICIES = ("uniform", "capacity", "fidelity")
K = 0.5
SHOTS = 2000


def test_fleet_bias_within_analytic_bound():
    """Measured fleet-reconstruction bias obeys the worst-case-Z analytic bound."""
    table = fleet_bias_vs_bound(k=K, noise_levels=NOISE_LEVELS, num_states=5)
    for index in range(table.num_rows):
        row = table.row(index)
        assert row["within_bound"], (
            f"measured bias {row['measured_bias']:.4f} exceeds analytic bound "
            f"{row['analytic_bound']:.4f} at depolarizing_p={row['depolarizing_p']}"
        )
        if row["depolarizing_p"] > 0:
            assert row["measured_bias"] > 0, "noise should bias the reconstruction"


def test_fleet_runs_are_bitwise_reproducible_across_inner_backends():
    """Same device spec + seed => identical counts and estimate, any inner backend."""
    circuit = ghz_circuit(4)
    results = {}
    for inner in ("serial", "vectorized"):
        fleet = fleet_from_spec(example_fleet_spec(), inner=inner)
        pipeline = CutPipeline(max_fragment_width=2, backend=fleet)
        result = pipeline.run(circuit, "ZZZZ", shots=SHOTS, seed=99)
        results[inner] = result
    assert results["serial"].value == results["vectorized"].value
    assert results["serial"].standard_error == results["vectorized"].standard_error
    assert (
        results["serial"].execution.shots_per_term
        == results["vectorized"].execution.shots_per_term
    )


def test_benchmark_noisy_fleet_sweep(benchmark):
    """Wall clock of the full noise × split-policy fleet sweep."""
    table = benchmark.pedantic(
        noisy_fleet_robustness,
        kwargs={"noise_scales": NOISE_SCALES, "split_policies": SPLIT_POLICIES, "shots": SHOTS},
        rounds=1,
        iterations=1,
    )
    assert table.num_rows == 2 * len(NOISE_SCALES) * len(SPLIT_POLICIES)


def test_noisy_fleet_writes_artifact(bench_artifact):
    """Run both sweeps and archive BENCH_noisy_fleet.json for CI."""
    start = time.perf_counter()
    bias_table = fleet_bias_vs_bound(k=K, noise_levels=NOISE_LEVELS, num_states=5)
    bias_seconds = time.perf_counter() - start

    start = time.perf_counter()
    robustness_table = noisy_fleet_robustness(
        noise_scales=NOISE_SCALES, split_policies=SPLIT_POLICIES, shots=SHOTS
    )
    robustness_seconds = time.perf_counter() - start

    all_within = all(bias_table.columns["within_bound"])
    assert all_within, "bias-vs-bound validation failed; see test_fleet_bias_within_analytic_bound"

    record = {
        "benchmark": "noisy_fleet",
        "k": K,
        "noise_levels": list(NOISE_LEVELS),
        "noise_scales": list(NOISE_SCALES),
        "split_policies": list(SPLIT_POLICIES),
        "shots": SHOTS,
        "bias_within_bound": all_within,
        "bias_seconds": round(bias_seconds, 4),
        "robustness_seconds": round(robustness_seconds, 4),
        "bias_vs_bound": {
            "columns": {key: list(values) for key, values in bias_table.columns.items()},
            "metadata": dict(bias_table.metadata or {}),
        },
        "noise_robustness": {
            "columns": {key: list(values) for key, values in robustness_table.columns.items()},
            "metadata": dict(robustness_table.metadata or {}),
        },
    }
    out_path = bench_artifact("BENCH_noisy_fleet.json", record)
    print(f"\n{bias_table.to_text()}")
    print(f"\n{robustness_table.to_text()}")
    print(f"\nwrote {out_path}")
