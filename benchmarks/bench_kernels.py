"""Benchmark: axis-local einsum kernels vs the dense full-space reference.

Run with ``pytest benchmarks/bench_kernels.py -q -s``.

Two paired workloads time identical circuits under ``kernel="einsum"`` (the
axis-local contraction kernels of :mod:`repro.circuits.kernels`) and
``kernel="dense"`` (the legacy path that expands every operator to
``2^n × 2^n``):

* a **density-matrix chain** — H/CX/T ladder with terminal measurements —
  through :class:`~repro.circuits.density_matrix_simulator.DensityMatrixSimulator`;
* a **statevector chain** — H/RZ/CX ladder — through
  :class:`~repro.circuits.statevector_simulator.StatevectorSimulator`.

Asserted invariants (deterministic under the pinned seeds):

* paired median wall times give einsum **≥ 5×** over dense on the
  density-matrix workload and **≥ 10×** on the statevector workload;
* the exact classical distribution of the density-matrix workload and the
  final statevector are **bitwise identical** between kernels (the
  workload's gate entries make the contraction arithmetic exact, and
  measurement/reset kernels are bitwise by construction);
* a backend grid — serial / vectorized / process-pool / the distributed
  ``execute_unit`` path — returns **bitwise-identical** exact distributions
  and sampled counts for the same seed, for each kernel and *between*
  kernels;
* the prepared-operator LRU served repeat gate applications (hits observed).

``BENCH_kernels.json`` is written through the shared ``bench_artifact``
writer (``REPRO_BENCH_OUT`` overrides the directory).  The default smoke
configuration (9-qubit density matrix, 12-qubit statevector) keeps CI to
tens of seconds; set ``REPRO_BENCH_FULL=1`` for the headline scales
(12-qubit density matrix, 14-qubit statevector — several minutes, dominated
by the dense reference arm).
"""

import os
import statistics
import time

import numpy as np

from repro.circuits.backends import (
    DistributionCache,
    ProcessPoolBackend,
    SerialBackend,
    VectorizedBackend,
)
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.density_matrix_simulator import DensityMatrixSimulator
from repro.circuits.kernels import KERNEL_NAMES, clear_prepared_cache, prepared_cache_info
from repro.circuits.statevector_simulator import StatevectorSimulator
from repro.distributed import WorkUnit, execute_unit

#: Speedup floors (paired medians, dense over einsum).
SPEEDUP_FLOOR_DM = 5.0
SPEEDUP_FLOOR_SV = 10.0
#: Seed of every sampled arm (the grid asserts bitwise identity under it).
SEED = 777
#: Shots per circuit in the backend grid.
SHOTS = 512
#: Scale of the cross-backend identity grid (kept small: identity is
#: scale-independent, and the grid re-simulates the dense arm per backend).
GRID_QUBITS = 6


def density_chain(num_qubits: int) -> QuantumCircuit:
    """H/CX/T ladder with the end qubits measured.

    The gate entries (0, ±1, 1/√2, e^{iπ/4}) keep the axis-local contraction
    bitwise identical to the dense sandwich on this workload, which is what
    lets the benchmark assert exact distribution identity between kernels.
    """
    circuit = QuantumCircuit(num_qubits, 2, name=f"dm-chain{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    for qubit in range(0, num_qubits, 3):
        circuit.t(qubit)
    circuit.h(num_qubits - 1)
    circuit.measure(0, 0)
    circuit.measure(num_qubits - 1, 1)
    return circuit


def statevector_chain(num_qubits: int, links: int) -> QuantumCircuit:
    """H/RZ/CX ladder over the first ``links`` wires of the register."""
    circuit = QuantumCircuit(num_qubits, 0, name=f"sv-chain{num_qubits}")
    circuit.h(0)
    for qubit in range(links):
        circuit.rz(0.3 + 0.1 * qubit, qubit)
        circuit.cx(qubit, qubit + 1)
    return circuit


def _configuration(full: bool) -> dict:
    if full:
        return {"mode": "full", "dm_qubits": 12, "sv_qubits": 14, "sv_links": 5, "repeats": 1}
    return {"mode": "smoke", "dm_qubits": 9, "sv_qubits": 12, "sv_links": 5, "repeats": 3}


def _median_seconds(run, repeats: int) -> tuple[float, object]:
    """Return (median wall seconds, last result) of ``repeats`` runs."""
    samples = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def _grid_results(kernel: str, circuits, shots):
    """Exact distributions + sampled counts from every in-process backend."""
    backends = {
        "serial": SerialBackend(kernel=kernel),
        "vectorized": VectorizedBackend(cache=DistributionCache(), kernel=kernel),
        "process-pool": ProcessPoolBackend(kernel=kernel),
    }
    results = {}
    for name, backend in backends.items():
        distributions = backend.exact_distributions(circuits)
        counts = [dict(c) for c in backend.run_batch(circuits, shots, seed=SEED)]
        results[name] = (distributions, counts)
    return results


def test_kernel_speedup_and_bitwise_identity(bench_artifact):
    """einsum beats dense ≥5×/≥10× with bitwise-identical results everywhere."""
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    config = _configuration(full)
    repeats = config["repeats"]

    # -- density-matrix arm -------------------------------------------------------
    dm_circuit = density_chain(config["dm_qubits"])
    clear_prepared_cache()
    einsum_dm_seconds, einsum_dm_result = _median_seconds(
        lambda: DensityMatrixSimulator(kernel="einsum").run(dm_circuit), repeats
    )
    cache_info = prepared_cache_info()
    dense_dm_seconds, dense_dm_result = _median_seconds(
        lambda: DensityMatrixSimulator(kernel="dense").run(dm_circuit), repeats
    )
    dm_speedup = dense_dm_seconds / einsum_dm_seconds
    einsum_distribution = einsum_dm_result.classical_distribution()
    dense_distribution = dense_dm_result.classical_distribution()
    assert einsum_distribution == dense_distribution, (
        "density-matrix distributions differ between kernels"
    )
    assert dm_speedup >= SPEEDUP_FLOOR_DM, (
        f"einsum {einsum_dm_seconds:.3f}s vs dense {dense_dm_seconds:.3f}s: "
        f"{dm_speedup:.1f}x < {SPEEDUP_FLOOR_DM}x on {config['dm_qubits']}-qubit density matrix"
    )
    # Repeated gates (CX appears once per link) were served from the LRU.
    assert cache_info["hits"] > 0, cache_info

    # -- statevector arm ----------------------------------------------------------
    sv_circuit = statevector_chain(config["sv_qubits"], config["sv_links"])
    einsum_sv_seconds, einsum_sv_state = _median_seconds(
        lambda: StatevectorSimulator(kernel="einsum").run(sv_circuit), repeats
    )
    dense_sv_seconds, dense_sv_state = _median_seconds(
        lambda: StatevectorSimulator(kernel="dense").run(sv_circuit), repeats
    )
    sv_speedup = dense_sv_seconds / einsum_sv_seconds
    assert np.array_equal(einsum_sv_state.data, dense_sv_state.data), (
        "statevectors differ between kernels"
    )
    assert sv_speedup >= SPEEDUP_FLOOR_SV, (
        f"einsum {einsum_sv_seconds:.3f}s vs dense {dense_sv_seconds:.3f}s: "
        f"{sv_speedup:.1f}x < {SPEEDUP_FLOOR_SV}x on {config['sv_qubits']}-qubit statevector"
    )

    # -- backend grid: bitwise identity across backends and kernels ---------------
    grid_circuit = density_chain(GRID_QUBITS)
    grid_circuits = [grid_circuit, grid_circuit.copy()]
    grid_shots = [SHOTS, SHOTS // 2]
    grids = {kernel: _grid_results(kernel, grid_circuits, grid_shots) for kernel in KERNEL_NAMES}
    reference = grids["einsum"]["serial"]
    for kernel, grid in grids.items():
        for backend_name, got in grid.items():
            assert got == reference, (
                f"{backend_name}/{kernel} diverged from serial/einsum"
            )

    # Distributed seam: execute_unit (what every pool worker runs) agrees
    # between kernels and with the in-process grid for the same round seed.
    unit = WorkUnit(round_index=0, term_index=0, shots=SHOTS, seed=np.random.SeedSequence(SEED))
    selected = [[0, 1], [0, 1]]
    distributed_means = {
        kernel: execute_unit(
            VectorizedBackend(cache=DistributionCache(), kernel=kernel),
            grid_circuits,
            selected,
            unit,
        ).mean
        for kernel in KERNEL_NAMES
    }
    assert distributed_means["einsum"] == distributed_means["dense"]

    record = {
        "config": config,
        "density_matrix": {
            "qubits": config["dm_qubits"],
            "einsum_median_seconds": round(einsum_dm_seconds, 6),
            "dense_median_seconds": round(dense_dm_seconds, 6),
            "speedup": round(dm_speedup, 2),
            "floor": SPEEDUP_FLOOR_DM,
            "distribution_bitwise_identical": True,
        },
        "statevector": {
            "qubits": config["sv_qubits"],
            "einsum_median_seconds": round(einsum_sv_seconds, 6),
            "dense_median_seconds": round(dense_sv_seconds, 6),
            "speedup": round(sv_speedup, 2),
            "floor": SPEEDUP_FLOOR_SV,
            "state_bitwise_identical": True,
        },
        "backend_grid": {
            "qubits": GRID_QUBITS,
            "backends": ["serial", "vectorized", "process-pool", "distributed-unit"],
            "kernels": list(KERNEL_NAMES),
            "bitwise_identical": True,
            "distributed_mean": distributed_means["einsum"],
        },
        "prepared_operator_cache": cache_info,
    }
    path = bench_artifact("BENCH_kernels.json", record)
    print(
        f"\nkernels [{config['mode']}]: "
        f"DM {config['dm_qubits']}q {dm_speedup:.1f}x (floor {SPEEDUP_FLOOR_DM}x), "
        f"SV {config['sv_qubits']}q {sv_speedup:.1f}x (floor {SPEEDUP_FLOOR_SV}x), "
        f"bitwise identity OK -> {path}"
    )
