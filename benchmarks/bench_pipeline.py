"""Performance benchmark of the multi-cut CutPipeline on the execution backends.

Run with ``pytest benchmarks/bench_pipeline.py -q -s``.

The workload is the pipeline's headline scenario: **2-cut plans** on GHZ and
random layered circuits from :mod:`repro.experiments.workloads`, swept over
entanglement levels and repeated seeds.  The GHZ plan is found automatically
(three width-2 fragments); the random layered circuit — whose brick layers
admit no cheap time slice — is cut with an explicit 2-cut chain on one wire,
the same-wire double cut the multi-cut planner generalisation enables.
Every product-term circuit goes through the
:class:`~repro.circuits.backends.SimulatorBackend` seam, so the vectorized
backend's distribution cache turns the repeated estimates of a sweep into
pure binomial sampling while the serial backend re-simulates every term —
that contrast is what the benchmark measures.

``BENCH_pipeline.json`` is written next to the working directory (path
overridable via ``REPRO_BENCH_OUT``) so CI can archive the pipeline speedup
trajectory alongside the existing backend-speedup artifact.  Set
``REPRO_BENCH_FULL=1`` to enforce the speedup floor (the default smoke run
records it without asserting, so one noisy shared-runner sample cannot fail
the build).
"""

import os
import time

from repro.circuits import DistributionCache, VectorizedBackend
from repro.cutting import CutLocation
from repro.experiments import ghz_circuit, random_layered_circuit
from repro.pipeline import CutPipeline
from repro.telemetry.tracing import Tracer, activate

#: Entanglement levels f(Φ_k) swept per workload; None is the κ=3 free cut.
OVERLAPS = (None, 0.9)
#: Seeds per (workload, overlap) cell — repeats are where the cache pays off.
SEEDS = (11, 12, 13)
SHOTS = 2000
MAX_FRAGMENT_WIDTH = 2


def _workloads():
    """Return (name, circuit, plan kwargs) benchmark cases, each a 2-cut plan.

    GHZ is planned automatically under the width constraint (three width-2
    fragments); the random layered circuit is cut with an explicit chain of
    two cuts on wire 0.
    """
    random_circuit = random_layered_circuit(3, 2, seed=5, two_qubit_gate="cx")
    return [
        ("ghz_4", ghz_circuit(4), {}),
        (
            "random_3q_d2",
            random_circuit,
            {"locations": [CutLocation(qubit=0, position=1), CutLocation(qubit=0, position=4)]},
        ),
    ]


def _run_sweep(backend):
    """Run the full (workload × overlap × seed) sweep on one backend.

    ``backend="vectorized"`` gets a fresh :class:`DistributionCache` so the
    measurement is self-contained — the speedup must come from caching
    *within* the sweep, not from state left behind by earlier tests sharing
    the process-wide default cache.
    """
    if backend == "vectorized":
        backend = VectorizedBackend(cache=DistributionCache())
    records = []
    for name, circuit, plan_kwargs in _workloads():
        observable = "Z" * circuit.num_qubits
        for overlap in OVERLAPS:
            pipeline = CutPipeline(
                max_fragment_width=MAX_FRAGMENT_WIDTH,
                entanglement_overlap=overlap,
                backend=backend,
            )
            plan_result = pipeline.plan(circuit, **plan_kwargs)
            decomposition = pipeline.decompose(plan_result)
            for seed in SEEDS:
                execution = pipeline.execute(decomposition, observable, SHOTS, seed=seed)
                result = pipeline.reconstruct(execution)
                records.append(
                    {
                        "workload": name,
                        "overlap": overlap,
                        "seed": seed,
                        "num_cuts": plan_result.num_cuts,
                        "num_fragments": plan_result.num_fragments,
                        "num_terms": decomposition.num_terms,
                        "kappa": result.kappa,
                        "value": result.value,
                        "shots_per_term": list(execution.shots_per_term),
                        "error": result.error,
                    }
                )
    return records


def test_pipeline_plans_are_two_cut():
    """Both workloads run a 2-cut plan (the GHZ one with three fragments)."""
    for name, circuit, plan_kwargs in _workloads():
        pipeline = CutPipeline(max_fragment_width=MAX_FRAGMENT_WIDTH)
        plan_result = pipeline.plan(circuit, **plan_kwargs)
        assert plan_result.num_cuts == 2, f"{name}: expected a 2-cut plan"
    ghz_plan = CutPipeline(max_fragment_width=MAX_FRAGMENT_WIDTH).plan(ghz_circuit(4))
    assert ghz_plan.num_fragments == 3
    assert all(fragment.width <= MAX_FRAGMENT_WIDTH for fragment in ghz_plan.plan.fragments)


def test_benchmark_pipeline_vectorized_sweep(benchmark):
    """Vectorized-backend wall clock of the full 2-cut pipeline sweep.

    One round only: every call starts from a cold cache (see
    :func:`_run_sweep`), so repeat rounds would re-pay the full simulation
    cost without adding information.
    """
    records = benchmark.pedantic(_run_sweep, args=("vectorized",), rounds=1, iterations=1)
    assert len(records) == len(_workloads()) * len(OVERLAPS) * len(SEEDS)


def test_pipeline_backend_speedup(bench_artifact):
    """Vectorized beats serial on the repeated 2-cut sweep, with identical results.

    With ``REPRO_BENCH_FULL=1`` a 1.5× floor is enforced; the default smoke
    run keeps the result-identity checks hard but only records the measured
    speedup.  ``BENCH_pipeline.json`` carries the numbers either way, plus
    the per-stage wall breakdown of the vectorized arm (both arms run under
    a tracer so the comparison stays symmetric).
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"

    start = time.perf_counter()
    with activate(Tracer()):
        serial_records = _run_sweep("serial")
    serial_seconds = time.perf_counter() - start

    vectorized_tracer = Tracer()
    start = time.perf_counter()
    with activate(vectorized_tracer):
        vectorized_records = _run_sweep("vectorized")
    vectorized_seconds = time.perf_counter() - start

    assert len(serial_records) == len(vectorized_records)
    for serial_record, vectorized_record in zip(serial_records, vectorized_records):
        assert serial_record["value"] == vectorized_record["value"], (
            f"backend mismatch on {serial_record['workload']} "
            f"overlap={serial_record['overlap']} seed={serial_record['seed']}"
        )
        assert serial_record["shots_per_term"] == vectorized_record["shots_per_term"]
        assert serial_record["num_cuts"] == 2

    speedup = serial_seconds / vectorized_seconds
    record = {
        "benchmark": "pipeline_backend_speedup",
        "full_scale": full,
        "workloads": [name for name, _, _ in _workloads()],
        "overlaps": [o if o is not None else 0.5 for o in OVERLAPS],
        "seeds_per_cell": len(SEEDS),
        "shots": SHOTS,
        "max_fragment_width": MAX_FRAGMENT_WIDTH,
        "num_estimates": len(serial_records),
        "serial_seconds": round(serial_seconds, 4),
        "vectorized_seconds": round(vectorized_seconds, 4),
        "speedup": round(speedup, 2),
        "identical_results": True,
    }
    out_path = bench_artifact("BENCH_pipeline.json", record, tracer=vectorized_tracer)
    print(
        f"\npipeline 2-cut sweep speedup: {speedup:.1f}x "
        f"(serial {serial_seconds:.2f}s, vectorized {vectorized_seconds:.2f}s) -> {out_path}"
    )

    if full:
        assert speedup >= 1.5, (
            f"pipeline vectorized speedup {speedup:.2f}x below the 1.5x floor "
            f"(serial {serial_seconds:.2f}s, vectorized {vectorized_seconds:.2f}s)"
        )
