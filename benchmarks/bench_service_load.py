"""Load benchmark of the job service: asyncio server vs the legacy threaded one.

Run with ``pytest benchmarks/bench_service_load.py -q -s``.

Both servers front the *same* :class:`~repro.service.RunService` design and
the same scheduler; the benchmark hammers each with
:func:`tools.load_gen.run_load` — ``CONCURRENCY`` workers looping
submit → status over persistent connections, all submitting the identical
job payload so the scheduler's dedup path keeps the pipeline out of the
measurement.  The headline is sustained **submissions/second** and **p99
status latency**:

* the asyncio server (:class:`~repro.service.AsyncJobServer`) serves every
  connection on one event loop with HTTP/1.1 keep-alive;
* the legacy :class:`~http.server.ThreadingHTTPServer` speaks HTTP/1.0 and
  pays a fresh TCP connection plus a fresh handler thread per request.

``BENCH_service_load.json`` is written to the working directory
(overridable via ``REPRO_BENCH_OUT``) so CI can archive the trajectory.
Set ``REPRO_BENCH_FULL=1`` to enforce the 3x throughput floor; the default
smoke run records without asserting so one noisy shared-runner sample
cannot fail the build.
"""

import os
import threading
import time

from repro.experiments import ghz_circuit
from repro.service import JobSpec, RunService, ServerThread, make_server
from tools.load_gen import run_load

#: Seconds of sustained load against each server.
DURATION = float(os.environ.get("REPRO_BENCH_LOAD_SECONDS", "2.0"))
#: Concurrent load-generator workers.
CONCURRENCY = 8
QUBITS = 4
SHOTS = 1000


def _payload() -> dict:
    """The job payload every load-gen worker submits (dedup hot path)."""
    spec = JobSpec(
        circuit=ghz_circuit(QUBITS),
        observable="Z" * QUBITS,
        shots=SHOTS,
        seed=7,
        max_fragment_width=QUBITS - 1,
    )
    return spec.to_payload()


def _measure_asyncio(payload: dict):
    """Run the load against the asyncio server; return its LoadResult."""
    service = RunService(workers=2)
    server = ServerThread(service)
    url = server.start()
    try:
        # Warm the dedup path so the first pipeline run is off the clock.
        run_load(url, payload, duration=0.2, concurrency=1)
        service.scheduler.wait_all(timeout=120)
        return run_load(url, payload, duration=DURATION, concurrency=CONCURRENCY)
    finally:
        server.stop()
        service.close()


def _measure_threaded(payload: dict):
    """Run the load against the legacy threaded server; return its LoadResult."""
    service = RunService(workers=2)
    server = make_server(host="127.0.0.1", port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    url = f"http://{host}:{port}"
    try:
        run_load(url, payload, duration=0.2, concurrency=1)
        service.scheduler.wait_all(timeout=120)
        return run_load(url, payload, duration=DURATION, concurrency=CONCURRENCY)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        service.close()


def test_asyncio_server_outpaces_threaded_baseline(bench_artifact):
    """The asyncio server sustains >= 3x the threaded submissions/sec.

    With ``REPRO_BENCH_FULL=1`` the 3x floor (at no-worse p99 status
    latency) is enforced; the smoke run records the measurement without
    asserting it.
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    payload = _payload()

    threaded = _measure_threaded(payload)
    asyncio_result = _measure_asyncio(payload)

    assert asyncio_result.errors == 0, f"asyncio load run saw errors: {asyncio_result}"
    assert threaded.errors == 0, f"threaded load run saw errors: {threaded}"
    assert asyncio_result.submissions > 0
    assert threaded.submissions > 0

    ratio = asyncio_result.submissions_per_second / max(threaded.submissions_per_second, 1e-9)
    record = {
        "benchmark": "service_load_asyncio_vs_threaded",
        "full_scale": full,
        "duration_seconds": DURATION,
        "concurrency": CONCURRENCY,
        "cpu_count": os.cpu_count(),
        "asyncio": asyncio_result.to_payload(),
        "threaded": threaded.to_payload(),
        "throughput_ratio": round(ratio, 2),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    out_path = bench_artifact("BENCH_service_load.json", record)
    print(
        f"\nservice load: asyncio {asyncio_result.submissions_per_second:.0f} sub/s "
        f"(p99 status {asyncio_result.status_p99_ms:.1f}ms) vs threaded "
        f"{threaded.submissions_per_second:.0f} sub/s "
        f"(p99 status {threaded.status_p99_ms:.1f}ms) -> {ratio:.1f}x -> {out_path}"
    )

    if full:
        assert ratio >= 3.0, (
            f"asyncio throughput ratio {ratio:.2f}x below the 3x floor "
            f"(asyncio {asyncio_result.submissions_per_second:.0f}/s, "
            f"threaded {threaded.submissions_per_second:.0f}/s)"
        )
        assert asyncio_result.status_p99_ms <= max(threaded.status_p99_ms * 1.5, 5.0), (
            f"asyncio p99 status latency {asyncio_result.status_p99_ms:.2f}ms regressed "
            f"past the threaded baseline {threaded.status_p99_ms:.2f}ms"
        )
