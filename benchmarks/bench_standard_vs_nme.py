"""Benchmark comparing the baseline wire cuts against the NME cut at a fixed shot budget.

Run with ``pytest benchmarks/bench_standard_vs_nme.py --benchmark-only -s``.

This regenerates the "who wins" ordering underlying Figure 6: at a fixed
budget the error ordering should follow the κ ordering
Peng (4) > Harada (3) > NME (1..3) > teleportation (1).
"""


from repro.experiments import protocol_error_comparison


def test_benchmark_standard_vs_nme(benchmark):
    """Average error per protocol at 2000 shots over a shared random-state workload."""
    table = benchmark(protocol_error_comparison, num_states=25, shots=2000, seed=13)
    print("\n" + table.to_text())
    errors = dict(zip(table.columns["protocol"], table.columns["mean_error"]))
    # The entanglement-assisted protocols beat the entanglement-free baselines.
    assert errors["nme(f=0.9)"] < errors["harada"]
    assert errors["nme(f=0.9)"] < errors["peng"]
    assert errors["teleportation"] < errors["harada"]
    # The κ=4 baseline is the worst of the bunch (allowing small statistical slack).
    assert errors["peng"] >= 0.8 * errors["harada"]
